"""Sessions: one long-lived :class:`ProductionSystem` per client context.

A :class:`Session` is the unit of isolation in the rule server: it owns
an engine (with any registered matcher backend, including the parallel
executor and its worker-process pool), a bounded request queue, a
single worker thread that applies requests strictly in arrival order,
and its own telemetry.  The :class:`SessionManager` creates, looks up,
and tears down sessions, and rolls their telemetry up into the
server-wide view.

Ordering and determinism
------------------------
All requests for one session flow through one bounded
:class:`asyncio.Queue` and are executed one at a time on the session's
dedicated thread.  WME batches are applied through the engine's
:meth:`~repro.ops5.engine.ProductionSystem.apply_changes` -- which never
fires rules -- and conflict resolution happens only on explicit ``run``
requests.  A logical change stream therefore produces bit-identical
working memory and firing sequences no matter how it is chunked into
batches, which is the property the acceptance tests pin down.

Backpressure
------------
Each session's queue holds at most ``max_pending`` requests.  A request
arriving at a full queue is rejected *immediately* (never enqueued,
session state untouched) with ``error: "backpressure"`` and a
``retry_after`` hint derived from the session's median latency and
current queue depth.  Clients retry; nothing is silently dropped.

Deadlines and degradation
-------------------------
A request may carry ``"deadline": seconds``; if the reply is not ready
in time the *caller* gets ``error: "deadline"`` immediately.  The
request itself is not interrupted -- the worker thread cannot be
preempted mid-engine-op -- so its side effects still land in order; only
the reply is abandoned.  Sessions backed by the parallel matcher also
surface that matcher's supervision story: every shard recovery becomes
a structured ``recovered``/``degraded`` notice in the session's stats
row, so an operator sees at the RPC surface that a worker died, what
the rebuild cost, and whether the session is now running degraded.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from ..faults.plan import SLOW as FAULT_SLOW
from ..faults.plan import FaultPlan
from ..obs import metrics as obs_metrics
from ..obs.recorder import NULL_RECORDER
from ..ops5 import Ops5Error, ProductionSystem, matcher_named
from ..ops5.parser import Program, parse_program
from ..ops5.wme import WME
from .stats import Telemetry

#: Default bound on a session's request queue.
DEFAULT_MAX_PENDING = 64

#: Ceiling on the retry hint handed to rejected clients, seconds.
MAX_RETRY_AFTER = 2.0

#: Tenant a session belongs to when the client names none.
DEFAULT_TENANT = "default"


class SessionClosed(Ops5Error):
    """The session was destroyed while the request waited."""


class QuotaExceeded(Ops5Error):
    """The tenant is at its concurrent-session quota."""


# -- shared parsed programs ---------------------------------------------------
#
# Multi-tenant serving means thousands of sessions loading the *same*
# program text.  Parsing is cheap next to codegen, but per-session
# parsing also produced per-session Production objects -- which defeated
# the kernel cache's per-production fingerprint memo (keyed by object
# identity) and re-interned nothing but still re-walked every CE.
# Caching the parsed Program shares one set of immutable Production
# objects across every session of a ruleset, so a warm session create
# does no parsing and its fingerprint lookup is a pure memo hit.

_PROGRAMS: dict[str, Program] = {}
_PROGRAMS_LOCK = threading.Lock()
_PROGRAM_HITS = 0
_PROGRAM_MISSES = 0


def shared_program(source: str) -> Program:
    """The (cached) parse of *source*; Productions are shared, immutable."""
    global _PROGRAM_HITS, _PROGRAM_MISSES
    with _PROGRAMS_LOCK:
        program = _PROGRAMS.get(source)
        if program is not None:
            _PROGRAM_HITS += 1
            return program
        _PROGRAM_MISSES += 1
    program = parse_program(source)
    with _PROGRAMS_LOCK:
        return _PROGRAMS.setdefault(source, program)


def program_cache_stats() -> dict:
    """Process-wide program-cache counters (tests and metrics)."""
    with _PROGRAMS_LOCK:
        return {
            "hits": _PROGRAM_HITS,
            "misses": _PROGRAM_MISSES,
            "size": len(_PROGRAMS),
        }


def clear_program_cache() -> None:
    """Drop cached parses and counters (test isolation)."""
    global _PROGRAM_HITS, _PROGRAM_MISSES
    with _PROGRAMS_LOCK:
        _PROGRAMS.clear()
        _PROGRAM_HITS = 0
        _PROGRAM_MISSES = 0


def build_matcher(
    name: str,
    workers: Optional[int] = None,
    recorder=None,
    fault_plan: Optional[FaultPlan] = None,
    transport: Optional[str] = None,
):
    """Build a matcher backend for a session via the engine registry.

    ``workers`` and ``transport`` are honoured for the parallel backend
    and rejected for every other one rather than silently ignored.  An
    enabled *recorder* is threaded into backends that can use it: the
    parallel executor takes it directly (shard-batch spans), Rete
    backends get a :class:`~repro.rete.RecorderListener` (per-activation
    spans).  ``fault_plan`` reaches only the parallel backend (its shard
    workers consult it); session-site faults are injected by the session
    itself, for any matcher.
    """
    if name == "parallel":
        kwargs = {} if transport is None else {"transport": transport}
        return matcher_named(
            name, workers=workers, recorder=recorder, fault_plan=fault_plan, **kwargs
        )
    if workers is not None:
        raise Ops5Error(
            f"workers={workers} is only meaningful for matcher='parallel', "
            f"not {name!r}"
        )
    if transport is not None:
        raise Ops5Error(
            f"transport={transport!r} is only meaningful for "
            f"matcher='parallel', not {name!r}"
        )
    if recorder is not None and recorder.enabled and name in ("rete", "rete-indexed"):
        from ..rete import RecorderListener

        return matcher_named(name, listener=RecorderListener(recorder))
    if recorder is not None and recorder.enabled and name == "compiled":
        return matcher_named(name, recorder=recorder)
    return matcher_named(name)


def encode_wme(wme: WME) -> list:
    """JSON-ready view of one working-memory element."""
    return [wme.cls, dict(wme.attributes), wme.timetag]


class Session:
    """One client context: an engine plus its queue, thread, telemetry."""

    def __init__(
        self,
        session_id: str,
        program: str = "",
        matcher: str = "rete",
        workers: Optional[int] = None,
        strategy: str = "lex",
        max_pending: int = DEFAULT_MAX_PENDING,
        recorder=None,
        fault_plan: Optional[FaultPlan] = None,
        transport: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
        state: Optional[dict] = None,
    ) -> None:
        if max_pending < 1:
            raise Ops5Error("max_pending must be >= 1")
        self.id = session_id
        self.matcher_name = matcher
        self.strategy_name = strategy
        self.tenant = tenant
        #: Source text, kept verbatim: the migration payload re-creates
        #: the session from it on the receiving worker.
        self.program = program
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.fault_plan = fault_plan
        self.system = ProductionSystem(
            shared_program(program),
            matcher=build_matcher(
                matcher,
                workers,
                recorder=self.recorder,
                fault_plan=fault_plan,
                transport=transport,
            ),
            strategy=strategy,
            recorder=self.recorder,
        )
        if state is not None:
            # Migration restore: original timetags, refraction memory,
            # counters and halt state come back; the conflict set
            # re-derives from the WM replay (see engine.restore_state).
            try:
                self.system.restore_state(state)
            except BaseException:
                # A rejected blob must not leak the matcher's resources
                # (the parallel backend owns worker processes); the
                # executor is not built yet, so this is the only cleanup.
                close = getattr(self.system.matcher, "close", None)
                if close is not None:
                    close()
                raise
        self.telemetry = Telemetry()
        self.max_pending = max_pending
        #: Executed-request ordinal stream (session-site fault addresses).
        self._request_ordinal = 0
        #: Structured degraded/recovered notices surfaced via ``stats``.
        self._fault_notices: deque[dict] = deque(maxlen=64)
        self._fault_events_seen = 0
        #: describe()/stats() snapshot from the event loop while the
        #: worker thread serves a query -- notice folding must not race.
        self._fault_sync_lock = threading.Lock()
        self._queue: asyncio.Queue[tuple[dict, asyncio.Future, list]] = asyncio.Queue(
            maxsize=max_pending
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-serve-{session_id}"
        )
        self._consumer: Optional[asyncio.Task] = None
        self._closed = False

    # -- async plumbing ------------------------------------------------------

    def start(self) -> None:
        """Begin consuming requests (must run inside the event loop)."""
        if self._consumer is None:
            self._consumer = asyncio.get_running_loop().create_task(
                self._consume(), name=f"session-{self.id}"
            )

    async def _consume(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            request, future, executing = await self._queue.get()
            if future.cancelled():
                # The caller's deadline expired while the request was
                # still queued; nothing has executed, so skipping it
                # entirely is safe (and keeps the queue moving).
                self._queue.task_done()
                continue
            # No await between the cancelled-check and this flag: once
            # set, the request runs to completion even if its reply is
            # later dropped, so the deadline reply's "started" field is
            # exact -- durable routers tombstone only unstarted ops.
            executing[0] = True
            try:
                reply = await loop.run_in_executor(
                    self._executor, self.perform, request
                )
                if not future.cancelled():
                    future.set_result(reply)
            except Exception as error:  # surfaced to the waiting handler
                if not future.cancelled():
                    future.set_exception(error)
            finally:
                self._queue.task_done()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def retry_after(self) -> float:
        """Backpressure retry hint: median latency x queue occupancy."""
        per_request = self.telemetry.latency.p50 or 0.005
        return min(MAX_RETRY_AFTER, per_request * (self.queue_depth + 1))

    async def submit(self, request: dict) -> dict:
        """Enqueue *request* and wait for its reply.

        Returns the backpressure rejection (without enqueueing) when the
        queue is full; converts engine errors into error replies so one
        bad request never tears down the connection or the session.  A
        ``"deadline"`` field bounds the wait: expiry answers the caller
        with ``error: "deadline"`` right away, cancelling the queued
        request if it has not started (a started request still completes
        on the worker thread; only its reply is dropped).  The deadline
        reply carries ``started``, telling the caller -- and the durable
        router's journal -- whether the request executed despite the
        dropped reply.
        """
        if self._closed:
            return {"ok": False, "error": f"session {self.id!r} is closed"}
        deadline = request.get("deadline")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            return {"ok": False, "error": "deadline must be a positive number"}
        if self._queue.full():
            self.telemetry.rejected += 1
            return {
                "ok": False,
                "error": "backpressure",
                "retry_after": self.retry_after(),
                "queue_depth": self.queue_depth,
            }
        self.start()
        future = asyncio.get_running_loop().create_future()
        started = time.perf_counter()
        executing = [False]
        self._queue.put_nowait((request, future, executing))
        try:
            if deadline is not None:
                reply = await asyncio.wait_for(future, timeout=deadline)
            else:
                reply = await future
        except asyncio.TimeoutError:
            self.telemetry.deadline_exceeded += 1
            return {
                "ok": False,
                "error": "deadline",
                "deadline": deadline,
                "started": executing[0],
                "queue_depth": self.queue_depth,
            }
        except Ops5Error as error:
            self.telemetry.errors += 1
            return {"ok": False, "error": str(error)}
        self.telemetry.latency.record(time.perf_counter() - started)
        return reply

    async def drain_and_close(self) -> None:
        """Finish every queued request, then release engine resources."""
        if self._closed:
            return
        self._closed = True
        if self._consumer is not None:
            await self._queue.join()
            self._consumer.cancel()
        self.close_resources()

    def close_resources(self) -> None:
        """Synchronously reap the matcher pool and the worker thread."""
        close = getattr(self.system.matcher, "close", None)
        if close is not None:
            close()
        self._executor.shutdown(wait=True)

    # -- request execution (worker thread) -----------------------------------

    def perform(self, request: dict) -> dict:
        """Execute one request against the engine; returns the reply.

        Runs on the session's worker thread, one request at a time.
        """
        op = request.get("op")
        handler = self._OPS.get(op)
        if handler is None:
            raise Ops5Error(f"unknown session operation {op!r}")
        self.telemetry.requests += 1
        ordinal = self._request_ordinal
        self._request_ordinal += 1
        if self.fault_plan is not None:
            spec = self.fault_plan.session_fault(ordinal)
            if spec is not None:
                if spec.kind == FAULT_SLOW:
                    time.sleep(spec.seconds)
                else:
                    raise Ops5Error(
                        f"injected session fault at request {ordinal}"
                    )
        with self.recorder.span(
            f"request:{op}", "serve", session=self.id, queue_depth=self.queue_depth
        ):
            return handler(self, request)

    def _op_assert(self, request: dict) -> dict:
        changes = [
            ("assert", cls, attrs) for cls, attrs in request.get("wmes", ())
        ]
        result = self.system.apply_changes(changes)
        self.telemetry.wme_changes += result.total_changes
        reply = {"ok": True, "timetags": result.timetags}
        if request.get("run"):
            reply["run"] = self._run(request.get("max_cycles"))
        return reply

    def _op_retract(self, request: dict) -> dict:
        changes = [("retract", tag) for tag in request.get("timetags", ())]
        result = self.system.apply_changes(changes)
        self.telemetry.wme_changes += result.total_changes
        return {"ok": True, "removed": result.removed}

    def _op_modify(self, request: dict) -> dict:
        changes = [
            ("modify", tag, updates)
            for tag, updates in request.get("changes", ())
        ]
        result = self.system.apply_changes(changes)
        self.telemetry.wme_changes += result.total_changes
        return {"ok": True, "timetags": result.timetags, "removed": result.removed}

    def _op_apply(self, request: dict) -> dict:
        """The general form: a heterogeneous ordered change batch."""
        changes = [tuple(change) for change in request.get("changes", ())]
        result = self.system.apply_changes(changes)
        self.telemetry.wme_changes += result.total_changes
        return {"ok": True, "timetags": result.timetags, "removed": result.removed}

    def _op_run(self, request: dict) -> dict:
        return {"ok": True, **self._run(request.get("max_cycles"))}

    def _run(self, max_cycles: Optional[int]) -> dict:
        result = self.system.run(max_cycles)
        self.telemetry.firings += result.fired
        self.telemetry.wme_changes += result.total_changes
        return {
            "fired": result.fired,
            "halted": result.halted,
            "halt_reason": result.halt_reason,
            "output": list(result.output),
            "firings": [
                [cycle.production, list(cycle.timetags)]
                for cycle in result.cycles
            ],
        }

    def _op_query(self, request: dict) -> dict:
        what = request.get("what", "wm")
        if what == "wm":
            return {
                "ok": True,
                "wmes": [encode_wme(w) for w in self.system.memory.snapshot()],
            }
        if what == "conflict-set":
            members = sorted(
                (name, list(tags))
                for name, tags in self.system.conflict_set.snapshot()
            )
            return {"ok": True, "instantiations": [list(m) for m in members]}
        if what == "stats":
            return {"ok": True, "stats": self.describe()}
        raise Ops5Error(
            f"unknown query {what!r}; expected 'wm', 'conflict-set', or 'stats'"
        )

    def _op_export(self, request: dict) -> dict:
        """The migration payload: config + engine state, JSON-ready.

        Runs through the session queue like any other op, so the export
        is strictly ordered against in-flight changes -- everything the
        session acknowledged is in the blob, nothing later is.
        """
        return {
            "ok": True,
            "config": {
                "program": self.program,
                "matcher": self.matcher_name,
                "strategy": self.strategy_name,
                "max_pending": self.max_pending,
                "tenant": self.tenant,
            },
            "state": self.system.export_state(),
        }

    _OPS = {
        "assert": _op_assert,
        "retract": _op_retract,
        "modify": _op_modify,
        "apply": _op_apply,
        "run": _op_run,
        "query": _op_query,
        "export": _op_export,
    }

    # -- introspection -------------------------------------------------------

    def _sync_fault_notices(self) -> None:
        """Fold new matcher recovery events into the notice stream.

        ``respawned`` recoveries become ``recovered`` notices (the shard
        is whole again), demotions become ``degraded`` ones (the session
        keeps running, inline).  Reading the matcher's event list does
        not flush it, so no engine state moves -- but describe() is
        reachable from *two* threads (the worker, via a stats query, and
        the event loop, via the server's ``stats`` op), and the
        seen-counter/deque pair must advance atomically or one event can
        fold twice and surface as a duplicate notice.
        """
        events = getattr(self.system.matcher, "fault_events", None)
        if events is None:
            return
        with self._fault_sync_lock:
            rows = events()
            for event in rows[self._fault_events_seen:]:
                kind = "degraded" if event.action == "demoted" else "recovered"
                self._fault_notices.append({"type": kind, **event.snapshot()})
            self._fault_events_seen = len(rows)

    @property
    def degraded(self) -> bool:
        """True when any of the matcher's shards runs demoted."""
        return bool(getattr(self.system.matcher, "degraded_shards", ()))

    def describe(self) -> dict:
        """JSON-ready session status (one row of the ``stats`` reply).

        Side-effect-free with respect to engine state, and safe to call
        from the event loop while the worker thread mutates working
        memory: every engine read here is a point read or a
        snapshot-copy, and matcher stats flow through ``peek_stats``.
        """
        self._sync_fault_notices()
        with self._fault_sync_lock:
            notices = list(self._fault_notices)
        return {
            "id": self.id,
            "tenant": self.tenant,
            "matcher": self.matcher_name,
            "strategy": self.system.strategy.name,
            "productions": len(list(self.system.matcher.productions)),
            "working_memory": len(self.system.memory),
            "cycles": self.system.cycle,
            "halted": self.system.halted,
            "queue_depth": self.queue_depth,
            "max_pending": self.max_pending,
            "degraded": self.degraded,
            "fault_notices": notices,
            # The unified snapshot (repro.obs.metrics) reads matcher
            # stats via peek_stats, so building it here -- possibly from
            # the event-loop thread while the worker matches -- cannot
            # move the parallel flush barrier.
            "metrics": obs_metrics.snapshot(
                self.system, telemetry=self.telemetry, recorder=self.recorder
            ),
            **self.telemetry.snapshot(),
        }


class SessionManager:
    """Creates, resolves, and tears down the server's sessions.

    Admission control lives here: a *tenant* (client account, team,
    workload) may hold at most its quota of concurrent sessions on this
    server.  Quotas are per-worker -- the front-door router applies the
    same check fleet-wide before a create ever reaches a worker -- and a
    create over quota raises :class:`QuotaExceeded`, which the server
    answers as a ``quota`` error (not backpressure: retrying will not
    help until the tenant destroys a session).
    """

    def __init__(
        self,
        default_max_pending: int = DEFAULT_MAX_PENDING,
        recorder=None,
        fault_plan: Optional[FaultPlan] = None,
        tenant_quotas: Optional[dict[str, int]] = None,
        default_tenant_quota: Optional[int] = None,
    ) -> None:
        self.default_max_pending = default_max_pending
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.fault_plan = fault_plan
        #: Per-tenant concurrent-session caps; tenants not listed fall
        #: back to ``default_tenant_quota`` (None = unlimited).
        self.tenant_quotas = dict(tenant_quotas or {})
        self.default_tenant_quota = default_tenant_quota
        self._sessions: dict[str, Session] = {}
        self._ids = itertools.count(1)
        #: Counters of destroyed sessions, so server-wide totals survive
        #: session churn.
        self._retired = Telemetry()
        self._quota_rejections: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def ids(self) -> list[str]:
        return sorted(self._sessions)

    def tenant_quota(self, tenant: str) -> Optional[int]:
        """The session cap for *tenant* (None = unlimited)."""
        return self.tenant_quotas.get(tenant, self.default_tenant_quota)

    def tenant_sessions(self, tenant: str) -> int:
        return sum(1 for s in self._sessions.values() if s.tenant == tenant)

    def _admit(self, tenant: str) -> None:
        quota = self.tenant_quota(tenant)
        if quota is not None and self.tenant_sessions(tenant) >= quota:
            self._quota_rejections[tenant] = (
                self._quota_rejections.get(tenant, 0) + 1
            )
            raise QuotaExceeded(
                f"tenant {tenant!r} is at its quota of {quota} "
                "concurrent session(s)"
            )

    def create(
        self,
        program: str = "",
        matcher: str = "rete",
        workers: Optional[int] = None,
        strategy: str = "lex",
        max_pending: Optional[int] = None,
        name: Optional[str] = None,
        transport: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
        state: Optional[dict] = None,
    ) -> Session:
        session_id = name if name is not None else f"s{next(self._ids)}"
        if session_id in self._sessions:
            raise Ops5Error(f"session {session_id!r} already exists")
        self._admit(tenant)
        session = Session(
            session_id,
            program=program,
            matcher=matcher,
            workers=workers,
            strategy=strategy,
            transport=transport,
            max_pending=max_pending
            if max_pending is not None
            else self.default_max_pending,
            recorder=self.recorder,
            fault_plan=self.fault_plan,
            tenant=tenant,
            state=state,
        )
        self._sessions[session_id] = session
        return session

    def get(self, session_id: Any) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise Ops5Error(f"no session {session_id!r}")
        return session

    async def destroy(self, session_id: str) -> None:
        """Remove the session, finish its queued work, reap its pool."""
        session = self.get(session_id)
        del self._sessions[session_id]  # no new submissions from here on
        await session.drain_and_close()
        self._retired.absorb(session.telemetry)

    async def drain_all(self) -> None:
        """Graceful shutdown: drain and close every session.

        Re-checks the registry on every step so a concurrent
        ``destroy_session`` request cannot race it into a double free.
        """
        while self._sessions:
            await self.destroy(next(iter(self._sessions)))

    def tenant_stats(self) -> dict:
        """Per-tenant rollup: live sessions, quota, admission rejections."""
        tenants: dict[str, dict] = {}
        for session in self._sessions.values():
            row = tenants.setdefault(
                session.tenant,
                {"sessions": 0, "quota": self.tenant_quota(session.tenant),
                 "quota_rejections": 0},
            )
            row["sessions"] += 1
        for tenant, rejected in self._quota_rejections.items():
            row = tenants.setdefault(
                tenant,
                {"sessions": 0, "quota": self.tenant_quota(tenant),
                 "quota_rejections": 0},
            )
            row["quota_rejections"] = rejected
        return tenants

    def stats(self) -> dict:
        """Server-wide telemetry rollup plus per-session rows."""
        total = Telemetry()
        total.absorb(self._retired)
        sessions = {}
        for session in self._sessions.values():
            total.absorb(session.telemetry)
            sessions[session.id] = session.describe()
        snapshot = total.snapshot()
        # The rollup's clock is its own construction time; report the
        # aggregate counters but not a meaningless uptime-derived rate.
        del snapshot["uptime_seconds"]
        del snapshot["wme_changes_per_second"]
        del snapshot["firings_per_second"]
        del snapshot["latency"]
        return {
            "schema": obs_metrics.SCHEMA,
            "sessions": sessions,
            "tenants": self.tenant_stats(),
            "totals": snapshot,
        }
