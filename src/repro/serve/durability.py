"""Session durability: a per-session write-ahead journal plus checkpoints.

The paper's Section 3 state-saving analysis prices exactly the trade
this module implements: match state is a deterministic function of the
working-memory op stream, so a crashed host can always re-derive it --
the only question is how much of the stream it must replay.  The
parallel supervisor already proved the checkpoint+journal-tail restore
bit-identical *per shard*; this module lifts the same design to whole
serve sessions so a worker process can be SIGKILLed without losing any
of them.

Layout (one directory per router)::

    <root>/<sid>.meta.json   the create_session config (replay from zero)
    <root>/<sid>.wal         JSONL op journal, appended before the reply
    <root>/<sid>.ckpt.json   latest engine checkpoint + the WAL seq it covers

The router appends every accepted mutating op to the WAL *before* the
reply leaves for the client, so the journal is always at least as new as
anything a client has seen acknowledged.  Periodic checkpoints persist
the session's ``export_state`` blob together with the journal sequence
it covers; recovery is then ``import_session`` of the checkpoint plus a
replay of the journal tail -- O(blob + tail) instead of O(journal),
which is the Section 3.1 c1-vs-c3 ratio as a recovery-latency knob.

Everything read back from disk is treated as untrusted input: truncated
trailing WAL lines (a crash mid-append) are dropped, corrupt checkpoints
fall back to full-journal replay, and engine-state blobs are validated
by :func:`validate_engine_state` -- the same validator the server's
``import_session`` op applies to payloads arriving over the wire.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import urllib.parse
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "DurabilityStore",
    "RecoveryBundle",
    "WalRecord",
    "validate_engine_state",
]

#: Schema tags on the persisted files.
META_SCHEMA = "repro.session-meta/1"
CHECKPOINT_SCHEMA = "repro.session-checkpoint/1"

#: The engine checkpoint schema (kept in sync with Engine.STATE_SCHEMA;
#: duplicated here so validation needs no engine import).
ENGINE_STATE_SCHEMA = "repro.engine-state/1"


def validate_engine_state(state) -> Optional[str]:
    """First problem with an untrusted ``repro.engine-state/1`` blob, or None.

    Used by the server's ``import_session`` op (wire payloads) and by
    checkpoint loading (disk payloads): a malformed, truncated, or
    schema-mismatched blob must become a typed error, never a traceback
    deep inside the engine.
    """
    if not isinstance(state, dict):
        return "state must be a JSON object"
    if state.get("schema") != ENGINE_STATE_SCHEMA:
        return (
            f"unknown state schema {state.get('schema')!r}; "
            f"expected {ENGINE_STATE_SCHEMA!r}"
        )
    wmes = state.get("wmes")
    if not isinstance(wmes, list):
        return "wmes must be a list"
    seen_tags: set[int] = set()
    top = 0
    for row in wmes:
        if not isinstance(row, (list, tuple)) or len(row) != 3:
            return "each wme must be a [timetag, class, attributes] triple"
        tag, cls, attrs = row
        if isinstance(tag, bool) or not isinstance(tag, int) or tag < 1:
            return f"wme timetag {tag!r} is not a positive integer"
        if tag in seen_tags:
            return f"duplicate wme timetag {tag}"
        seen_tags.add(tag)
        top = max(top, tag)
        if not isinstance(cls, str) or not cls:
            return f"wme class {cls!r} is not a non-empty string"
        if not isinstance(attrs, dict):
            return "wme attributes must be an object"
        for name, value in attrs.items():
            if not isinstance(name, str):
                return f"attribute name {name!r} is not a string"
            if isinstance(value, bool) or not isinstance(value, (str, int, float)):
                return (
                    f"attribute {name!r} value {value!r} is neither "
                    "a symbol nor a number"
                )
    next_timetag = state.get("next_timetag")
    if (
        isinstance(next_timetag, bool)
        or not isinstance(next_timetag, int)
        or next_timetag <= top
    ):
        return (
            f"next_timetag {next_timetag!r} must be an integer above every "
            "wme timetag"
        )
    fired = state.get("fired")
    if not isinstance(fired, list):
        return "fired must be a list"
    for row in fired:
        if not isinstance(row, (list, tuple)) or len(row) != 2:
            return "each fired entry must be a [production, timetags] pair"
        name, tags = row
        if not isinstance(name, str):
            return f"fired production {name!r} is not a string"
        if not isinstance(tags, (list, tuple)) or any(
            isinstance(t, bool) or not isinstance(t, int) for t in tags
        ):
            return f"fired timetags for {name!r} must be a list of integers"
    for counter in ("cycle", "total_firings", "total_wme_changes"):
        value = state.get(counter)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            return f"{counter} {value!r} is not a non-negative integer"
    if not isinstance(state.get("halted"), bool):
        return "halted must be a boolean"
    if not isinstance(state.get("halt_reason"), str):
        return "halt_reason must be a string"
    output = state.get("output")
    if not isinstance(output, list) or any(
        not isinstance(line, str) for line in output
    ):
        return "output must be a list of strings"
    return None


@dataclass
class WalRecord:
    """One accepted op in a session's journal."""

    seq: int
    request: dict


@dataclass
class RecoveryBundle:
    """Everything needed to rebuild one session after its worker died."""

    session: str
    #: The original ``create_session`` config (program, matcher, ...).
    config: dict
    #: The latest valid checkpoint (``seq``/``config``/``state``), or None.
    checkpoint: Optional[dict]
    #: Journal tail to replay after the checkpoint (skip-marked and
    #: checkpoint-covered records already filtered out).
    records: list[WalRecord]
    #: Highest sequence number ever appended (including skipped ops).
    last_seq: int
    #: Non-fatal anomalies found while loading (corrupt checkpoint,
    #: truncated trailing line, ...); recovery proceeds around them.
    notes: list[str] = field(default_factory=list)

    @property
    def used_checkpoint(self) -> bool:
        return self.checkpoint is not None


def _encode_sid(session_id: str) -> str:
    """Injective, filesystem-safe encoding of a session id."""
    quoted = urllib.parse.quote(session_id, safe="")
    if len(quoted) <= 96:
        return quoted
    digest = hashlib.sha256(session_id.encode()).hexdigest()[:32]
    return f"{quoted[:48]}.{digest}"


class DurabilityStore:
    """The on-disk journal + checkpoint store behind one router.

    All mutation methods are called from the router's event loop (one
    thread), so per-session appends are naturally ordered; the counter
    lock only guards the stats snapshot, which other threads read.
    """

    def __init__(
        self, root: str, fsync: bool = False, commit_window: float = 0.0
    ) -> None:
        self.root = os.path.abspath(root)
        self.fsync = fsync
        #: Group-commit window in seconds.  ``0`` keeps the strict
        #: policy: every append fsyncs before its reply is released.
        #: Positive values batch fsyncs behind a committer thread that
        #: syncs all dirty journals at most once per window -- the
        #: classic group-commit trade: one disk barrier absorbs many
        #: appends, and at most *commit_window* seconds of acknowledged
        #: ops ride on the page cache (lost only if the whole *host*
        #: dies inside the window; worker kills lose nothing, since the
        #: router holding the WAL survives them).
        self.commit_window = max(0.0, commit_window)
        os.makedirs(self.root, exist_ok=True)
        self._wal_handles: dict[str, object] = {}
        self._lock = threading.Lock()
        self.appends = 0
        self.skips = 0
        self.checkpoints = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self._dirty: set[str] = set()
        self._committer: Optional[threading.Thread] = None
        self._commit_wakeup = threading.Condition(self._lock)
        self._closing = False
        if self.fsync and self.commit_window > 0:
            self._committer = threading.Thread(
                target=self._commit_loop, daemon=True, name="repro-wal-commit"
            )
            self._committer.start()

    # -- paths --------------------------------------------------------------

    def _meta_path(self, sid: str) -> str:
        return os.path.join(self.root, f"{_encode_sid(sid)}.meta.json")

    def _wal_path(self, sid: str) -> str:
        return os.path.join(self.root, f"{_encode_sid(sid)}.wal")

    def _ckpt_path(self, sid: str) -> str:
        return os.path.join(self.root, f"{_encode_sid(sid)}.ckpt.json")

    def _write_atomic(self, path: str, payload: dict) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
            handle.write("\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _wal_handle(self, sid: str):
        handle = self._wal_handles.get(sid)
        if handle is None or handle.closed:
            handle = open(self._wal_path(sid), "a")
            self._wal_handles[sid] = handle
        return handle

    def _append_line(self, sid: str, row: dict) -> None:
        line = json.dumps(row, separators=(",", ":")) + "\n"
        handle = self._wal_handle(sid)
        handle.write(line)
        handle.flush()
        if self.fsync:
            if self.commit_window > 0:
                with self._lock:
                    self._dirty.add(sid)
                    self._commit_wakeup.notify()
            else:
                os.fsync(handle.fileno())
                with self._lock:
                    self.fsyncs += 1
        with self._lock:
            self.bytes_appended += len(line)

    # -- group commit --------------------------------------------------------

    def _commit_loop(self) -> None:
        """Committer thread: one fsync barrier per window for all dirty
        journals, however many appends landed inside it.

        The window wait sits on the condition variable, not a plain
        sleep, so ``close()`` interrupts it immediately -- shutdown
        latency is the final barrier's cost, never a whole window."""
        while True:
            with self._lock:
                while not self._dirty and not self._closing:
                    self._commit_wakeup.wait()
                if self._closing:
                    return  # close() runs the final barrier itself
                self._commit_wakeup.wait(timeout=self.commit_window)
                if self._closing:
                    return
            self.sync()

    def sync(self) -> int:
        """Fsync every journal with unsynced appends; returns how many.

        The explicit barrier: checkpointing and shutdown call it so a
        compacted or closed journal is never *less* durable than the
        strict policy would have left it.
        """
        with self._lock:
            dirty = sorted(self._dirty)
            self._dirty.clear()
        synced = 0
        for sid in dirty:
            handle = self._wal_handles.get(sid)
            if handle is None or handle.closed:
                continue  # compacted or dropped since it was dirtied
            try:
                os.fsync(handle.fileno())
            except OSError:  # pragma: no cover - handle raced a drop
                continue
            synced += 1
        if synced:
            with self._lock:
                self.fsyncs += synced
        return synced

    # -- session lifecycle ---------------------------------------------------

    def register(self, session_id: str, config: dict) -> None:
        """Record a freshly created session: meta written, journal reset."""
        self._write_atomic(
            self._meta_path(session_id),
            {"schema": META_SCHEMA, "id": session_id, "config": dict(config)},
        )
        # A name reused after destroy starts a fresh history.
        handle = self._wal_handles.pop(session_id, None)
        if handle is not None:
            handle.close()
        open(self._wal_path(session_id), "w").close()
        try:
            os.remove(self._ckpt_path(session_id))
        except FileNotFoundError:
            pass

    def drop(self, session_id: str) -> None:
        """Forget a destroyed session (journal, checkpoint, meta)."""
        handle = self._wal_handles.pop(session_id, None)
        if handle is not None:
            handle.close()
        for path in (
            self._wal_path(session_id),
            self._ckpt_path(session_id),
            self._meta_path(session_id),
        ):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass

    def sessions(self) -> list[str]:
        """Ids of every session with durable state in this store."""
        ids = []
        for name in os.listdir(self.root):
            if not name.endswith(".meta.json"):
                continue
            try:
                with open(os.path.join(self.root, name)) as handle:
                    meta = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(meta, dict) and meta.get("schema") == META_SCHEMA:
                sid = meta.get("id")
                if isinstance(sid, str):
                    ids.append(sid)
        return sorted(ids)

    # -- the write path ------------------------------------------------------

    def append(self, session_id: str, seq: int, request: dict) -> None:
        """Journal one accepted op *before* its reply is released."""
        self._append_line(session_id, {"seq": seq, "request": request})
        with self._lock:
            self.appends += 1

    def mark_skipped(self, session_id: str, seq: int) -> None:
        """Mark a journaled op the worker definitively did not execute.

        Backpressure rejections are never enqueued at the worker, so a
        replay must not apply them; the tombstone is appended (not
        rewritten in place) so the journal stays append-only.
        """
        self._append_line(session_id, {"seq": seq, "skip": True})
        with self._lock:
            self.skips += 1

    def save_checkpoint(
        self, session_id: str, seq: int, config: dict, state: dict
    ) -> None:
        """Persist a checkpoint covering every op up to *seq*, then
        compact the journal down to its uncovered tail."""
        self._write_atomic(
            self._ckpt_path(session_id),
            {
                "schema": CHECKPOINT_SCHEMA,
                "id": session_id,
                "seq": seq,
                "config": dict(config),
                "state": state,
            },
        )
        records, skipped, _, _ = self._read_wal(session_id)
        handle = self._wal_handles.pop(session_id, None)
        if handle is not None:
            handle.close()
        tmp = f"{self._wal_path(session_id)}.tmp"
        with open(tmp, "w") as out:
            for record in records:
                if record.seq > seq:
                    out.write(
                        json.dumps(
                            {"seq": record.seq, "request": record.request},
                            separators=(",", ":"),
                        )
                        + "\n"
                    )
            for skip_seq in sorted(skipped):
                if skip_seq > seq:
                    out.write(
                        json.dumps({"seq": skip_seq, "skip": True}) + "\n"
                    )
            out.flush()
            if self.fsync:
                os.fsync(out.fileno())
        os.replace(tmp, self._wal_path(session_id))
        with self._lock:
            self.checkpoints += 1

    # -- the read (recovery) path --------------------------------------------

    def _read_wal(
        self, session_id: str
    ) -> tuple[list[WalRecord], set[int], int, list[str]]:
        """(ordered records, skipped seqs, last seq, notes)."""
        records: list[WalRecord] = []
        skipped: set[int] = set()
        last_seq = 0
        notes: list[str] = []
        try:
            with open(self._wal_path(session_id)) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return records, skipped, last_seq, notes
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                row = json.loads(stripped)
            except json.JSONDecodeError:
                if index == len(lines) - 1 and not line.endswith("\n"):
                    notes.append("dropped truncated trailing journal line")
                else:
                    notes.append(
                        f"stopped at corrupt journal line {index + 1}"
                    )
                break
            seq = row.get("seq")
            if isinstance(seq, bool) or not isinstance(seq, int):
                notes.append(f"stopped at journal line {index + 1}: bad seq")
                break
            last_seq = max(last_seq, seq)
            if row.get("skip"):
                skipped.add(seq)
            elif isinstance(row.get("request"), dict):
                records.append(WalRecord(seq=seq, request=row["request"]))
            else:
                notes.append(
                    f"stopped at journal line {index + 1}: no request"
                )
                break
        return records, skipped, last_seq, notes

    def load(self, session_id: str) -> Optional[RecoveryBundle]:
        """Everything needed to rebuild *session_id*, or None if unknown."""
        notes: list[str] = []
        config: Optional[dict] = None
        try:
            with open(self._meta_path(session_id)) as handle:
                meta = json.load(handle)
            if (
                isinstance(meta, dict)
                and meta.get("schema") == META_SCHEMA
                and isinstance(meta.get("config"), dict)
            ):
                config = meta["config"]
            else:
                notes.append("meta file malformed")
        except FileNotFoundError:
            pass
        except (OSError, json.JSONDecodeError) as error:
            notes.append(f"meta unreadable: {error}")

        checkpoint: Optional[dict] = None
        try:
            with open(self._ckpt_path(session_id)) as handle:
                blob = json.load(handle)
            problem = None
            if not isinstance(blob, dict) or blob.get("schema") != CHECKPOINT_SCHEMA:
                problem = "bad checkpoint schema"
            elif isinstance(blob.get("seq"), bool) or not isinstance(
                blob.get("seq"), int
            ):
                problem = "bad checkpoint seq"
            elif not isinstance(blob.get("config"), dict):
                problem = "bad checkpoint config"
            else:
                problem = validate_engine_state(blob.get("state"))
            if problem is None:
                checkpoint = blob
            else:
                notes.append(f"checkpoint unusable ({problem}); full replay")
        except FileNotFoundError:
            pass
        except (OSError, json.JSONDecodeError) as error:
            notes.append(f"checkpoint unreadable ({error}); full replay")

        records, skipped, last_seq, wal_notes = self._read_wal(session_id)
        notes.extend(wal_notes)
        if config is None and checkpoint is None:
            return None
        if config is None:
            config = checkpoint["config"]
            notes.append("create config recovered from checkpoint")
        floor = checkpoint["seq"] if checkpoint is not None else 0
        tail = [
            record
            for record in records
            if record.seq > floor and record.seq not in skipped
        ]
        return RecoveryBundle(
            session=session_id,
            config=config,
            checkpoint=checkpoint,
            records=tail,
            last_seq=last_seq,
            notes=notes,
        )

    # -- bookkeeping ---------------------------------------------------------

    def stats(self) -> dict:
        sessions = len(self.sessions())
        with self._lock:
            return {
                "root": self.root,
                "fsync": self.fsync,
                "commit_window": self.commit_window,
                "appends": self.appends,
                "skips": self.skips,
                "checkpoints": self.checkpoints,
                "fsyncs": self.fsyncs,
                "pending_sync": len(self._dirty),
                "bytes_appended": self.bytes_appended,
                "sessions": sessions,
            }

    def close(self) -> None:
        if self._committer is not None:
            with self._lock:
                self._closing = True
                self._commit_wakeup.notify()
        self.sync()
        if self._committer is not None:
            self._committer.join(timeout=2 * self.commit_window + 1.0)
            self._committer = None
        for handle in self._wal_handles.values():
            handle.close()
        self._wal_handles.clear()
