"""Load generator: replay workload traces from N concurrent clients.

A *trace* here is a JSON list of protocol requests without the
``session`` field -- the per-client script of one serving workload.
:func:`closure_trace` generates the standard one (disjoint
transitive-closure chains ingested batch by batch, each followed by a
run-to-quiescence), traces round-trip through :func:`save_trace` /
:func:`load_trace`, and :func:`run_load` replays a trace from N
threads, each with its own connection and (by default) its own
session.

Backpressure is handled the way a production client would: rejected
requests are retried after the server's ``retry_after`` hint, and the
rejection count is reported, so a run that engaged backpressure is
visible in the summary rather than silently slower.

Run it against a live server (or ``--spawn`` one in-process)::

    python -m repro.serve.loadgen --spawn --clients 4 --batches 8
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..workloads.programs import closure
from .client import RuleClient
from .stats import LatencyWindow

DEFAULT_BATCHES = 6
DEFAULT_CHAIN_LENGTH = 6


def closure_trace(
    batches: int = DEFAULT_BATCHES,
    chain_length: int = DEFAULT_CHAIN_LENGTH,
    batch_size: Optional[int] = None,
    prefix: str = "c",
) -> list[dict]:
    """The standard serving workload: closure chains, batch by batch.

    Every batch asserts one *disjoint* parent chain (so per-batch work
    is constant and independent of ingestion order across sessions) in
    chunks of *batch_size* WMEs, then runs to quiescence.  Each batch
    fires exactly ``chain_length * (chain_length + 1) / 2`` productions.
    """
    ops: list[dict] = []
    size = batch_size or chain_length
    for batch in range(batches):
        wmes = [
            ["parent", {"from": f"{prefix}{batch}.{i}", "to": f"{prefix}{batch}.{i + 1}"}]
            for i in range(chain_length)
        ]
        for start in range(0, len(wmes), size):
            ops.append({"op": "assert", "wmes": wmes[start : start + size]})
        ops.append({"op": "run"})
    return ops


def expected_trace_firings(
    batches: int = DEFAULT_BATCHES, chain_length: int = DEFAULT_CHAIN_LENGTH
) -> int:
    """Firings one :func:`closure_trace` replay must produce."""
    return batches * closure.expected_chain_facts(chain_length)


def save_trace(trace: Sequence[dict], path: str) -> None:
    """Write a trace (a list of session requests) as JSON."""
    with open(path, "w") as handle:
        json.dump(list(trace), handle, indent=2)


def load_trace(path: str) -> list[dict]:
    """Read back a trace written by :func:`save_trace`."""
    with open(path) as handle:
        trace = json.load(handle)
    if not isinstance(trace, list):
        raise ValueError(f"{path}: a trace must be a JSON list of requests")
    return trace


@dataclass
class ClientResult:
    """What one replaying client observed."""

    client: int
    session: str
    requests: int = 0
    rejections: int = 0
    firings: int = 0
    elapsed: float = 0.0
    #: Client-observed per-request latencies, seconds.
    latencies: list[float] = field(default_factory=list)
    error: Optional[str] = None


def replay(
    address,
    trace: Sequence[dict],
    client_index: int = 0,
    program: str = closure.PROGRAM,
    matcher: str = "rete",
    workers: Optional[int] = None,
    max_pending: Optional[int] = None,
    session: Optional[str] = None,
    destroy: bool = True,
    retries: int = 256,
) -> ClientResult:
    """Replay *trace* over one connection; returns what this client saw.

    With *session* given the client joins an existing session (several
    clients hammering one session is the backpressure scenario);
    otherwise it creates its own and, with *destroy*, tears it down --
    exercising the pool-reaping path -- after the replay.
    """
    with RuleClient(address) as client:
        own = session is None
        if own:
            session = client.create_session(
                program=program,
                matcher=matcher,
                workers=workers,
                max_pending=max_pending,
            )
        result = ClientResult(client=client_index, session=session)

        def on_retry(rejection) -> None:
            result.rejections += 1

        started = time.perf_counter()
        for op in trace:
            fields = {k: v for k, v in op.items() if k != "op"}
            sent = time.perf_counter()
            reply = client.call(
                op["op"],
                retries=retries,
                on_retry=on_retry,
                session=session,
                **fields,
            )
            result.latencies.append(time.perf_counter() - sent)
            result.requests += 1
            result.firings += reply.get("fired", 0)
            if isinstance(reply.get("run"), dict):  # assert ... run=true
                result.firings += reply["run"].get("fired", 0)
        result.elapsed = time.perf_counter() - started
        if own and destroy:
            client.destroy_session(session)
        return result


def run_load(
    address,
    clients: int = 4,
    trace: Optional[Sequence[dict]] = None,
    shared_session: bool = False,
    program: str = closure.PROGRAM,
    matcher: str = "rete",
    workers: Optional[int] = None,
    max_pending: Optional[int] = None,
    **trace_kwargs,
) -> dict:
    """Replay from *clients* concurrent threads; return a summary dict.

    Throughput is measured at the server: the wme-change and firing
    totals are the difference between the server-wide stats before and
    after the run, divided by the wall-clock window -- *sustained*
    rates in the sense of the paper's Section 6, not per-request bests.
    """
    base_trace = list(trace) if trace is not None else None
    with RuleClient(address) as control:
        shared = None
        if shared_session:
            shared = control.create_session(
                program=program,
                matcher=matcher,
                workers=workers,
                max_pending=max_pending,
            )
        before = control.stats()["totals"]

        results: list[ClientResult] = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            client_trace = (
                base_trace
                if base_trace is not None
                else closure_trace(prefix=f"c{index}.", **trace_kwargs)
            )
            try:
                result = replay(
                    address,
                    client_trace,
                    client_index=index,
                    program=program,
                    matcher=matcher,
                    workers=workers,
                    max_pending=max_pending,
                    session=shared,
                )
            except Exception as error:  # surfaced in the summary
                result = ClientResult(
                    client=index, session=shared or "?", error=str(error)
                )
            with lock:
                results.append(result)

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
            for i in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        after = control.stats()["totals"]
        if shared is not None:
            control.destroy_session(shared)

    window = LatencyWindow(capacity=max(1, sum(len(r.latencies) for r in results)))
    for result in results:
        for sample in result.latencies:
            window.record(sample)

    wme_changes = after["wme_changes"] - before["wme_changes"]
    firings = after["firings"] - before["firings"]
    return {
        "clients": clients,
        "sessions": 1 if shared_session else clients,
        "shared_session": shared_session,
        "matcher": matcher,
        "elapsed_seconds": elapsed,
        "requests": sum(r.requests for r in results),
        "rejections": sum(r.rejections for r in results),
        "errors": [r.error for r in results if r.error],
        "client_firings": sum(r.firings for r in results),
        "wme_changes": wme_changes,
        "firings": firings,
        "wme_changes_per_second": wme_changes / elapsed if elapsed else 0.0,
        "firings_per_second": firings / elapsed if elapsed else 0.0,
        "latency": {
            "p50": window.p50,
            "p95": window.p95,
            "p99": window.p99,
            "samples": window.count,
        },
    }


def render_summary(summary: dict) -> str:
    """A one-screen human-readable report of one :func:`run_load`."""
    latency = summary["latency"]
    lines = [
        f"clients {summary['clients']} over {summary['sessions']} session(s) "
        f"[{summary['matcher']}]: {summary['requests']} requests in "
        f"{summary['elapsed_seconds']:.3f}s, {summary['rejections']} backpressure "
        "rejections",
        f"  sustained: {summary['wme_changes_per_second']:.0f} wme-changes/s, "
        f"{summary['firings_per_second']:.0f} firings/s",
        f"  latency: p50 {latency['p50'] * 1e3:.2f}ms  "
        f"p95 {latency['p95'] * 1e3:.2f}ms  p99 {latency['p99'] * 1e3:.2f}ms",
    ]
    if summary["errors"]:
        lines.append(f"  ERRORS: {summary['errors']}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.loadgen",
        description="replay workload traces against a rule server",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7410)
    parser.add_argument("--unix", help="connect over a unix socket instead")
    parser.add_argument(
        "--spawn", action="store_true",
        help="start an in-process server for the duration of the run",
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--shared-session", action="store_true",
        help="all clients target one session (the backpressure scenario)",
    )
    parser.add_argument("--matcher", default="rete")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --matcher parallel")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="session queue bound (server default: 64)")
    parser.add_argument("--batches", type=int, default=DEFAULT_BATCHES)
    parser.add_argument("--chain-length", type=int, default=DEFAULT_CHAIN_LENGTH)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--trace", help="replay a saved trace file instead")
    parser.add_argument("--save-trace", help="write the generated trace as JSON")
    parser.add_argument("--out", help="write the run summary as JSON")
    args = parser.parse_args(argv)

    trace = load_trace(args.trace) if args.trace else None
    if args.save_trace:
        save_trace(
            trace
            if trace is not None
            else closure_trace(
                batches=args.batches,
                chain_length=args.chain_length,
                batch_size=args.batch_size,
            ),
            args.save_trace,
        )

    server = None
    try:
        if args.spawn:
            from .server import ServerThread

            server = ServerThread()
            address = server.address
        else:
            address = args.unix if args.unix else (args.host, args.port)

        trace_kwargs = {}
        if trace is None:
            trace_kwargs = {
                "batches": args.batches,
                "chain_length": args.chain_length,
                "batch_size": args.batch_size,
            }
        summary = run_load(
            address,
            clients=args.clients,
            trace=trace,
            shared_session=args.shared_session,
            matcher=args.matcher,
            workers=args.workers,
            max_pending=args.max_pending,
            **trace_kwargs,
        )
    finally:
        if server is not None:
            server.stop()

    print(render_summary(summary))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
    return 1 if summary["errors"] else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
