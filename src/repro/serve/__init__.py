"""Engine-as-a-service: the long-running, multi-session rule server.

The paper measures *sustained* execution speed -- wme-changes/sec and
firings/sec over whole runs (Section 6) -- and the roadmap's north star
is a system that serves heavy traffic, not one that runs a single
program per process.  This package is that serving layer:

* :mod:`~repro.serve.protocol` -- length-prefixed JSON frames on a
  local socket;
* :mod:`~repro.serve.session` -- one :class:`ProductionSystem` per
  session behind a bounded queue with explicit backpressure;
* :mod:`~repro.serve.server` -- the asyncio front-end
  (:class:`RuleServer`), plus :class:`ServerThread` for embedding;
* :mod:`~repro.serve.router` -- the front-door router
  (:class:`RuleRouter`) hashing sessions over N workers, with
  fleet-wide tenant quotas, live session migration, and degraded-worker
  demotion; :class:`RouterFleet` embeds the whole topology;
* :mod:`~repro.serve.client` -- the blocking reference client;
* :mod:`~repro.serve.durability` -- the per-session write-ahead
  journal + checkpoint store that makes worker death survivable;
* :mod:`~repro.serve.fleet` -- real worker OS processes under a
  supervisor (heartbeat, fencing, restart backoff, rolling restarts);
* :mod:`~repro.serve.loadgen` -- trace replay from N concurrent
  clients, measuring sustained throughput and tail latency;
* :mod:`~repro.serve.stats` -- the counters and percentile windows
  behind the ``stats`` requests.

See ``docs/serve.md`` for the protocol and lifecycle reference and
``docs/fault-tolerance.md`` for the durability/recovery contract.
"""

from .client import Address, BackpressureError, RuleClient, ServerError
from .durability import DurabilityStore, RecoveryBundle, validate_engine_state
from .fleet import ProcessFleet, ProcessRouterFleet, WorkerProcess
from .protocol import MAX_FRAME, Disconnected, ProtocolError
from .router import RouterFleet, RouterThread, RuleRouter, WorkerLink
from .server import RuleServer, ServerThread, run_server
from .session import (
    DEFAULT_MAX_PENDING,
    QuotaExceeded,
    Session,
    SessionManager,
    build_matcher,
)
from .stats import LatencyWindow, Telemetry

__all__ = [
    "Address",
    "BackpressureError",
    "DEFAULT_MAX_PENDING",
    "Disconnected",
    "DurabilityStore",
    "LatencyWindow",
    "MAX_FRAME",
    "ProcessFleet",
    "ProcessRouterFleet",
    "ProtocolError",
    "QuotaExceeded",
    "RecoveryBundle",
    "RouterFleet",
    "RouterThread",
    "RuleClient",
    "RuleRouter",
    "RuleServer",
    "ServerError",
    "ServerThread",
    "Session",
    "SessionManager",
    "Telemetry",
    "WorkerLink",
    "WorkerProcess",
    "build_matcher",
    "run_server",
    "validate_engine_state",
]
