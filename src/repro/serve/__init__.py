"""Engine-as-a-service: the long-running, multi-session rule server.

The paper measures *sustained* execution speed -- wme-changes/sec and
firings/sec over whole runs (Section 6) -- and the roadmap's north star
is a system that serves heavy traffic, not one that runs a single
program per process.  This package is that serving layer:

* :mod:`~repro.serve.protocol` -- length-prefixed JSON frames on a
  local socket;
* :mod:`~repro.serve.session` -- one :class:`ProductionSystem` per
  session behind a bounded queue with explicit backpressure;
* :mod:`~repro.serve.server` -- the asyncio front-end
  (:class:`RuleServer`), plus :class:`ServerThread` for embedding;
* :mod:`~repro.serve.router` -- the front-door router
  (:class:`RuleRouter`) hashing sessions over N workers, with
  fleet-wide tenant quotas, live session migration, and degraded-worker
  demotion; :class:`RouterFleet` embeds the whole topology;
* :mod:`~repro.serve.client` -- the blocking reference client;
* :mod:`~repro.serve.loadgen` -- trace replay from N concurrent
  clients, measuring sustained throughput and tail latency;
* :mod:`~repro.serve.stats` -- the counters and percentile windows
  behind the ``stats`` requests.

See ``docs/serve.md`` for the protocol and lifecycle reference.
"""

from .client import Address, BackpressureError, RuleClient, ServerError
from .protocol import MAX_FRAME, ProtocolError
from .router import RouterFleet, RouterThread, RuleRouter, WorkerLink
from .server import RuleServer, ServerThread, run_server
from .session import (
    DEFAULT_MAX_PENDING,
    QuotaExceeded,
    Session,
    SessionManager,
    build_matcher,
)
from .stats import LatencyWindow, Telemetry

__all__ = [
    "Address",
    "BackpressureError",
    "DEFAULT_MAX_PENDING",
    "LatencyWindow",
    "MAX_FRAME",
    "ProtocolError",
    "QuotaExceeded",
    "RouterFleet",
    "RouterThread",
    "RuleClient",
    "RuleRouter",
    "RuleServer",
    "ServerError",
    "ServerThread",
    "Session",
    "SessionManager",
    "Telemetry",
    "WorkerLink",
    "build_matcher",
    "run_server",
]
