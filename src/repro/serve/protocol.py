"""Length-prefixed JSON framing for the rule server.

Every message on the wire -- request or response -- is one *frame*: a
4-byte big-endian unsigned length followed by that many bytes of UTF-8
JSON encoding a single object.  The format is deliberately minimal: it
needs no schema registry, any language can speak it, and a frame is
self-delimiting so one connection can pipeline many requests.

Both sides of the conversation are provided here:

* :func:`read_message` / :func:`write_message` -- the asyncio server
  side (stream reader/writer pairs);
* :func:`send_message` / :func:`recv_message` -- the blocking client
  side (plain sockets), used by :mod:`repro.serve.client`.

Frames above :data:`MAX_FRAME` are refused in both directions: an
oversized length prefix on input is corruption or abuse, and producing
one on output would just move the failure to the peer.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Optional

#: Largest accepted frame payload (16 MiB): far above any sane request,
#: far below what a garbage length prefix would ask us to allocate.
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed, truncated, or oversized frame."""


class Disconnected(ProtocolError):
    """The peer went away (EOF mid-frame or between request and reply).

    Distinguished from other protocol errors because it is the one case
    a client may transparently repair by reconnecting -- a worker
    restart severs every connection, but the service is still there.
    """


def encode_frame(message: Any) -> bytes:
    """Serialise *message* (any JSON-encodable object) into one frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Any:
    """Decode one frame's payload back into the message object."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from None


def _check_length(length: int) -> None:
    if length > MAX_FRAME:
        raise ProtocolError(
            f"peer announced a {length}-byte frame; limit is {MAX_FRAME}"
        )


# -- asyncio (server) side ------------------------------------------------------


async def read_message(reader: asyncio.StreamReader) -> Optional[Any]:
    """Read one message; return None on clean EOF between frames."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between frames
        raise ProtocolError("connection closed mid-header") from None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(payload)


async def write_message(writer: asyncio.StreamWriter, message: Any) -> None:
    """Send one message and wait for the transport to accept it."""
    writer.write(encode_frame(message))
    await writer.drain()


# -- blocking (client) side -----------------------------------------------------


def send_message(sock: socket.socket, message: Any) -> None:
    """Send one message over a connected blocking socket."""
    sock.sendall(encode_frame(message))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            received = count - remaining
            if not chunks and received == 0:
                return b""
            raise Disconnected(
                f"connection closed after {received} of {count} bytes"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Any]:
    """Receive one message; return None on clean EOF between frames."""
    header = _recv_exactly(sock, _HEADER.size)
    if not header:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    return decode_payload(_recv_exactly(sock, length))
