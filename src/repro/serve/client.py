"""A blocking client for the rule server.

:class:`RuleClient` speaks the length-prefixed JSON protocol over a
plain socket -- one request, one reply, in order.  It is what the load
generator, the benchmarks, and the tests use; it is also a reference
implementation for clients in other languages (the protocol is just
framed JSON).

Error handling mirrors the server's reply contract:

* a reply with ``ok: false`` raises :class:`ServerError` --
* -- except backpressure rejections, which raise
  :class:`BackpressureError` carrying the server's ``retry_after`` hint;
* :meth:`RuleClient.call` wraps :meth:`request` in a retry loop that
  sleeps out backpressure with exponential backoff and jitter, which is
  how well-behaved clients are expected to ingest under load.
"""

from __future__ import annotations

import math
import random
import socket
import time
from typing import Any, Optional, Sequence, Union

from .protocol import Disconnected, recv_message, send_message

#: A server address: a unix-socket path or a (host, port) pair.
Address = Union[str, tuple]

#: Fallback retry hint when the server's ``retry_after`` is absent or
#: malformed, and the ceiling a (possibly buggy or hostile) server can
#: push a client's hint to.  The server's own hints top out at 2s
#: (``session.MAX_RETRY_AFTER``); 60s leaves generous headroom for
#: other implementations while keeping one bad reply from parking a
#: client for hours.
DEFAULT_RETRY_AFTER = 0.05
MAX_RETRY_AFTER_HINT = 60.0


class ServerError(RuntimeError):
    """The server answered ``ok: false``."""

    def __init__(self, reply: dict) -> None:
        super().__init__(reply.get("error", "unknown server error"))
        self.reply = reply


class BackpressureError(ServerError):
    """The session queue was full; retry after :attr:`retry_after`."""

    @property
    def retry_after(self) -> float:
        """The server's retry hint, validated.

        The wire value is untrusted input: a missing, non-numeric,
        NaN/infinite, or negative hint falls back to
        :data:`DEFAULT_RETRY_AFTER` rather than poisoning the caller's
        sleep, and sane values are clamped to
        :data:`MAX_RETRY_AFTER_HINT`.
        """
        raw = self.reply.get("retry_after", DEFAULT_RETRY_AFTER)
        try:
            hint = float(raw)
        except (TypeError, ValueError):
            return DEFAULT_RETRY_AFTER
        if not math.isfinite(hint) or hint < 0.0:
            return DEFAULT_RETRY_AFTER
        return min(hint, MAX_RETRY_AFTER_HINT)


class RuleClient:
    """One connection to a rule server."""

    def __init__(self, address: Address, timeout: Optional[float] = 60.0) -> None:
        self.address = address
        self.timeout = timeout
        self.reconnects = 0
        self._connect()

    def _connect(self) -> None:
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target: Any = self.address
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = tuple(self.address)
        sock.settimeout(self.timeout)
        try:
            sock.connect(target)
        except BaseException:
            sock.close()
            raise
        self._sock = sock

    def _reconnect(self) -> None:
        """Replace a severed connection (counted in :attr:`reconnects`)."""
        try:
            self._sock.close()
        except OSError:
            pass
        self._connect()
        self.reconnects += 1

    # -- transport -----------------------------------------------------------

    def request(self, op: str, **fields: Any) -> dict:
        """One round-trip; returns the reply dict, raising on failures."""
        message = {"op": op, **{k: v for k, v in fields.items() if v is not None}}
        send_message(self._sock, message)
        reply = recv_message(self._sock)
        if reply is None:
            raise Disconnected("server closed the connection mid-request")
        if not reply.get("ok"):
            if reply.get("error") == "backpressure":
                raise BackpressureError(reply)
            raise ServerError(reply)
        return reply

    def call(
        self,
        op: str,
        retries: int = 64,
        on_retry=None,
        max_total_wait: float = 30.0,
        backoff_base: float = 2.0,
        max_interval: float = 5.0,
        rng: Optional[random.Random] = None,
        **fields: Any,
    ) -> dict:
        """Like :meth:`request`, but sleeps out backpressure rejections.

        The sleep before attempt *n* is the server's ``retry_after``
        hint scaled by ``backoff_base ** (n - 1)`` and capped at
        *max_interval*, with full jitter (a uniform draw over
        ``(0, interval]``): a fleet of clients rejected together must
        not retry together, or they re-arrive as the same thundering
        herd that filled the queue.  The cap matters because the
        exponential is unbounded -- by attempt 20 an uncapped interval
        is ~6 days, so one long-lived rejection streak would turn the
        remaining retry budget into a single giant sleep instead of
        the steady sub-*max_interval* probing the server's hint asked
        for.  Two budgets bound the loop -- *retries* attempts and
        *max_total_wait* cumulative sleep seconds -- and exhausting
        either raises a :class:`BackpressureError` whose reply reports
        ``attempts`` and ``total_wait``, so callers see how hard the
        client actually tried.  *on_retry* (if given) is called with
        each rejection -- the load generator counts them there.  *rng*
        pins the jitter for deterministic tests.

        Severed connections heal inside the same budgets: a
        ``BrokenPipeError``/``ConnectionResetError``/EOF (a worker
        process restarting under the router, say) triggers a jittered
        reconnect-and-resend instead of a hard error, and only an
        exhausted budget re-raises the transport failure.  Resending
        makes delivery at-least-once: a reply lost between client and
        router means the resent op may run twice.  A durable router's
        journal de-duplicates only the router-to-worker leg (a worker
        crash mid-op is answered from the recovery replay, not
        re-executed); the protocol carries no client request id, so the
        client-to-router leg stays at-least-once -- callers needing
        strict exactly-once must make their ops idempotent or
        de-duplicate at the application level.
        """
        draw = rng.uniform if rng is not None else random.uniform
        total_wait = 0.0
        attempts = 0
        disconnect: Optional[Exception] = None
        while attempts < retries and total_wait < max_total_wait:
            if disconnect is not None:
                try:
                    self._reconnect()
                except OSError as error:
                    disconnect = error
                    attempts += 1
                    total_wait += self._pause(
                        draw, DEFAULT_RETRY_AFTER, attempts, backoff_base,
                        max_interval, max_total_wait - total_wait,
                    )
                    continue
                disconnect = None
            try:
                return self.request(op, **fields)
            except BackpressureError as rejection:
                attempts += 1
                if on_retry is not None:
                    on_retry(rejection)
                if attempts >= retries:
                    break
                total_wait += self._pause(
                    draw, rejection.retry_after, attempts, backoff_base,
                    max_interval, max_total_wait - total_wait,
                )
            except (ConnectionError, Disconnected) as error:
                disconnect = error
                attempts += 1
                if attempts >= retries:
                    break
                total_wait += self._pause(
                    draw, DEFAULT_RETRY_AFTER, attempts, backoff_base,
                    max_interval, max_total_wait - total_wait,
                )
        if disconnect is not None:
            raise disconnect
        raise BackpressureError(
            {
                "error": "backpressure",
                "detail": (
                    f"still rejected after {attempts} attempts and "
                    f"{total_wait:.3f}s of backoff"
                ),
                "attempts": attempts,
                "total_wait": total_wait,
            }
        )

    @staticmethod
    def _pause(
        draw, hint: float, attempts: int, backoff_base: float,
        max_interval: float, remaining: float,
    ) -> float:
        """Sleep out one jittered backoff interval; returns the pause.

        The exponent is clamped (the cap makes growth beyond ~2**64
        irrelevant, and float pow overflows past ~1e308) and the draw is
        full-jitter so a fleet rejected together does not retry
        together.
        """
        interval = min(hint * backoff_base ** min(attempts - 1, 64), max_interval)
        pause = min(draw(0.0, interval), remaining)
        if pause > 0:
            time.sleep(pause)
        return max(pause, 0.0)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def __enter__(self) -> "RuleClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- server operations ------------------------------------------------------

    def ping(self, payload: Any = None) -> dict:
        return self.request("ping", payload=payload)

    def stats(self) -> dict:
        return self.request("stats")

    def list_sessions(self) -> list[str]:
        return self.request("list_sessions")["sessions"]

    def shutdown_server(self) -> dict:
        return self.request("shutdown")

    def create_session(
        self,
        program: str = "",
        matcher: str = "rete",
        workers: Optional[int] = None,
        strategy: str = "lex",
        max_pending: Optional[int] = None,
        name: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> str:
        reply = self.request(
            "create_session",
            program=program,
            matcher=matcher,
            workers=workers,
            strategy=strategy,
            max_pending=max_pending,
            name=name,
            tenant=tenant,
        )
        return reply["session"]

    def destroy_session(self, session: str) -> dict:
        return self.request("destroy_session", session=session)

    # -- session operations ------------------------------------------------------

    def assert_wmes(
        self,
        session: str,
        wmes: Sequence[tuple],
        run: bool = False,
        max_cycles: Optional[int] = None,
        retries: int = 64,
        on_retry=None,
    ) -> dict:
        """Ingest a batch of ``(cls, attributes)`` pairs (with retry)."""
        return self.call(
            "assert",
            retries=retries,
            on_retry=on_retry,
            session=session,
            wmes=[[cls, dict(attrs)] for cls, attrs in wmes],
            run=run or None,
            max_cycles=max_cycles,
        )

    def retract(self, session: str, timetags: Sequence[int], **kwargs) -> dict:
        return self.call("retract", session=session, timetags=list(timetags), **kwargs)

    def modify(self, session: str, changes: Sequence[tuple], **kwargs) -> dict:
        return self.call(
            "modify",
            session=session,
            changes=[[tag, dict(updates)] for tag, updates in changes],
            **kwargs,
        )

    def run(
        self, session: str, max_cycles: Optional[int] = None, **kwargs
    ) -> dict:
        return self.call("run", session=session, max_cycles=max_cycles, **kwargs)

    def query_wm(self, session: str) -> list:
        return self.call("query", session=session, what="wm")["wmes"]

    def query_conflict_set(self, session: str) -> list:
        return self.call("query", session=session, what="conflict-set")[
            "instantiations"
        ]

    def session_stats(self, session: str) -> dict:
        return self.call("query", session=session, what="stats")["stats"]
