"""Ablation: intra-node parallelism depth (Section 4's refinement).

The paper's proposed implementation relaxes the one-activation-per-node
restriction: "nodes are permitted to process more than one input token
at a given time".  The machine models that as k-way node-memory locks
(hash-partitioned memory banks).  This bench sweeps k: 1 way is plain
node parallelism; more ways release the serialisation on hot nodes at a
fixed per-task synchronisation cost.
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.psim import MachineConfig, simulate


def _sweep(paper_traces):
    rows = []
    base = MachineConfig(processors=32, granularity="intra-node")
    for ways in (1, 2, 4, 8, 16):
        config = replace(base, intra_node_ways=ways)
        results = [simulate(trace, config) for trace in paper_traces.values()]
        n = len(results)
        rows.append([
            ways,
            round(sum(r.concurrency for r in results) / n, 2),
            round(sum(r.true_speedup for r in results) / n, 2),
            round(sum(r.wme_changes_per_second for r in results) / n),
        ])
    return rows


def test_abl_intranode_ways(benchmark, report, paper_traces):
    rows = benchmark.pedantic(_sweep, args=(paper_traces,), rounds=1, iterations=1)

    report(
        "abl_intranode",
        render_table(
            ["ways per node", "concurrency", "true speed-up", "wme-changes/s"],
            rows,
            title="Ablation: intra-node parallelism depth at 32 processors "
                  "(1 = plain node parallelism)",
        ),
    )

    speedups = [row[2] for row in rows]
    # Releasing node serialisation helps substantially (1 -> 4 ways)...
    assert speedups[2] > 1.2 * speedups[0]
    # ... near-monotonically (greedy-scheduler jitter under 1%) ...
    for slower, faster in zip(speedups, speedups[1:]):
        assert faster >= slower * 0.99
    # ... with diminishing returns: going 8 -> 16 ways buys < 5%.
    assert speedups[4] <= speedups[3] * 1.05
