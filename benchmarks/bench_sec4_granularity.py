"""Section 4: production-level vs node-level parallelism.

Paper: ~30 productions are affected per change, but production-level
parallelism yields only ~5x even with unbounded processors, because a
few affected productions dominate the processing (high cost variance).
Node/intra-node granularity breaks that variance apart and goes higher.

Regenerated as a table of true speed-ups at 512 processors (effectively
unbounded) for every system and each granularity.
"""

from repro.analysis import render_table
from repro.psim import MachineConfig, simulate


def _speedups(paper_traces):
    rows = []
    for name, trace in sorted(paper_traces.items()):
        row = [name, round(trace.mean_affected_productions(), 1)]
        for granularity in ("production", "node", "intra-node"):
            config = MachineConfig(processors=512, granularity=granularity)
            row.append(round(simulate(trace, config).true_speedup, 2))
        rows.append(row)
    return rows


def test_sec4_granularity_comparison(benchmark, report, paper_traces):
    rows = benchmark.pedantic(
        _speedups, args=(paper_traces,), rounds=1, iterations=1
    )

    report(
        "sec4_granularity",
        render_table(
            ["system", "affected/change", "production", "node", "intra-node"],
            rows,
            title="Section 4: true speed-up at 512 processors by granularity "
                  "(paper: production parallelism ~5x despite ~30 affected)",
        ),
    )

    production = [row[2] for row in rows]
    intra = [row[4] for row in rows]
    mean_production = sum(production) / len(production)
    mean_intra = sum(intra) / len(intra)

    # Production-level parallelism is capped in the single digits even
    # with unbounded processors...
    assert 2.0 <= mean_production <= 8.0
    # ... despite tens of affected productions per change.
    affected = [row[1] for row in rows]
    assert max(affected) > 25
    # Finer granularity wins on average and for the parallel systems.
    assert mean_intra > 1.5 * mean_production
    by_name = {row[0]: row for row in rows}
    assert by_name["r1-soar"][4] > by_name["r1-soar"][2]
