"""Predicted vs. measured: the DES model against the live executor.

The discrete-event simulator (`repro.psim`) *predicts* how much
concurrency a trace's task graph offers a multiprocessor; the live
parallel executor (`repro.parallel`) *measures* what a real process
pool extracts from the same work on this host.  This benchmark runs the
same workloads through both paths and reports them side by side -- the
repo's first wall-clock performance baseline (recorded in
``BENCH_live_vs_predicted.json`` at the repo root).

Honesty note: the predicted numbers model the paper's 32-processor PSM
with hardware scheduling; the measured numbers come from
``multiprocessing`` on whatever this host is.  On a single-core
container a measured speed-up > 1 is physically unattainable -- the
assertions therefore scale with ``host_cpus``, and the JSON snapshot
records the host so future comparisons are apples-to-apples.

Workloads:

* **closure-chain** -- a real program end-to-end (one WME change per
  cycle: the barrier-dominated regime; measures executor overhead).
* **batch-join** -- a wide independent-join program driven as one big
  batch (hundreds of changes per barrier: the match-parallel regime
  the paper's concurrency figures are about).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.ops5 import ProductionSystem, parse_program
from repro.ops5.wme import WME, WorkingMemory
from repro.parallel import ParallelMatcher, validate_parallel
from repro.psim import MachineConfig, MeasuredRun, predicted_vs_measured, simulate
from repro.rete import ReteNetwork
from repro.trace import capture_trace
from repro.workloads.programs import closure

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_live_vs_predicted.json"

WORKER_COUNTS = [1, 2, 4]
REPEATS = 3

#: The paper's machine for the predicted side of the table.
PREDICTED_MACHINE = MachineConfig(processors=32)


def host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- workload 1: closure-chain (end-to-end engine run) -------------------------

CHAIN_LENGTH = 8


def _closure_setup():
    return [(w.cls, dict(w.attributes)) for w in closure.chain(CHAIN_LENGTH)]


def _run_closure(matcher) -> int:
    system = ProductionSystem(closure.PROGRAM, matcher=matcher)
    for cls, attrs in _closure_setup():
        system.add(cls, **attrs)
    result = system.run(5000)
    assert closure.derived_facts(system) == closure.expected_chain_facts(
        CHAIN_LENGTH
    )
    return result.fired


# -- workload 2: batch-join (matcher-level, one barrier) -----------------------

JOIN_GROUPS = 8
JOIN_KEYS = 24


def _batch_join_program() -> str:
    """One independent two-way join per group: shards perfectly."""
    rules = [
        f"(p join{g} (left ^key <k> ^grp {g}) (right ^key <k> ^grp {g})\n"
        f"   --> (make hit ^grp {g}))"
        for g in range(JOIN_GROUPS)
    ]
    return "\n".join(rules)


def _batch_join_wmes() -> list[tuple[str, dict]]:
    specs = []
    for g in range(JOIN_GROUPS):
        for k in range(JOIN_KEYS):
            specs.append(("left", {"key": f"k{k}", "grp": g}))
            specs.append(("right", {"key": f"k{k}", "grp": g}))
    return specs


def _run_batch_join(matcher) -> int:
    """Load every WME, then read the conflict set once (one barrier)."""
    for production in parse_program(_batch_join_program()).productions:
        matcher.add_production(production)
    memory = WorkingMemory()
    for cls, attrs in _batch_join_wmes():
        matcher.add_wme(memory.add(WME(cls, attrs)))
    matches = len(matcher.conflict_set)
    assert matches == JOIN_GROUPS * JOIN_KEYS
    return matches


# -- the measurement ----------------------------------------------------------


def _predict(label: str, source, setup, **capture_kwargs):
    trace, _, _ = capture_trace(source, setup, name=label, **capture_kwargs)
    return simulate(trace, PREDICTED_MACHINE)


def _measure(label: str, run_fn, serial_factory) -> list[MeasuredRun]:
    serial_elapsed = _best_of(REPEATS, lambda: run_fn(serial_factory()))
    rows = []
    for workers in WORKER_COUNTS:
        def parallel_run():
            with ParallelMatcher(workers=workers) as matcher:
                run_fn(matcher)

        elapsed = _best_of(REPEATS, parallel_run)
        rows.append(
            MeasuredRun(
                label=label,
                workers=workers,
                elapsed=elapsed,
                serial_elapsed=serial_elapsed,
            )
        )
    return rows


def _render(records: list[dict]) -> str:
    header = (
        f"{'workload':<14} {'workers':>7} {'pred-conc':>9} {'pred-speedup':>12} "
        f"{'meas-speedup':>12} {'serial-s':>9} {'parallel-s':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r['label']:<14} {r['workers']:>7} {r['predicted_concurrency']:>9.2f} "
            f"{r['predicted_true_speedup']:>12.2f} {r['measured_speedup']:>12.2f} "
            f"{r['measured_serial_seconds']:>9.4f} {r['measured_parallel_seconds']:>10.4f}"
        )
    return "\n".join(lines)


def test_live_vs_predicted(report):
    cpus = host_cpus()

    # Semantic gate: never publish timings for a diverging executor.
    gate = validate_parallel(closure.PROGRAM, _closure_setup(), workers=2)
    assert gate.agree, gate.divergences()

    workloads = [
        (
            "closure-chain",
            _run_closure,
            _predict("closure-chain", closure.PROGRAM, _closure_setup()),
        ),
        (
            "batch-join",
            _run_batch_join,
            _predict(
                "batch-join",
                _batch_join_program(),
                _batch_join_wmes(),
                include_setup=True,
                max_cycles=0,
            ),
        ),
    ]

    records = []
    for label, run_fn, predicted in workloads:
        for measured in _measure(label, run_fn, ReteNetwork):
            records.append(predicted_vs_measured(predicted, measured))

    table = _render(records)
    report(
        "live_vs_predicted",
        f"host_cpus={cpus} python={platform.python_version()}\n{table}",
    )

    snapshot = {
        "host_cpus": cpus,
        "python": platform.python_version(),
        "predicted_machine": {
            "processors": PREDICTED_MACHINE.processors,
            "scheduler": PREDICTED_MACHINE.scheduler,
            "granularity": PREDICTED_MACHINE.granularity,
        },
        "worker_counts": WORKER_COUNTS,
        "records": records,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    # The DES must predict real concurrency for both traces...
    by_label = {}
    for r in records:
        by_label.setdefault(r["label"], []).append(r)
    for label, rows in by_label.items():
        assert rows[0]["predicted_concurrency"] > 1.0, label
    # ...and every measured run must complete and produce a finite ratio.
    assert all(r["measured_speedup"] > 0 for r in records)

    best = max(
        (r for r in records if r["workers"] >= 4), key=lambda r: r["measured_speedup"]
    )
    if cpus >= 4:
        # With real cores behind the pool, at least one workload must
        # beat the serial matcher in wall-clock at 4 workers.
        assert best["measured_speedup"] > 1.0, best
    else:
        # A core-starved host cannot speed up CPU-bound work; assert the
        # overhead stays bounded instead of pretending otherwise.
        assert best["measured_speedup"] > 0.02, best
