"""Predicted vs. measured: the DES model against the live executor.

The discrete-event simulator (`repro.psim`) *predicts* how much
concurrency a trace's task graph offers a multiprocessor; the live
parallel executor (`repro.parallel`) *measures* what a real process
pool extracts from the same work on this host.  This benchmark runs the
same workloads through both paths and reports them side by side -- the
repo's first wall-clock performance baseline (recorded in
``BENCH_live_vs_predicted.json`` at the repo root).

Honesty note: the predicted numbers model the paper's 32-processor PSM
with hardware scheduling; the measured numbers come from
``multiprocessing`` on whatever this host is.  On a single-core
container a measured speed-up > 1 is physically unattainable -- the
assertions therefore scale with ``host_cpus``, and the JSON snapshot
records the host so future comparisons are apples-to-apples.

Workloads:

* **closure-chain** -- a real program end-to-end (one WME change per
  cycle: the barrier-dominated regime; measures executor overhead).
* **batch-join** -- a wide independent-join program driven as one big
  batch (hundreds of changes per barrier: the match-parallel regime
  the paper's concurrency figures are about).
* **system-class programs** (vt, ilog, mud, daa, r1-soar, ep-soar) --
  replayed op streams against the shared-memory ``local`` backend.
  The replay protocol records each program's matcher traffic once and
  times only the cycle loop (ruleset compiled, facts streaming -- the
  serve regime and the paper's match-phase regime), with bit-identity
  against the serial Rete asserted before any timing is trusted.  The
  predicted side for these rows uses the kernel-calibrated cost model,
  since the live shards run the compiled kernel, not the interpreter.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.ops5 import ProductionSystem, parse_program
from repro.ops5.wme import WME, WorkingMemory
from repro.parallel import ParallelMatcher, validate_parallel
from repro.psim import MachineConfig, MeasuredRun, predicted_vs_measured, simulate
from repro.rete import ReteNetwork
from repro.trace import capture_trace, kernel_calibrated_model
from repro.workloads.programs import SYSTEM_PROGRAMS, closure
from repro.workloads.replay import record_program, timed_replay

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_live_vs_predicted.json"

WORKER_COUNTS = [1, 2, 4]
REPEATS = 3

#: The paper's machine for the predicted side of the table.
PREDICTED_MACHINE = MachineConfig(processors=32)


def host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- workload 1: closure-chain (end-to-end engine run) -------------------------

CHAIN_LENGTH = 8


def _closure_setup():
    return [(w.cls, dict(w.attributes)) for w in closure.chain(CHAIN_LENGTH)]


def _run_closure(matcher) -> int:
    system = ProductionSystem(closure.PROGRAM, matcher=matcher)
    for cls, attrs in _closure_setup():
        system.add(cls, **attrs)
    result = system.run(5000)
    assert closure.derived_facts(system) == closure.expected_chain_facts(
        CHAIN_LENGTH
    )
    return result.fired


# -- workload 2: batch-join (matcher-level, one barrier) -----------------------

JOIN_GROUPS = 8
JOIN_KEYS = 24


def _batch_join_program() -> str:
    """One independent two-way join per group: shards perfectly."""
    rules = [
        f"(p join{g} (left ^key <k> ^grp {g}) (right ^key <k> ^grp {g})\n"
        f"   --> (make hit ^grp {g}))"
        for g in range(JOIN_GROUPS)
    ]
    return "\n".join(rules)


def _batch_join_wmes() -> list[tuple[str, dict]]:
    specs = []
    for g in range(JOIN_GROUPS):
        for k in range(JOIN_KEYS):
            specs.append(("left", {"key": f"k{k}", "grp": g}))
            specs.append(("right", {"key": f"k{k}", "grp": g}))
    return specs


def _run_batch_join(matcher) -> int:
    """Load every WME, then read the conflict set once (one barrier)."""
    for production in parse_program(_batch_join_program()).productions:
        matcher.add_production(production)
    memory = WorkingMemory()
    for cls, attrs in _batch_join_wmes():
        matcher.add_wme(memory.add(WME(cls, attrs)))
    matches = len(matcher.conflict_set)
    assert matches == JOIN_GROUPS * JOIN_KEYS
    return matches


# -- workload 3: system-class programs (replay, local backend) -----------------

REPLAY_WORKERS = [1, 2]
REPLAY_REPEATS = 5


def _replay_rows(name: str, mod) -> list[MeasuredRun]:
    """Replay-protocol timings: serial Rete vs. local thread shards.

    One recording drives every backend, so the comparison is over the
    exact same op stream; the conflict-set keys must match the serial
    run before a timing is recorded.
    """
    recording = record_program(mod)
    serial_elapsed, serial_keys = timed_replay(
        recording, ReteNetwork, repeats=REPLAY_REPEATS
    )
    rows = []
    for workers in REPLAY_WORKERS:
        elapsed, keys = timed_replay(
            recording,
            lambda: ParallelMatcher(workers=workers, transport="local"),
            repeats=REPLAY_REPEATS,
            close=True,
        )
        assert keys == serial_keys, f"{name} diverged under local[{workers}]"
        rows.append(
            MeasuredRun(
                label=name,
                workers=workers,
                elapsed=elapsed,
                serial_elapsed=serial_elapsed,
            )
        )
    return rows


# -- the measurement ----------------------------------------------------------


def _predict(label: str, source, setup, **capture_kwargs):
    trace, _, _ = capture_trace(source, setup, name=label, **capture_kwargs)
    return simulate(trace, PREDICTED_MACHINE)


def _measure(label: str, run_fn, serial_factory) -> list[MeasuredRun]:
    serial_elapsed = _best_of(REPEATS, lambda: run_fn(serial_factory()))
    rows = []
    for workers in WORKER_COUNTS:
        def parallel_run():
            with ParallelMatcher(workers=workers) as matcher:
                run_fn(matcher)

        elapsed = _best_of(REPEATS, parallel_run)
        rows.append(
            MeasuredRun(
                label=label,
                workers=workers,
                elapsed=elapsed,
                serial_elapsed=serial_elapsed,
            )
        )
    return rows


def _render(records: list[dict]) -> str:
    header = (
        f"{'workload':<14} {'workers':>7} {'pred-conc':>9} {'pred-speedup':>12} "
        f"{'meas-speedup':>12} {'serial-s':>9} {'parallel-s':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r['label']:<14} {r['workers']:>7} {r['predicted_concurrency']:>9.2f} "
            f"{r['predicted_true_speedup']:>12.2f} {r['measured_speedup']:>12.2f} "
            f"{r['measured_serial_seconds']:>9.4f} {r['measured_parallel_seconds']:>10.4f}"
        )
    return "\n".join(lines)


def test_live_vs_predicted(report):
    cpus = host_cpus()

    # Semantic gate: never publish timings for a diverging executor.
    gate = validate_parallel(closure.PROGRAM, _closure_setup(), workers=2)
    assert gate.agree, gate.divergences()

    workloads = [
        (
            "closure-chain",
            _run_closure,
            _predict("closure-chain", closure.PROGRAM, _closure_setup()),
        ),
        (
            "batch-join",
            _run_batch_join,
            _predict(
                "batch-join",
                _batch_join_program(),
                _batch_join_wmes(),
                include_setup=True,
                max_cycles=0,
            ),
        ),
    ]

    records = []
    for label, run_fn, predicted in workloads:
        for measured in _measure(label, run_fn, ReteNetwork):
            records.append(predicted_vs_measured(predicted, measured))

    # System-class programs over the shared-memory backend: predictions
    # priced with the kernel-calibrated model, measurements via replay.
    calibrated = kernel_calibrated_model()
    for name in sorted(SYSTEM_PROGRAMS):
        mod = SYSTEM_PROGRAMS[name]
        predicted = _predict(
            name, mod.PROGRAM, mod.setup(), cost_model=calibrated
        )
        for measured in _replay_rows(name, mod):
            record = predicted_vs_measured(
                predicted, measured, cost_model=calibrated.label
            )
            record["transport"] = "local"
            record["protocol"] = "replay"
            records.append(record)

    table = _render(records)
    report(
        "live_vs_predicted",
        f"host_cpus={cpus} python={platform.python_version()}\n{table}",
    )

    snapshot = {
        "host_cpus": cpus,
        "python": platform.python_version(),
        "predicted_machine": {
            "processors": PREDICTED_MACHINE.processors,
            "scheduler": PREDICTED_MACHINE.scheduler,
            "granularity": PREDICTED_MACHINE.granularity,
        },
        "worker_counts": WORKER_COUNTS,
        "replay_workers": REPLAY_WORKERS,
        "system_programs": sorted(SYSTEM_PROGRAMS),
        "records": records,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    # The DES must predict real concurrency for both traces...
    by_label = {}
    for r in records:
        by_label.setdefault(r["label"], []).append(r)
    for label, rows in by_label.items():
        assert rows[0]["predicted_concurrency"] > 1.0, label
    # ...and every measured run must complete and produce a finite ratio.
    assert all(r["measured_speedup"] > 0 for r in records)

    # The shared-memory backend's contract: on the replayed op streams,
    # at least two of the six system-class programs beat the serial
    # Rete in wall-clock with two thread shards -- even on this
    # one-core host, because the compiled kernel's lower per-change
    # cost (not core count) is what pays for the dispatch.
    replay = [
        r
        for r in records
        if r.get("transport") == "local" and r["workers"] == 2
    ]
    assert len(replay) == len(SYSTEM_PROGRAMS)
    winners = [r for r in replay if r["measured_speedup"] > 1.0]
    assert len(winners) >= 2, sorted(
        (r["label"], round(r["measured_speedup"], 3)) for r in replay
    )

    best = max(
        (r for r in records if r["workers"] >= 4), key=lambda r: r["measured_speedup"]
    )
    if cpus >= 4:
        # With real cores behind the pool, at least one workload must
        # beat the serial matcher in wall-clock at 4 workers.
        assert best["measured_speedup"] > 1.0, best
    else:
        # A core-starved host cannot speed up CPU-bound work; assert the
        # overhead stays bounded instead of pretending otherwise.
        assert best["measured_speedup"] > 0.02, best
