"""Figure 6-2: execution speed vs. number of processors.

Paper shape: wme-changes/sec at 2 MIPS per processor rises with the
processor count and flattens by 32-64; the best systems reach five
digits, the average at 32 processors is 9400 wme-changes/sec.
"""

from conftest import FIRINGS, PROCESSOR_COUNTS, SEED

from repro.analysis import render_series
from repro.psim import MachineConfig, sweep_processors
from repro.workloads import PARALLEL_FIRING_SYSTEMS, generate_trace


def _curves(paper_traces):
    base = MachineConfig()  # 2 MIPS processors, as in the figure
    series = {}
    for name, trace in paper_traces.items():
        series[name] = [
            r.wme_changes_per_second
            for r in sweep_processors(trace, base, PROCESSOR_COUNTS)
        ]
    for profile in PARALLEL_FIRING_SYSTEMS:
        trace = generate_trace(profile, seed=SEED, firings=FIRINGS)
        series[profile.name + " (pf)"] = [
            r.wme_changes_per_second
            for r in sweep_processors(
                trace, MachineConfig(firing_batch=2), PROCESSOR_COUNTS
            )
        ]
    return series


def test_fig6_2_execution_speed(benchmark, report, save_csv, paper_traces):
    series = benchmark.pedantic(
        _curves, args=(paper_traces,), rounds=1, iterations=1
    )

    save_csv("fig6_2_speed", "procs", PROCESSOR_COUNTS, series)
    report(
        "fig6_2_speed",
        render_series(
            "procs",
            PROCESSOR_COUNTS,
            series,
            title="Figure 6-2: execution speed (wme-changes/sec, 2 MIPS "
                  "processors; paper: average 9400 at 32 processors)",
            precision=0,
        ),
    )

    at = {n: i for i, n in enumerate(PROCESSOR_COUNTS)}
    values_at_32 = [curve[at[32]] for curve in series.values()]
    mean_at_32 = sum(values_at_32) / len(values_at_32)

    # The paper's 9400 average: we accept the band 6000-12000.
    assert 6000 <= mean_at_32 <= 12000

    # The parallel target range of Section 2.2 (5000-10000) is reached
    # by most systems; the serial baseline (~1100 at 2 MIPS) is far below.
    assert sum(v > 5000 for v in values_at_32) >= 5
    for curve in series.values():
        assert curve[at[1]] < 2000  # single processor ~ serial speed
        assert curve[at[64]] <= curve[at[32]] * 1.35  # saturation
