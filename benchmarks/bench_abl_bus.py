"""Ablation: the shared bus and caches (Section 5, requirements 2-3).

Paper: "a single high-speed bus should be able to handle the load put
on it by about 32 processors, provided that reasonable cache-hit ratios
are obtained."  This bench sweeps processor count x bus count and the
cache-hit ratio, showing where the single bus gives out.
"""

from repro.analysis import render_table
from repro.psim import MachineConfig, simulate


def _sweep(paper_traces):
    trace = paper_traces["r1-soar"]  # the most parallel system
    rows = []
    for processors in (16, 32, 64):
        for buses in (1, 2):
            config = MachineConfig(processors=processors, buses=buses)
            result = simulate(trace, config)
            rows.append([
                processors, buses, f"{config.cache_hit_ratio:.0%}",
                round(result.true_speedup, 2),
                round(result.wme_changes_per_second),
            ])
    cache_rows = []
    for hit_ratio in (0.95, 0.85, 0.60, 0.30):
        config = MachineConfig(processors=32, cache_hit_ratio=hit_ratio)
        result = simulate(trace, config)
        cache_rows.append([
            32, 1, f"{hit_ratio:.0%}",
            round(result.true_speedup, 2),
            round(result.wme_changes_per_second),
        ])
    return rows, cache_rows


def test_abl_bus_and_cache(benchmark, report, paper_traces):
    rows, cache_rows = benchmark.pedantic(
        _sweep, args=(paper_traces,), rounds=1, iterations=1
    )

    report(
        "abl_bus",
        render_table(
            ["processors", "buses", "cache hit", "true speed-up", "wme-changes/s"],
            rows + cache_rows,
            title="Section 5 ablation: bus count and cache-hit ratio on "
                  "r1-soar (paper: one bus suffices for ~32 processors "
                  "at reasonable hit ratios)",
        ),
    )

    def speed(processors, buses):
        return next(r[4] for r in rows if r[0] == processors and r[1] == buses)

    # At 32 processors the second bus buys nothing: one bus suffices.
    assert speed(32, 2) <= speed(32, 1) * 1.02
    # At 64 processors the single bus saturates; a second bus helps.
    assert speed(64, 2) > speed(64, 1) * 1.05

    # Degrading the cache loads the bus and costs real speed.
    cache_speeds = [r[4] for r in cache_rows]
    assert cache_speeds[0] > cache_speeds[-1] * 1.2
