"""The Gupta-Forgy measurement tables (the paper's evidence base).

The paper's quantitative claims rest on "Measurements on Production
Systems" (CMU-CS-83-167): few CEs per production, small working-memory
turnover, few affected productions.  This bench reproduces those tables
for the bundled programs and checks the claims' shape on them.
"""

from repro.analysis import measure_dynamic, measure_static, render_table
from repro.ops5 import parse_program
from repro.workloads.programs import blocks, closure, eight_puzzle, elevator, hanoi, monkey, router

PROGRAMS = [
    ("hanoi-4", hanoi.PROGRAM, lambda **kw: hanoi.build(4, **kw), None),
    ("blocks", blocks.PROGRAM, blocks.build, 200),
    ("monkey", monkey.PROGRAM, monkey.build, None),
    ("eight-puzzle", eight_puzzle.PROGRAM,
     lambda **kw: eight_puzzle.build(eight_puzzle.MEDIUM, **kw), 60),
    ("closure-8", closure.PROGRAM,
     lambda **kw: closure.build(closure.chain(8), **kw), 5000),
    ("router", router.PROGRAM, router.build, 3000),
    ("elevator", elevator.PROGRAM, elevator.build, 500),
]


def _measure():
    static_rows = []
    dynamic_rows = []
    for name, source, builder, cap in PROGRAMS:
        static = measure_static(parse_program(source).productions, name)
        static_rows.append([
            name, static.productions,
            round(static.mean_ces_per_production, 1),
            f"{static.negation_share:.0%}",
            round(static.mean_actions_per_production, 1),
            static.classes,
        ])
        dynamic = measure_dynamic(builder, name, max_cycles=cap)
        dynamic_rows.append([
            name, dynamic.firings,
            round(dynamic.mean_changes_per_firing, 1),
            round(dynamic.mean_memory, 1),
            round(dynamic.mean_affected_per_change, 2),
            round(dynamic.mean_activations_per_change, 1),
            round(dynamic.sharing_ratio, 2),
        ])
    return static_rows, dynamic_rows


def test_measurement_tables(benchmark, report):
    static_rows, dynamic_rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    report(
        "measurements",
        render_table(
            ["program", "productions", "CEs/prod", "negated", "actions/prod",
             "classes"],
            static_rows,
            title="Static measurements (Gupta-Forgy style)",
        ) + "\n\n" + render_table(
            ["program", "firings", "changes/firing", "mean WM",
             "affected/change", "activations/change", "sharing"],
            dynamic_rows,
            title="Dynamic measurements",
        ),
    )

    # Gupta & Forgy's structural findings hold on our programs too:
    # productions average a handful of CEs...
    ces = [row[2] for row in static_rows]
    assert all(1.0 <= value <= 6.0 for value in ces)
    # ... changes per firing are small ...
    changes = [row[2] for row in dynamic_rows]
    assert all(value <= 6.0 for value in changes)
    # ... and each change touches few productions even though the
    # programs differ wildly in style.
    affected = [row[4] for row in dynamic_rows]
    assert all(value <= 6.0 for value in affected)
    # Node activations per change track the affected count, not the
    # program size (the paper's Section 4 observation).
    activations = [row[5] for row in dynamic_rows]
    assert all(value < 40 for value in activations)
