"""Section 2.2: the uniprocessor interpreter speed ladder.

Paper: on a VAX-11/780 (~1 MIPS), the Lisp OPS5 interpreter runs at
~8 wme-changes/sec, the Bliss interpreter at ~40, the compiled OPS83 at
~200, and further compiler optimisations reach 400-800.  The parallel
target is 5000-10000.

This bench regenerates the ladder from the cost model and checks each
rung's published value.
"""

from repro.analysis import render_table
from repro.trace import UNIPROCESSOR_TIERS, uniprocessor_ladder


def _ladder():
    at_1_mips = uniprocessor_ladder(mips=1.0)
    at_2_mips = uniprocessor_ladder(mips=2.0)
    rows = [
        [tier, UNIPROCESSOR_TIERS[tier], round(at_1_mips[tier], 1), round(at_2_mips[tier], 1)]
        for tier in UNIPROCESSOR_TIERS
    ]
    return at_1_mips, rows


def test_sec2_uniprocessor_ladder(benchmark, report):
    at_1_mips, rows = benchmark.pedantic(_ladder, rounds=1, iterations=1)

    report(
        "sec2_uniprocessor_ladder",
        render_table(
            ["implementation", "instr/change", "wme-changes/s @1 MIPS (VAX-780)",
             "@2 MIPS"],
            rows,
            title="Section 2.2: interpreter speed ladder "
                  "(paper: 8 / 40 / 200 / 400-800 at 1 MIPS)",
        ),
    )

    assert at_1_mips["lisp-interpreted"] == 8.0
    assert at_1_mips["bliss-interpreted"] == 40.0
    assert at_1_mips["ops83-compiled"] == 200.0
    assert 400 <= at_1_mips["ops83-optimized"] <= 800
    # Each rung is a large step over the previous -- the ladder shape.
    speeds = list(at_1_mips.values())
    for slower, faster in zip(speeds, speeds[1:]):
        assert faster >= 2.5 * slower
