"""Section 3.1: state-saving vs. non-state-saving match.

Paper results regenerated here:

* the break-even turnover ``c3/c1 ~ 0.61``: state saving wins whenever
  inserts+deletes per cycle stay under 61% of working memory;
* measured programs change < 0.5% per cycle, leaving non-state-saving
  algorithms a ~20x deficit;
* an empirical confirmation: the naive matcher's comparison count vs.
  Rete's on real programs.
"""

from repro.analysis import (
    breakeven_turnover,
    compare_matchers,
    state_saving_advantage,
    render_table,
)
from repro.workloads.programs import closure, hanoi


def _analytic_rows():
    rows = []
    for turnover_pct in (0.1, 0.5, 1.0, 10.0, 61.1, 80.0):
        memory = 1000.0
        changes = turnover_pct / 100.0 * memory / 2.0  # i = d
        advantage = state_saving_advantage(changes, changes, memory)
        rows.append([f"{turnover_pct:.1f}%", round(advantage, 2),
                     "state-saving" if advantage > 1 else "non-state-saving"])
    return rows


def _empirical():
    return [
        compare_matchers(hanoi.build, "hanoi"),
        compare_matchers(
            lambda **kw: closure.build(closure.chain(8), **kw), "closure-8"
        ),
    ]


def test_sec3_analytic_crossover(benchmark, report):
    rows = benchmark.pedantic(_analytic_rows, rounds=1, iterations=1)
    threshold = breakeven_turnover()

    report(
        "sec3_statesaving_crossover",
        render_table(
            ["turnover (i+d)/s", "state-saving advantage", "winner"],
            rows,
            title=f"Section 3.1: cost-model crossover at {threshold:.1%} "
                  "(paper: 61%; measured systems < 0.5%)",
        ),
    )

    assert 0.60 <= threshold <= 0.62
    # At the paper's measured 0.5% turnover, the advantage exceeds 20x.
    assert rows[1][1] > 20
    # Past the crossover the winner flips.
    assert rows[-1][2] == "non-state-saving"


def test_sec3_empirical_match_effort(benchmark, report):
    comparisons = benchmark.pedantic(_empirical, rounds=1, iterations=1)

    report(
        "sec3_statesaving_empirical",
        render_table(
            ["program", "cycles", "mean WM size", "turnover",
             "naive/rete comparisons"],
            [
                [c.program, c.cycles, round(c.mean_memory_size, 1),
                 f"{c.mean_turnover:.1%}", round(c.measured_advantage, 1)]
                for c in comparisons
            ],
            title="Section 3.1 empirically: naive re-match effort vs Rete "
                  "(small toy memories -> smaller factors than the paper's 20x)",
        ),
    )

    for comparison in comparisons:
        assert comparison.measured_advantage > 1.0
    # The join-heavy workload shows the stronger effect.
    assert comparisons[1].measured_advantage > comparisons[0].measured_advantage
