"""Figure 6-1: average concurrency vs. number of processors.

Paper shape: every system's concurrency rises and then saturates --
"for most production systems 32 processors are more than sufficient";
at 32 processors the average concurrency is 15.92.  R1-Soar and EP-Soar
are also plotted with *parallel firings*, which lifts their plateaus.

Regenerated as one series per curve over processors in 1..64.
"""

from conftest import FIRINGS, PROCESSOR_COUNTS, SEED

from repro.analysis import render_series
from repro.psim import MachineConfig, sweep_processors
from repro.workloads import PARALLEL_FIRING_SYSTEMS, generate_trace


def _curves(paper_traces):
    base = MachineConfig()
    series = {}
    for name, trace in paper_traces.items():
        series[name] = [
            r.concurrency for r in sweep_processors(trace, base, PROCESSOR_COUNTS)
        ]
    for profile in PARALLEL_FIRING_SYSTEMS:
        trace = generate_trace(profile, seed=SEED, firings=FIRINGS)
        series[profile.name + " (pf)"] = [
            r.concurrency
            for r in sweep_processors(
                trace, MachineConfig(firing_batch=2), PROCESSOR_COUNTS
            )
        ]
    return series


def test_fig6_1_concurrency(benchmark, report, save_csv, paper_traces):
    series = benchmark.pedantic(
        _curves, args=(paper_traces,), rounds=1, iterations=1
    )

    save_csv("fig6_1_concurrency", "procs", PROCESSOR_COUNTS, series)
    report(
        "fig6_1_concurrency",
        render_series(
            "procs",
            PROCESSOR_COUNTS,
            series,
            title="Figure 6-1: average concurrency vs processors "
                  "(paper: average 15.92 at 32; saturation by 32-64)",
        ),
    )

    at = {n: i for i, n in enumerate(PROCESSOR_COUNTS)}

    # Average over the eight plotted curves at 32 processors ~ 16.
    values_at_32 = [curve[at[32]] for curve in series.values()]
    mean_at_32 = sum(values_at_32) / len(values_at_32)
    assert 12.0 <= mean_at_32 <= 20.0

    for name, curve in series.items():
        # Concurrency grows with processors and stays physical.
        assert curve[at[1]] <= curve[at[8]] <= curve[at[32]] + 1e-9
        assert curve[at[64]] <= 64.0

    # The low-parallelism systems saturate by 32-64 processors ("for
    # most production systems 32 processors are more than sufficient");
    # R1-Soar keeps climbing, exactly as in the paper's figure.
    for name in ("ilog", "ep-soar", "mud", "vt"):
        assert series[name][at[64]] <= series[name][at[32]] * 1.45
    assert series["ilog"][at[64]] <= series["ilog"][at[32]] * 1.15

    # Ordering: ILOG lowest, R1-Soar (pf) highest -- the figure's legend.
    assert series["ilog"][at[32]] == min(values_at_32)
    assert series["r1-soar (pf)"][at[32]] == max(values_at_32)

    # Parallel firings lift the plateau.
    assert series["r1-soar (pf)"][at[32]] > series["r1-soar"][at[32]]
    assert series["ep-soar (pf)"][at[32]] > series["ep-soar"][at[32]]
