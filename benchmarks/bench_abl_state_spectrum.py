"""Ablation: the state-storing spectrum (Section 3.2).

TREAT (alpha state only) < Rete (alpha + fixed prefix chains) <
all-combinations (Oflazer).  Measured on real program snapshots: live
state volumes of the three schemes.  The paper's concerns about the
high end -- "(1) the state may become very large, (2) the algorithm may
spend a lot of time computing and deleting state that never really gets
used" -- show up as the all-combinations blow-up.
"""

from repro.analysis import measure_spectrum, measure_spectrum_live, render_table
from repro.ops5 import ProductionSystem
from repro.workloads.programs import blocks, closure, hanoi

_TRIPLE_SRC = """
(p pick (goal ^t <t>) (item ^t <t> ^v <v>) (slot ^v <v>) --> (halt))
(p audit (goal ^t <t>) (slot ^v <v>) (item ^v <v>) --> (halt))
"""


def _triple_build(**kwargs):
    system = ProductionSystem(_TRIPLE_SRC, **kwargs)
    for t in range(4):
        system.add("goal", t=t)
    for i in range(8):
        system.add("item", t=i % 4, v=i % 2)
    for v in range(6):
        system.add("slot", v=v % 2)
    return system


def _measure():
    analytic = [
        measure_spectrum(_triple_build, "3-CE joins", max_cycles=0),
        measure_spectrum(hanoi.build, "hanoi", max_cycles=12),
        measure_spectrum(
            lambda **kw: closure.build(closure.chain(8), **kw), "closure-8",
            max_cycles=36,
        ),
        measure_spectrum(blocks.build, "blocks", max_cycles=2),
    ]
    # Ground truth for the high end: the live all-combinations matcher
    # (repro.oflazer) actually maintaining the state.
    live = [
        measure_spectrum_live(_triple_build, "3-CE joins (live)", max_cycles=0),
        measure_spectrum_live(
            lambda **kw: closure.build(closure.chain(8), **kw),
            "closure-8 (live)",
            max_cycles=36,
        ),
    ]
    return analytic, live


def test_abl_state_spectrum(benchmark, report):
    analytic, live = benchmark.pedantic(_measure, rounds=1, iterations=1)
    reports = analytic + live

    rows = []
    for spectrum in reports:
        for point in spectrum.ordered():
            rows.append([
                spectrum.program, point.algorithm,
                point.alpha_state, point.beta_state, point.total,
            ])

    report(
        "abl_state_spectrum",
        render_table(
            ["workload", "scheme", "alpha state", "beta state", "total"],
            rows,
            title="Section 3.2: stored match state across the spectrum "
                  "(TREAT < Rete < all-combinations)",
        ),
    )

    for spectrum in reports:
        # TREAT stores no beta state at all -- the low end.
        assert spectrum.treat.beta_state == 0
        # Rete stores at least as much as TREAT (alpha + prefixes).
        assert spectrum.rete.total >= spectrum.treat.total
        assert spectrum.all_pairs.total >= spectrum.treat.total

    # The spectrum's high end is about join-rich working memories: on
    # those the all-combinations scheme stores several times Rete's
    # state.  (On tiny goal-chained programs like hanoi, Rete's
    # duplicated singleton/negation bookkeeping can exceed the positive
    # combination count -- which is why the paper's blow-up argument is
    # made for match-heavy systems.)
    by_name = {s.program: s for s in reports}
    triple = by_name["3-CE joins"]
    assert triple.all_pairs.total > 1.5 * triple.rete.total
    assert by_name["blocks"].all_pairs.total > 2 * by_name["blocks"].rete.total

    # The live all-combinations matcher agrees with the analytic count
    # on the multi-join workload (its state really is that big).
    live_triple = by_name["3-CE joins (live)"]
    assert live_triple.all_pairs.total > 1.5 * live_triple.rete.total
