"""Served throughput: the rule server against the paper's PSM numbers.

Section 6 reports the 32-processor PSM sustaining **~9400
wme-changes/sec** and **~3800 rule-firings/sec** averaged over the six
measured systems.  This benchmark asks the serving layer the same
question: with 1, 4, and 16 concurrent sessions each replaying the
standard closure trace, what sustained rates does the *server* observe
(stats deltas over wall-clock, not per-request bests)?

The snapshot lands in ``BENCH_serve_throughput.json`` at the repo root,
next to the other wall-clock baseline
(``BENCH_live_vs_predicted.json``).  Honesty note: the paper's rates
come from a calibrated 2-MIPS-per-processor machine model; ours come
from a Python engine on whatever this host is.  The JSON records both
plus the ratio -- the assertions are liveness and exactness (no
deadlock, no dropped work, exact firing counts), with only a very
loose throughput floor.

A second scenario hammers one single-slot session from four clients so
queue-full backpressure *must* engage, and asserts the run still
completes with exact results -- the no-deadlock / no-dropped-state half
of the acceptance criterion.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

from repro.serve import ServerThread
from repro.serve.loadgen import expected_trace_firings, run_load

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_serve_throughput.json"

SESSION_COUNTS = [1, 4, 16]
BATCHES = 4
CHAIN_LENGTH = 6

#: Section 6's headline sustained rates for the 32-processor PSM.
PAPER_WME_CHANGES_PER_SEC = 9400.0
PAPER_FIRINGS_PER_SEC = 3800.0


def host_cpus() -> int:
    """Cores actually available to this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _expected_firings(clients: int) -> int:
    return clients * expected_trace_firings(BATCHES, CHAIN_LENGTH)


def _render(rows: list[dict]) -> str:
    header = (
        f"{'sessions':>8} {'requests':>8} {'reject':>6} {'wme-ch/s':>9} "
        f"{'firings/s':>9} {'vs-paper':>8} {'p50-ms':>7} {'p99-ms':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['sessions']:>8} {row['requests']:>8} {row['rejections']:>6} "
            f"{row['wme_changes_per_second']:>9.0f} "
            f"{row['firings_per_second']:>9.0f} "
            f"{row['wme_changes_per_second'] / PAPER_WME_CHANGES_PER_SEC:>8.3f} "
            f"{row['latency']['p50'] * 1e3:>7.2f} "
            f"{row['latency']['p99'] * 1e3:>7.2f}"
        )
    return "\n".join(lines)


def test_serve_throughput(report):
    rows = []
    with ServerThread() as harness:
        for sessions in SESSION_COUNTS:
            summary = run_load(
                harness.address,
                clients=sessions,
                batches=BATCHES,
                chain_length=CHAIN_LENGTH,
            )
            # Exactness first: a throughput number for a run that lost
            # work would be meaningless.
            assert summary["errors"] == []
            assert summary["firings"] == _expected_firings(sessions)
            rows.append(summary)

        # Scenario 2: four clients against ONE session with a one-deep
        # queue -- backpressure must engage and nothing may be lost.
        contended = run_load(
            harness.address,
            clients=4,
            shared_session=True,
            max_pending=1,
            batches=BATCHES,
            chain_length=CHAIN_LENGTH,
        )
        assert contended["errors"] == []
        assert contended["firings"] == _expected_firings(4)
        # With 4 writers and one slot, rejections are all but certain;
        # the hard requirement is survival with exact results, so only
        # note the count rather than asserting scheduling luck.

    best = max(rows, key=lambda r: r["wme_changes_per_second"])
    table = _render(rows + [contended])
    report(
        "serve_throughput",
        f"host_cpus={host_cpus()} python={platform.python_version()} "
        f"paper: {PAPER_WME_CHANGES_PER_SEC:.0f} wme-ch/s "
        f"{PAPER_FIRINGS_PER_SEC:.0f} firings/s\n{table}",
    )

    SNAPSHOT.write_text(
        json.dumps(
            {
                "host_cpus": host_cpus(),
                "python": platform.python_version(),
                "paper": {
                    "machine": "PSM, 32 x 2 MIPS, hardware task scheduler",
                    "wme_changes_per_second": PAPER_WME_CHANGES_PER_SEC,
                    "firings_per_second": PAPER_FIRINGS_PER_SEC,
                },
                "trace": {"batches": BATCHES, "chain_length": CHAIN_LENGTH},
                "runs": rows,
                "backpressure_run": contended,
                "best_vs_paper": {
                    "sessions": best["sessions"],
                    "wme_changes_per_second": best["wme_changes_per_second"],
                    "fraction_of_paper_speed": best["wme_changes_per_second"]
                    / PAPER_WME_CHANGES_PER_SEC,
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Liveness floors, not performance claims: every configuration must
    # sustain *some* throughput, and adding sessions must not collapse
    # the server (16 sessions >= 20% of the single-session rate).
    for row in rows:
        assert row["wme_changes_per_second"] > 0
        assert row["firings_per_second"] > 0
    single = rows[0]["wme_changes_per_second"]
    many = rows[-1]["wme_changes_per_second"]
    assert many > 0.2 * single, (single, many)
