"""Served throughput: the rule server against the paper's PSM numbers.

Section 6 reports the 32-processor PSM sustaining **~9400
wme-changes/sec** and **~3800 rule-firings/sec** averaged over the six
measured systems.  This benchmark asks the serving layer the same
question: with 1, 4, and 16 concurrent sessions each replaying the
standard closure trace, what sustained rates does the *server* observe
(stats deltas over wall-clock, not per-request bests)?

The snapshot lands in ``BENCH_serve_throughput.json`` at the repo root,
next to the other wall-clock baseline
(``BENCH_live_vs_predicted.json``).  Honesty note: the paper's rates
come from a calibrated 2-MIPS-per-processor machine model; ours come
from a Python engine on whatever this host is.  The JSON records both
plus the ratio -- the assertions are liveness and exactness (no
deadlock, no dropped work, exact firing counts), with only a very
loose throughput floor.

A second scenario hammers one single-slot session from four clients so
queue-full backpressure *must* engage, and asserts the run still
completes with exact results -- the no-deadlock / no-dropped-state half
of the acceptance criterion.

A third scenario is the multi-tenant one: a two-worker
:class:`RouterFleet` ramped to 1000 concurrent compiled-matcher
sessions, all sharing ONE compiled kernel.  At each ramp level it
records session-create and request latency percentiles plus the
(deterministic) tenant-quota rejection rate, and at the top it asserts
the tentpole contracts: exactly one codegen miss and one module exec
for the whole fleet, attach cost flat as the fleet grows (O(WM), not
O(network)), and firings bit-identical to a direct single-session run.

Standalone, the multitenant scenario doubles as the CI perf-smoke
gate::

    python benchmarks/bench_serve_throughput.py --smoke --check
    python benchmarks/bench_serve_throughput.py --smoke --update

comparing against ``benchmarks/baselines/serve_multitenant.json``:
exact counters (codegen misses, module execs, quota rejections) must
match the baseline exactly; the calibration-normalised warm
session-create cost may not regress by more than ``--tolerance``
(default 25%).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import sys
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.kernel import (  # noqa: E402
    cache_stats,
    clear_shared_kernels,
    shared_kernel_stats,
)
from repro.kernel.cache import clear_cache  # noqa: E402
from repro.ops5 import ProductionSystem  # noqa: E402
from repro.ops5.symbols import SYMBOLS  # noqa: E402
from repro.serve import RouterFleet, RuleClient, ServerError, ServerThread  # noqa: E402
from repro.serve.loadgen import expected_trace_firings, run_load  # noqa: E402
from repro.serve.session import clear_program_cache  # noqa: E402
from repro.workloads.programs import closure  # noqa: E402

SNAPSHOT = REPO_ROOT / "BENCH_serve_throughput.json"
BASELINE_PATH = REPO_ROOT / "benchmarks" / "baselines" / "serve_multitenant.json"
BASELINE_SCHEMA = "repro.serve-multitenant/1"

SESSION_COUNTS = [1, 4, 16]
BATCHES = 4
CHAIN_LENGTH = 6

#: Section 6's headline sustained rates for the 32-processor PSM.
PAPER_WME_CHANGES_PER_SEC = 9400.0
PAPER_FIRINGS_PER_SEC = 3800.0


def host_cpus() -> int:
    """Cores actually available to this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _expected_firings(clients: int) -> int:
    return clients * expected_trace_firings(BATCHES, CHAIN_LENGTH)


def _render(rows: list[dict]) -> str:
    header = (
        f"{'sessions':>8} {'requests':>8} {'reject':>6} {'wme-ch/s':>9} "
        f"{'firings/s':>9} {'vs-paper':>8} {'p50-ms':>7} {'p99-ms':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['sessions']:>8} {row['requests']:>8} {row['rejections']:>6} "
            f"{row['wme_changes_per_second']:>9.0f} "
            f"{row['firings_per_second']:>9.0f} "
            f"{row['wme_changes_per_second'] / PAPER_WME_CHANGES_PER_SEC:>8.3f} "
            f"{row['latency']['p50'] * 1e3:>7.2f} "
            f"{row['latency']['p99'] * 1e3:>7.2f}"
        )
    return "\n".join(lines)


def test_serve_throughput(report):
    rows = []
    with ServerThread() as harness:
        for sessions in SESSION_COUNTS:
            summary = run_load(
                harness.address,
                clients=sessions,
                batches=BATCHES,
                chain_length=CHAIN_LENGTH,
            )
            # Exactness first: a throughput number for a run that lost
            # work would be meaningless.
            assert summary["errors"] == []
            assert summary["firings"] == _expected_firings(sessions)
            rows.append(summary)

        # Scenario 2: four clients against ONE session with a one-deep
        # queue -- backpressure must engage and nothing may be lost.
        contended = run_load(
            harness.address,
            clients=4,
            shared_session=True,
            max_pending=1,
            batches=BATCHES,
            chain_length=CHAIN_LENGTH,
        )
        assert contended["errors"] == []
        assert contended["firings"] == _expected_firings(4)
        # With 4 writers and one slot, rejections are all but certain;
        # the hard requirement is survival with exact results, so only
        # note the count rather than asserting scheduling luck.

    best = max(rows, key=lambda r: r["wme_changes_per_second"])
    table = _render(rows + [contended])
    report(
        "serve_throughput",
        f"host_cpus={host_cpus()} python={platform.python_version()} "
        f"paper: {PAPER_WME_CHANGES_PER_SEC:.0f} wme-ch/s "
        f"{PAPER_FIRINGS_PER_SEC:.0f} firings/s\n{table}",
    )

    SNAPSHOT.write_text(
        json.dumps(
            {
                "host_cpus": host_cpus(),
                "python": platform.python_version(),
                "paper": {
                    "machine": "PSM, 32 x 2 MIPS, hardware task scheduler",
                    "wme_changes_per_second": PAPER_WME_CHANGES_PER_SEC,
                    "firings_per_second": PAPER_FIRINGS_PER_SEC,
                },
                "trace": {"batches": BATCHES, "chain_length": CHAIN_LENGTH},
                "runs": rows,
                "backpressure_run": contended,
                "best_vs_paper": {
                    "sessions": best["sessions"],
                    "wme_changes_per_second": best["wme_changes_per_second"],
                    "fraction_of_paper_speed": best["wme_changes_per_second"]
                    / PAPER_WME_CHANGES_PER_SEC,
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Liveness floors, not performance claims: every configuration must
    # sustain *some* throughput, and adding sessions must not collapse
    # the server (16 sessions >= 20% of the single-session rate).
    for row in rows:
        assert row["wme_changes_per_second"] > 0
        assert row["firings_per_second"] > 0
    single = rows[0]["wme_changes_per_second"]
    many = rows[-1]["wme_changes_per_second"]
    assert many > 0.2 * single, (single, many)


# -- multi-tenant scale-out ----------------------------------------------------

#: Ramp levels (regular sessions concurrently alive) per profile.  The
#: full profile tops out past the 1000-concurrent-session acceptance
#: bar; smoke keeps CI inside its time budget.
MULTITENANT_PROFILES = {
    "smoke": {
        "workers": 2,
        "ramp": [50, 100, 200],
        "client_threads": 8,
        "sample": 50,
        "capped_budget": 4,
        "capped_attempts": 8,
    },
    "full": {
        "workers": 2,
        "ramp": [100, 400, 1000],
        "client_threads": 16,
        "sample": 200,
        "capped_budget": 8,
        "capped_attempts": 16,
    },
}

#: One chain shared by every session: sessions are isolated, so reusing
#: the identical WMEs keeps the symbol intern table provably stable
#: across the whole ramp (growth would mean per-session interning).
MT_CHAIN = [["parent", {"from": f"x{i}", "to": f"x{i + 1}"}] for i in range(6)]
MT_FIRINGS = closure.expected_chain_facts(6)


def _calibrate(rounds: int = 5) -> float:
    """Seconds for a dict-heavy spin shaped like the serve hot path.

    Normalising wall-clock by this makes the committed create-cost
    number a dimensionless work ratio that survives machine changes
    (same rationale as ``bench_obs_overhead``).
    """

    def spin() -> int:
        store = {}
        total = 0
        for i in range(20_000):
            key = ("s", i % 61)
            store[key] = i
            total += store.get(key, 0)
            if i % 7 == 0:
                store.pop(key, None)
        return total

    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        spin()
        best = min(best, time.perf_counter() - started)
    return best


def _percentiles(samples: list[float]) -> dict:
    ordered = sorted(samples)
    if not ordered:
        return {"p50": 0.0, "p99": 0.0, "samples": 0}
    def pick(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]
    return {"p50": pick(0.50), "p99": pick(0.99), "samples": len(ordered)}


def _fanout(thread_count: int, jobs, work) -> None:
    """Run *work(job)* over *jobs* from *thread_count* threads."""
    it = iter(list(jobs))
    lock = threading.Lock()
    errors: list[BaseException] = []

    def loop() -> None:
        while True:
            with lock:
                job = next(it, None)
            if job is None:
                return
            try:
                work(job)
            except BaseException as error:  # pragma: no cover - surfaced below
                with lock:
                    errors.append(error)
                return

    threads = [threading.Thread(target=loop) for _ in range(thread_count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def run_multitenant(profile: dict) -> dict:
    """Ramp a router fleet to the profile's top session count.

    Returns the per-level curves plus the fleet-wide kernel counters
    and the bit-identity verdict.  Deterministic fields (codegen
    misses, module execs, quota rejections, firings) do not depend on
    the host; latency fields do and are reported, not committed.
    """
    clear_cache()
    clear_shared_kernels()
    clear_program_cache()
    gc.collect()

    # The reference: the same chain on a direct, single-session engine.
    reference = ProductionSystem(closure.PROGRAM, matcher="compiled")
    reference.apply_changes([("assert", cls, attrs) for cls, attrs in MT_CHAIN])
    ref_result = reference.run()
    ref_firings = [(c.production, list(c.timetags)) for c in ref_result.cycles]
    assert len(ref_firings) == MT_FIRINGS

    levels = []
    identical = True
    symbols_marks = []
    with RouterFleet(
        workers=profile["workers"],
        tenant_quotas={"capped": profile["capped_budget"]},
    ) as fleet:
        created_total = 0
        for level in profile["ramp"]:
            create_latencies: list[float] = []
            request_latencies: list[float] = []
            driven: list[str] = []
            new_ids: list[str] = []
            lock = threading.Lock()

            def create_one(index: int) -> None:
                with RuleClient(fleet.address) as client:
                    started = time.perf_counter()
                    sid = client.create_session(
                        program=closure.PROGRAM,
                        matcher="compiled",
                        tenant=f"t{index % 16}",
                    )
                    elapsed = time.perf_counter() - started
                with lock:
                    create_latencies.append(elapsed)
                    new_ids.append(sid)

            _fanout(
                profile["client_threads"],
                range(level - created_total),
                create_one,
            )
            created_total = level

            # Deterministic quota pressure: the capped tenant asks for
            # more than its budget at every level.
            quota_attempts = 0
            quota_rejections = 0
            with RuleClient(fleet.address) as client:
                for _ in range(profile["capped_attempts"]):
                    quota_attempts += 1
                    try:
                        client.create_session(
                            program=closure.PROGRAM,
                            matcher="compiled",
                            tenant="capped",
                        )
                    except ServerError as error:
                        assert error.reply["error"] == "quota", error.reply
                        quota_rejections += 1

            # Drive a sample of this level's new sessions, once each.
            sample = new_ids[: profile["sample"]]

            def drive_one(sid: str) -> None:
                with RuleClient(fleet.address) as client:
                    started = time.perf_counter()
                    client.assert_wmes(sid, MT_CHAIN)
                    mid = time.perf_counter()
                    reply = client.run(sid)
                    done = time.perf_counter()
                fired = [
                    (name, list(tags)) for name, tags in reply["firings"]
                ]
                with lock:
                    request_latencies.extend([mid - started, done - mid])
                    driven.append(sid)
                    nonlocal identical
                    if fired != ref_firings:
                        identical = False

            _fanout(profile["client_threads"], sample, drive_one)

            symbols_marks.append(len(SYMBOLS))
            kernel = shared_kernel_stats()
            levels.append(
                {
                    "concurrent_sessions": created_total
                    + fleet.router.tenant_sessions("capped"),
                    "driven_sessions": len(driven),
                    "create_latency": _percentiles(create_latencies),
                    "request_latency": _percentiles(request_latencies),
                    "quota_attempts": quota_attempts,
                    "quota_rejections": quota_rejections,
                    "rejection_rate": quota_rejections / quota_attempts,
                    "codegen_misses": cache_stats()["misses"],
                    "kernel_execs": kernel["execs"],
                    "kernel_attaches": kernel["attaches"],
                    "interned_symbols": len(SYMBOLS),
                }
            )

        router_stats = {
            "placements": len(fleet.router.placements),
            "workers": profile["workers"],
        }

    cal = _calibrate()
    top = levels[-1]
    return {
        "profile": profile,
        "levels": levels,
        "router": router_stats,
        "reference_firings": MT_FIRINGS,
        "bit_identical": identical,
        # Symbols interned once the first level ran; later levels of
        # fresh sessions must not add any (satellite-3's audit, at
        # fleet scale).
        "symbols_stable": len(set(symbols_marks)) == 1,
        "codegen_misses": top["codegen_misses"],
        "kernel_execs": top["kernel_execs"],
        "kernel_attaches": top["kernel_attaches"],
        "warm_attaches": top["kernel_attaches"] - top["kernel_execs"],
        "quota_rejection_curve": [lvl["quota_rejections"] for lvl in levels],
        "calibration_seconds": cal,
        "normalized_create_p50": levels[-1]["create_latency"]["p50"] / cal,
        "create_flatness": (
            levels[-1]["create_latency"]["p50"]
            / max(levels[0]["create_latency"]["p50"], 1e-9)
        ),
    }


def _render_multitenant(result: dict) -> str:
    header = (
        f"{'sessions':>8} {'driven':>6} {'create-p50':>11} {'create-p99':>11} "
        f"{'req-p99':>8} {'rej-rate':>8} {'codegen':>7}"
    )
    lines = [header, "-" * len(header)]
    for lvl in result["levels"]:
        lines.append(
            f"{lvl['concurrent_sessions']:>8} {lvl['driven_sessions']:>6} "
            f"{lvl['create_latency']['p50'] * 1e3:>10.2f}m "
            f"{lvl['create_latency']['p99'] * 1e3:>10.2f}m "
            f"{lvl['request_latency']['p99'] * 1e3:>7.2f}m "
            f"{lvl['rejection_rate']:>8.2f} {lvl['codegen_misses']:>7}"
        )
    lines.append(
        f"kernel: {result['codegen_misses']} codegen miss(es), "
        f"{result['kernel_execs']} exec(s), {result['warm_attaches']} warm "
        f"attaches; bit_identical={result['bit_identical']} "
        f"symbols_stable={result['symbols_stable']} "
        f"create_flatness={result['create_flatness']:.2f}x"
    )
    return "\n".join(lines)


def _assert_multitenant_contracts(result: dict) -> None:
    """The tentpole acceptance gates, shared by pytest and --check."""
    # Zero-codegen warm attach: ONE miss and ONE module exec serve the
    # entire fleet (the reference engine shares the same kernel).
    assert result["codegen_misses"] == 1, result["codegen_misses"]
    assert result["kernel_execs"] == 1, result["kernel_execs"]
    assert result["warm_attaches"] >= sum(
        lvl["driven_sessions"] for lvl in result["levels"]
    )
    assert result["bit_identical"] is True
    assert result["symbols_stable"] is True
    # Attach cost is O(WM): ramping 10x the fleet size must not inflate
    # the per-create cost by an order of magnitude (generous 3x bound:
    # this is a scaling property, not a timing benchmark).
    assert result["create_flatness"] < 3.0, result["create_flatness"]
    # The quota curve is fully deterministic: budget admissions at the
    # first level, everything rejected once the tenant is at quota.
    profile = result["profile"]
    expected_curve = [
        profile["capped_attempts"] - profile["capped_budget"]
    ] + [profile["capped_attempts"]] * (len(profile["ramp"]) - 1)
    assert result["quota_rejection_curve"] == expected_curve, (
        result["quota_rejection_curve"],
        expected_curve,
    )


def test_serve_multitenant(report):
    result = run_multitenant(MULTITENANT_PROFILES["full"])
    _assert_multitenant_contracts(result)
    assert result["levels"][-1]["concurrent_sessions"] >= 1000

    report("serve_multitenant", _render_multitenant(result))

    snapshot = {}
    if SNAPSHOT.exists():
        snapshot = json.loads(SNAPSHOT.read_text())
    snapshot["multitenant"] = result
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")


def _check_baseline(result: dict, tolerance: float) -> list[str]:
    """Compare against the committed baseline; return failure strings."""
    if not BASELINE_PATH.exists():
        return [f"missing baseline {BASELINE_PATH}; run with --update"]
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("schema") != BASELINE_SCHEMA:
        return [f"baseline schema {baseline.get('schema')!r} != {BASELINE_SCHEMA!r}"]
    problems = []
    for key in ("codegen_misses", "kernel_execs", "quota_rejection_curve"):
        if result[key] != baseline[key]:
            problems.append(f"{key}: {result[key]!r} != baseline {baseline[key]!r}")
    measured = result["normalized_create_p50"]
    committed = baseline["normalized_create_p50"]
    if measured > committed * (1.0 + tolerance):
        problems.append(
            "normalized_create_p50 regressed: "
            f"{measured:.2f} > {committed:.2f} * (1 + {tolerance})"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-tenant serve benchmark / CI perf-smoke gate"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small profile for CI (default: full)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument("--out", help="write the run result as JSON")
    args = parser.parse_args(argv)

    profile_name = "smoke" if args.smoke else "full"
    result = run_multitenant(MULTITENANT_PROFILES[profile_name])
    print(_render_multitenant(result))
    _assert_multitenant_contracts(result)

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")

    if args.update:
        # Only machine-portable fields are committed: exact counters
        # plus the calibration-normalised create cost (medians are
        # robust; the raw latencies stay in the run artifacts).
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "profile": profile_name,
                    "codegen_misses": result["codegen_misses"],
                    "kernel_execs": result["kernel_execs"],
                    "quota_rejection_curve": result["quota_rejection_curve"],
                    "normalized_create_p50": result["normalized_create_p50"],
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"baseline updated: {BASELINE_PATH}")

    if args.check:
        problems = _check_baseline(result, args.tolerance)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("multitenant perf-smoke gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
