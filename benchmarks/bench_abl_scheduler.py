"""Ablation: the hardware task scheduler (Section 5, requirement 4).

Paper: "if a hardware mechanism is not used, the serial enqueueing and
dequeueing of hundreds of fine-grain node activations from the task
queue is expected to become a bottleneck."  The machine model's
``software`` scheduler pays a serial critical section per dispatch;
multiple software queues relieve it partially.
"""

from repro.analysis import render_table
from repro.psim import MachineConfig, simulate


def _sweep(paper_traces):
    configs = [
        ("hardware", MachineConfig(processors=32)),
        ("software x1", MachineConfig(processors=32, scheduler="software",
                                      software_queues=1)),
        ("software x2", MachineConfig(processors=32, scheduler="software",
                                      software_queues=2)),
        ("software x4", MachineConfig(processors=32, scheduler="software",
                                      software_queues=4)),
        ("software x8", MachineConfig(processors=32, scheduler="software",
                                      software_queues=8)),
    ]
    rows = []
    for label, config in configs:
        results = [simulate(trace, config) for trace in paper_traces.values()]
        rows.append([
            label,
            round(sum(r.concurrency for r in results) / len(results), 2),
            round(sum(r.true_speedup for r in results) / len(results), 2),
            round(sum(r.wme_changes_per_second for r in results) / len(results)),
            f"{sum(r.scheduling_fraction for r in results) / len(results):.1%}",
        ])
    return rows


def test_abl_scheduler(benchmark, report, paper_traces):
    rows = benchmark.pedantic(_sweep, args=(paper_traces,), rounds=1, iterations=1)

    report(
        "abl_scheduler",
        render_table(
            ["scheduler", "concurrency", "true speed-up", "wme-changes/s",
             "scheduling share of busy time"],
            rows,
            title="Ablation: hardware vs software task scheduler, "
                  "32 processors (paper: software queues bottleneck "
                  "fine-grain tasks)",
        ),
    )

    by_label = {row[0]: row for row in rows}
    hw_speed = by_label["hardware"][3]
    sw1_speed = by_label["software x1"][3]

    # A single software queue cripples the machine (paper's warning).
    assert sw1_speed < 0.45 * hw_speed
    # More queues help monotonically, but even 8 don't fully recover.
    speeds = [by_label[f"software x{n}"][3] for n in (1, 2, 4, 8)]
    assert speeds == sorted(speeds)
    assert speeds[-1] < hw_speed
