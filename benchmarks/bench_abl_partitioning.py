"""Ablation: run-time assignment vs. static partitioning (Section 5).

Paper: without shared memory, node-to-processor assignment must be
fixed at load time; "this partitioning of nodes amongst the processors
is a very difficult problem, and in its full generality is shown to be
NP-Complete" (Oflazer).  "Using a shared-memory architecture the
partitioning problem is bypassed since all processors are capable of
processing all node activations."

This bench gives static partitioning every advantage it cannot have in
reality -- an LPT packing computed from the exact per-production costs
of the replayed trace -- and still shows run-time assignment ahead
whenever processors are contended.

It also exercises the hierarchical-multiprocessor extension the paper
proposes for 100-1000 processors: clusters localise state but cost
cross-cluster balance.
"""

from repro.analysis import render_table
from repro.psim import MachineConfig, simulate, simulate_partitioned


def _compare(paper_traces):
    partition_rows = []
    for name in ("r1-soar", "daa", "vt"):
        trace = paper_traces[name]
        for processors in (4, 8, 16, 32):
            dynamic = simulate(
                trace, MachineConfig(processors=processors, granularity="production")
            )
            static, _, imbalance = simulate_partitioned(
                trace, MachineConfig(processors=processors)
            )
            partition_rows.append([
                name, processors,
                round(dynamic.true_speedup, 2),
                round(static.true_speedup, 2),
                round(dynamic.true_speedup / static.true_speedup, 2),
                round(imbalance, 2),
            ])
    cluster_rows = []
    trace = paper_traces["r1-soar"]
    for clusters in (1, 2, 4, 8):
        result = simulate(trace, MachineConfig(processors=64, clusters=clusters))
        cluster_rows.append([
            64, clusters, round(result.true_speedup, 2), round(result.concurrency, 2)
        ])
    return partition_rows, cluster_rows


def test_abl_partitioning(benchmark, report, paper_traces):
    partition_rows, cluster_rows = benchmark.pedantic(
        _compare, args=(paper_traces,), rounds=1, iterations=1
    )

    report(
        "abl_partitioning",
        render_table(
            ["system", "procs", "dynamic speed-up", "static (oracle LPT)",
             "dynamic/static", "LPT imbalance"],
            partition_rows,
            title="Section 5 ablation: run-time assignment vs oracle "
                  "static partition (production granularity)",
        ) + "\n\n" + render_table(
            ["procs", "clusters", "true speed-up", "concurrency"],
            cluster_rows,
            title="Hierarchical extension: clustering a 64-processor "
                  "machine localises state but costs balance",
        ),
    )

    # Run-time assignment wins whenever processors are contended
    # (few processors relative to the affected-production burst).
    contended = [row for row in partition_rows if row[1] <= 16]
    assert all(row[4] >= 1.0 for row in contended)
    assert sum(row[4] for row in contended) / len(contended) > 1.05

    # The flat machine beats every clustered split of the same 64
    # processors on a single-stream workload.
    speedups = [row[2] for row in cluster_rows]
    assert speedups[0] == max(speedups)
    # And clustering degrades monotonically as state gets more confined.
    assert speedups == sorted(speedups, reverse=True)
