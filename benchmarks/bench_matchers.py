"""Microbenchmarks: wall-clock cost of the three match algorithms.

Not a paper table -- a library health check.  Times full runs of the
real OPS5 programs under Rete, TREAT, and the naive matcher, confirming
the state-saving hierarchy in actual Python wall-clock on a join-heavy
workload (the paper's Section 3.1 argument, measured for real).
"""

import pytest

from repro.naive import NaiveMatcher
from repro.oflazer import CombinationMatcher
from repro.rete import ReteNetwork
from repro.treat import TreatMatcher
from repro.workloads.programs import closure, hanoi

MATCHERS = {
    "rete": ReteNetwork,
    "treat": TreatMatcher,
    "naive": NaiveMatcher,
    "oflazer": CombinationMatcher,
}


@pytest.mark.parametrize("matcher_name", list(MATCHERS))
def test_bench_hanoi(benchmark, matcher_name):
    matcher_cls = MATCHERS[matcher_name]

    def run():
        result = hanoi.run(4, matcher=matcher_cls())
        assert result.halted
        return result

    result = benchmark(run)
    assert result.fired == 30


@pytest.mark.parametrize("matcher_name", list(MATCHERS))
def test_bench_closure(benchmark, matcher_name):
    matcher_cls = MATCHERS[matcher_name]

    def run():
        system = closure.build(closure.chain(7), matcher=matcher_cls())
        system.run(5000)
        return system

    system = benchmark(run)
    assert closure.derived_facts(system) == closure.expected_chain_facts(7)


def test_bench_rete_compile(benchmark):
    """Network compilation speed: all five programs' rules."""
    from repro.ops5 import parse_program
    from repro.workloads.programs import blocks, eight_puzzle, monkey

    sources = [
        hanoi.PROGRAM, blocks.PROGRAM, monkey.PROGRAM,
        eight_puzzle.PROGRAM, closure.PROGRAM,
    ]
    programs = [parse_program(src) for src in sources]

    def compile_all():
        net = ReteNetwork()
        for program in programs:
            for i, production in enumerate(program.productions):
                net.add_production(production)
        return net

    net = benchmark(compile_all)
    assert len(list(net.productions)) == sum(len(p.productions) for p in programs)
