"""Matcher microbenchmarks, including the compiled-kernel gate.

Two halves:

* **pytest-benchmark tests** (the original library health check): full
  runs of real OPS5 programs under every serial matcher, confirming the
  state-saving hierarchy in actual Python wall-clock.  The compiled
  kernel (``repro.kernel``) rides along as a fifth backend.
* **a standalone script** (``python benchmarks/bench_matchers.py``):
  compiled-vs-interpreted match throughput over all six Section 6
  system-class programs (``vt``, ``ilog``, ``mud``, ``daa``,
  ``r1-soar``, ``ep-soar``), written to ``BENCH_compiled_kernel.json``.
  ``--check`` gates the compiled kernel's per-program speedup over the
  interpreted Rete against ``benchmarks/baselines/compiled_kernel.json``
  (25% tolerance, mirroring the transport gate) -- the CI perf-smoke
  step for the codegen path.

Measurement discipline: programs are parsed once (parsing is not match
work); the codegen cache is warmed before timing so the committed
numbers reflect the steady state the cache is designed to provide (one
compile per ruleset *shape*, ever); rete and compiled samples are taken
in the same interleaved rounds so host drift hits both sides equally.
Cold compile cost is reported separately, not gated.

Usage::

    python benchmarks/bench_matchers.py                  # full report
    python benchmarks/bench_matchers.py --quick --check  # the CI gate
    python benchmarks/bench_matchers.py --update         # re-baseline
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(REPO, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO, "src"))

import pytest  # noqa: E402

from repro.kernel import CompiledMatcher, cache_stats  # noqa: E402
from repro.naive import NaiveMatcher  # noqa: E402
from repro.oflazer import CombinationMatcher  # noqa: E402
from repro.ops5 import ProductionSystem, parse_program  # noqa: E402
from repro.rete import ReteNetwork  # noqa: E402
from repro.treat import TreatMatcher  # noqa: E402
from repro.workloads.programs import SYSTEM_PROGRAMS, closure, hanoi  # noqa: E402

BASELINE_PATH = os.path.join(REPO, "benchmarks", "baselines", "compiled_kernel.json")
BENCH_OUT_PATH = os.path.join(REPO, "BENCH_compiled_kernel.json")
BASELINE_SCHEMA = "repro.compiled-kernel-bench/1"

MATCHERS = {
    "rete": ReteNetwork,
    "treat": TreatMatcher,
    "naive": NaiveMatcher,
    "oflazer": CombinationMatcher,
    "compiled": CompiledMatcher,
}

PROFILES = {
    "quick": {"reps": 3},
    "full": {"reps": 5},
}


@pytest.mark.parametrize("matcher_name", list(MATCHERS))
def test_bench_hanoi(benchmark, matcher_name):
    matcher_cls = MATCHERS[matcher_name]

    def run():
        result = hanoi.run(4, matcher=matcher_cls())
        assert result.halted
        return result

    result = benchmark(run)
    assert result.fired == 30


@pytest.mark.parametrize("matcher_name", list(MATCHERS))
def test_bench_closure(benchmark, matcher_name):
    matcher_cls = MATCHERS[matcher_name]

    def run():
        system = closure.build(closure.chain(7), matcher=matcher_cls())
        system.run(5000)
        return system

    system = benchmark(run)
    assert closure.derived_facts(system) == closure.expected_chain_facts(7)


def test_bench_rete_compile(benchmark):
    """Network compilation speed: all five programs' rules."""
    from repro.workloads.programs import blocks, eight_puzzle, monkey

    sources = [
        hanoi.PROGRAM, blocks.PROGRAM, monkey.PROGRAM,
        eight_puzzle.PROGRAM, closure.PROGRAM,
    ]
    programs = [parse_program(src) for src in sources]

    def compile_all():
        net = ReteNetwork()
        for program in programs:
            for i, production in enumerate(program.productions):
                net.add_production(production)
        return net

    net = benchmark(compile_all)
    assert len(list(net.productions)) == sum(len(p.productions) for p in programs)


# ---------------------------------------------------------------------------
# Standalone: compiled-vs-interpreted over the six system programs
# ---------------------------------------------------------------------------


def _best_interleaved(fns: dict, reps: int) -> dict:
    """Minimum seconds per call for each labelled fn, round-robin, so a
    CPU-frequency shift hits every backend in the same round (the same
    rationale as ``bench_transport.py``)."""
    best = {label: float("inf") for label in fns}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            for label, fn in fns.items():
                started = time.perf_counter()
                fn()
                best[label] = min(best[label], time.perf_counter() - started)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def measure_program(name: str, module, reps: int) -> dict:
    """One system program, every serial backend, parse excluded."""
    program = parse_program(module.PROGRAM)
    max_cycles = module.EMITTED.max_cycles
    expected = module.expected_firings()
    changes: dict[str, int] = {}

    def runner(label, factory):
        def run() -> None:
            matcher = factory()
            system = ProductionSystem(program, matcher=matcher)
            for wme in module.setup():
                system.add_wme(wme)
            result = system.run(max_cycles=max_cycles)
            assert result.fired == expected, (
                f"{name}/{label}: fired {result.fired}, expected {expected}"
            )
            changes[label] = matcher.stats.total_changes
        return run

    fns = {
        label: runner(label, factory) for label, factory in MATCHERS.items()
    }

    # Cold compile: the one-time codegen + exec cost the cache absorbs.
    misses_before = cache_stats()["misses"]
    started = time.perf_counter()
    fns["compiled"]()
    cold_seconds = time.perf_counter() - started
    cold = cache_stats()["misses"] > misses_before

    for fn in fns.values():  # warm every backend once
        fn()
    best = _best_interleaved(fns, reps)

    assert len(set(changes.values())) == 1, f"{name}: change counts diverge"
    wme_changes = changes["compiled"]
    row = {
        "wme_changes": wme_changes,
        "expected_firings": expected,
        "cold_run_seconds": cold_seconds,
        "cold_compile": cold,
    }
    for label, seconds in best.items():
        row[label] = {
            "seconds": seconds,
            "wme_changes_per_sec": wme_changes / seconds,
        }
    row["speedup_vs_rete"] = best["rete"] / best["compiled"]
    return row


def measure(profile_name: str) -> dict:
    reps = PROFILES[profile_name]["reps"]
    return {
        "schema": BASELINE_SCHEMA,
        "profile": profile_name,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "backends": sorted(MATCHERS),
        "programs": {
            name: measure_program(name, module, reps)
            for name, module in SYSTEM_PROGRAMS.items()
        },
        "cache": cache_stats(),
    }


def report(measured: dict) -> None:
    print(f"profile: {measured['profile']}  (backends: "
          f"{', '.join(measured['backends'])})")
    print("system-class programs (full run minus parse, wme-changes/sec):")
    for name, row in measured["programs"].items():
        rete = row["rete"]["wme_changes_per_sec"]
        comp = row["compiled"]["wme_changes_per_sec"]
        print(
            f"  {name:<8} rete {rete:7.0f}/s   compiled {comp:7.0f}/s   "
            f"speedup {row['speedup_vs_rete']:.2f}x   "
            f"cold run {row['cold_run_seconds'] * 1e3:.1f} ms"
        )
    cache = measured["cache"]
    print(
        f"codegen cache: {cache['misses']} compiles, {cache['hits']} hits, "
        f"{cache['size']} rulesets"
    )


def _gate_rows(measured: dict) -> dict:
    """The dimensionless numbers the baseline commits and --check gates."""
    return {
        name: {"speedup_vs_rete": row["speedup_vs_rete"]}
        for name, row in measured["programs"].items()
    }


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def check(measured: dict, tolerance: float) -> int:
    profile_name = measured["profile"]
    baseline = load_baseline().get(profile_name)
    if baseline is None:
        print(
            f"error: no committed baseline for profile {profile_name!r}; "
            f"run with --update first",
            file=sys.stderr,
        )
        return 2
    failures = []
    for name, row in _gate_rows(measured).items():
        expected = baseline["programs"][name]["speedup_vs_rete"]
        got = row["speedup_vs_rete"]
        # Speedup is a bigger-is-better ratio: fail when the compiled
        # kernel's advantage *shrinks* past the tolerance.
        drift = got / expected - 1.0
        status = "ok" if drift >= -tolerance else "REGRESSED"
        print(
            f"  {name}/speedup_vs_rete {got:6.2f}x vs baseline {expected:6.2f}x "
            f"({drift:+.1%}, tolerance {tolerance:.0%}): {status}"
        )
        if drift < -tolerance:
            failures.append(name)
    if failures:
        print(
            f"FAIL: compiled-kernel speedup regressed on {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print("PASS: compiled-kernel speedup within tolerance on all six programs")
    return 0


def update(measured: dict) -> None:
    try:
        baseline = load_baseline()
    except FileNotFoundError:
        baseline = {}
    baseline["schema"] = BASELINE_SCHEMA + "-baseline"
    baseline[measured["profile"]] = {"programs": _gate_rows(measured)}
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote baseline for {measured['profile']!r} to {BASELINE_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer interleaved rounds (the CI profile)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail if the compiled kernel's speedup regressed vs baseline",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the committed baseline"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative speedup shrinkage (default 0.25)",
    )
    parser.add_argument(
        "--out", default=BENCH_OUT_PATH,
        help="where to write the JSON snapshot "
             "(default BENCH_compiled_kernel.json)",
    )
    args = parser.parse_args(argv)

    measured = measure("quick" if args.quick else "full")
    report(measured)
    with open(args.out, "w") as handle:
        json.dump(measured, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    if args.update:
        update(measured)
    if args.check:
        return check(measured, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
