"""Ablation: decomposing the paper's lost factor of 1.93.

Section 6 attributes the gap between concurrency (15.92) and true
speed-up (8.25) to (1) extra computation from loss of node sharing,
(2) node scheduling overheads, (3) synchronisation overheads.  This
bench switches the three model knobs off one at a time and together,
showing how much of the lost factor each accounts for.
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.psim import MachineConfig, simulate


def _decompose(paper_traces):
    base = MachineConfig(processors=32)
    variants = [
        ("full model (paper machine)", base),
        ("no sharing loss", replace(base, sharing_loss_factor=1.0)),
        ("no sync cost", replace(base, sync_cost_per_task=0.0)),
        ("free dispatch", replace(base, hardware_dispatch_cost=0.0)),
        ("no overheads at all", replace(
            base, sharing_loss_factor=1.0, sync_cost_per_task=0.0,
            hardware_dispatch_cost=0.0)),
    ]
    rows = []
    for label, config in variants:
        results = [simulate(trace, config) for trace in paper_traces.values()]
        n = len(results)
        rows.append([
            label,
            round(sum(r.concurrency for r in results) / n, 2),
            round(sum(r.true_speedup for r in results) / n, 2),
            round(sum(r.lost_factor for r in results) / n, 2),
        ])
    return rows


def test_abl_overhead_decomposition(benchmark, report, paper_traces):
    rows = benchmark.pedantic(
        _decompose, args=(paper_traces,), rounds=1, iterations=1
    )

    report(
        "abl_overheads",
        render_table(
            ["model variant", "concurrency", "true speed-up", "lost factor"],
            rows,
            title="Ablation: the lost factor (paper: 1.93) decomposed "
                  "into sharing loss, scheduling, synchronisation",
        ),
    )

    by_label = {row[0]: row for row in rows}
    full_lost = by_label["full model (paper machine)"][3]
    no_sharing = by_label["no sharing loss"][3]
    no_overheads = by_label["no overheads at all"][3]

    # The full model reproduces the paper's ~1.9 lost factor.
    assert 1.6 <= full_lost <= 2.3
    # Sharing loss is the single largest component...
    assert no_sharing < full_lost - 0.25
    # ... and with every overhead off, concurrency ~ true speed-up
    # (lost factor collapses towards 1).
    assert no_overheads <= 1.25
    # Each removed overhead raises the speed-up.
    full_speedup = by_label["full model (paper machine)"][2]
    for label in ("no sharing loss", "no sync cost", "free dispatch"):
        assert by_label[label][2] >= full_speedup
