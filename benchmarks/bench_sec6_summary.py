"""Section 6 headline numbers at 32 processors x 2 MIPS.

Paper: average concurrency 15.92, execution speed ~9400 wme-changes/sec
(~3800 production firings/sec), *true* speed-up over the best serial
implementation only 8.25, a lost factor of 1.93 attributed to (1) loss
of node sharing, (2) scheduling overhead, (3) synchronisation overhead.
"""

from conftest import FIRINGS, SEED

from repro.analysis import render_table
from repro.psim import MachineConfig, simulate
from repro.psim.metrics import (
    average_concurrency,
    average_speed,
    average_true_speedup,
)
from repro.workloads import PARALLEL_FIRING_SYSTEMS, generate_trace


def _run(paper_traces):
    config = MachineConfig(processors=32)
    results = [simulate(trace, config) for trace in paper_traces.values()]
    for profile in PARALLEL_FIRING_SYSTEMS:
        trace = generate_trace(profile, seed=SEED, firings=FIRINGS)
        results.append(
            simulate(trace, MachineConfig(processors=32, firing_batch=2))
        )
    return results


def test_sec6_headline_summary(benchmark, report, paper_traces):
    results = benchmark.pedantic(_run, args=(paper_traces,), rounds=1, iterations=1)

    rows = [
        [
            r.trace_name + (" (pf)" if r.config.firing_batch > 1 else ""),
            round(r.concurrency, 2),
            round(r.true_speedup, 2),
            round(r.lost_factor, 2),
            round(r.wme_changes_per_second),
            round(r.firings_per_second),
        ]
        for r in results
    ]
    rows.append([
        "AVERAGE",
        round(average_concurrency(results), 2),
        round(average_true_speedup(results), 2),
        round(sum(r.lost_factor for r in results) / len(results), 2),
        round(average_speed(results)),
        round(sum(r.firings_per_second for r in results) / len(results)),
    ])

    report(
        "sec6_summary",
        render_table(
            ["system", "concurrency", "true speed-up", "lost factor",
             "wme-changes/s", "firings/s"],
            rows,
            title="Section 6 at 32 x 2 MIPS (paper: 15.92 concurrency, "
                  "8.25 true speed-up, 1.93 lost factor, 9400 wme/s, "
                  "~3800 firings/s)",
        ),
    )

    concurrency = average_concurrency(results)
    speedup = average_true_speedup(results)
    speed = average_speed(results)
    lost = concurrency / speedup

    assert 12.0 <= concurrency <= 20.0      # paper: 15.92
    assert 6.0 <= speedup <= 11.0           # paper: 8.25
    assert 1.6 <= lost <= 2.3               # paper: 1.93
    assert 6000 <= speed <= 12000           # paper: 9400
    # The abstract's claim: the speed-up from parallelism is < 10-fold
    # on average.
    assert speedup < 10.5
