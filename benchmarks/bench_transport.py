"""Dispatch-cost benchmark for the shard transports (``repro.parallel``).

The paper's parallel machine stands or falls on dispatch overhead: its
hardware task scheduler pushes a task to a processor in about one bus
cycle, and Section 5 budgets the whole machine around that number
(9400 wme-changes/sec).  This benchmark measures the software analogue
at every layer of our transport stack, pickle-pipe baseline vs
shared-memory ring, on the closure workload's dispatch stream:

* **dispatch** (the headline): the scheduling operation itself --
  publishing one ready command frame and consuming it on the other
  side.  For the pipe that is ``send_bytes``/``recv_bytes`` (a syscall
  pair); for the ring it is ``Ring.write``/``read_message`` (a buffer
  copy plus a counter store).  The acceptance bar is a >=2x advantage
  for the ring, per op, on the closure stream.
* **marshalling**: CPU to turn a batch into wire bytes and back --
  C ``pickle`` vs the struct codec with interned symbols, fresh and
  through the fanout op cache -- plus frame sizes.  Reported honestly:
  C pickle beats a pure-Python codec on serialisation CPU; the codec
  earns its keep on bytes, on the cache, and on the wire above.
* **full_path**: marshal + wire + unmarshal per op, the cost the
  executor actually pays per shard delivery.
* **end_to_end**: transitive closure to natural halt -- serial
  interpreted Rete vs the compiled kernel (``repro.kernel``), then
  inline / pipe / ring over real worker processes -- in wme-changes/sec
  against the paper's 9400.
* **recovery**: the differential harness (``seeded_chaos``) over both
  transports -- a seeded crash+hang run must be bit-identical to the
  inline reference, with the same recovery story, on either wire.
* **slots**: the ``__slots__`` micro-bench backing the Token /
  rete-node layout choice (see ``rete/nodes.py``).

``--check`` compares the calibration-normalised dispatch cost of both
transports against ``benchmarks/baselines/transport.json`` and exits 1
on a >25% regression (``--tolerance 0.25``) -- the CI perf-smoke gate.
Every run also writes ``BENCH_transport.json`` at the repo root (the CI
artifact).  Raw microseconds are printed for humans; only dimensionless
work ratios are committed, for the same machine-independence reasons as
``bench_obs_overhead.py``.

Usage::

    python benchmarks/bench_transport.py                  # full report
    python benchmarks/bench_transport.py --quick --check  # the CI gate
    python benchmarks/bench_transport.py --update         # re-baseline
    python benchmarks/bench_transport.py --quick --update

(The file matches the ``bench_*.py`` pytest glob but defines no tests;
it is a standalone script.)
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pickle
import platform
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(REPO, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO, "src"))

import multiprocessing  # noqa: E402

from repro.ops5 import ProductionSystem  # noqa: E402
from repro.ops5.symbols import SYMBOLS, SymbolTable  # noqa: E402
from repro.ops5.wme import WME  # noqa: E402
from repro.parallel import ParallelMatcher, SupervisorConfig  # noqa: E402
from repro.parallel import codec, messages  # noqa: E402
from repro.parallel.ring import Ring  # noqa: E402
from repro.rete.token import Token  # noqa: E402

BASELINE_PATH = os.path.join(REPO, "benchmarks", "baselines", "transport.json")
BENCH_OUT_PATH = os.path.join(REPO, "BENCH_transport.json")
BASELINE_SCHEMA = "repro.transport-bench/1"

#: The paper's Section 5 throughput budget for the full PSM.
PAPER_TARGET = 9400

PROFILES = {
    "quick": {"reps": 5, "messages": 512, "chain": 8, "slots_n": 20_000},
    "full": {"reps": 9, "messages": 2048, "chain": 12, "slots_n": 60_000},
}

#: The chaos program (same one the chaos suite uses): closure with
#: negated-CE guards, halts naturally when the relation is complete.
CLOSURE = """
(p base (parent ^from <x> ^to <y>) - (anc ^from <x> ^to <y>)
   --> (make anc ^from <x> ^to <y>))
(p step (anc ^from <x> ^to <y>) (parent ^from <y> ^to <z>)
        - (anc ^from <x> ^to <z>)
   --> (make anc ^from <x> ^to <z>))
"""

FAST = SupervisorConfig(collect_deadline=2.0, checkpoint_every=4)


# ---------------------------------------------------------------------------
# Timing scaffolding (same discipline as bench_obs_overhead.py)
# ---------------------------------------------------------------------------


class _CalToken:
    __slots__ = ("items", "count")

    def __init__(self) -> None:
        self.items = {}
        self.count = 0


def _spin() -> int:
    """Calibration load shaped like the engine/transport hot mix:
    tuple-keyed dict traffic, ``__slots__`` attribute access, small
    allocations.  Normalising by it turns wall-clock into a work ratio
    that survives CPU frequency drift between machines."""
    token = _CalToken()
    store = {}
    total = 0
    for i in range(30_000):
        key = ("p", i % 61)
        store[key] = i
        if key in store:
            total += store[key]
        token.items[i % 53] = i
        token.count += 1
        if i % 7 == 0:
            store.pop(key, None)
    return total


def _best(fn, reps: int) -> float:
    """Minimum seconds per call of *fn* over *reps* interleaved rounds."""
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def _best_interleaved(fns: list, reps: int) -> list[float]:
    """Minimum seconds per call for each of *fns*, round-robin.

    Interleaving matters for the committed ratios: a CPU-frequency or
    co-tenant shift between the calibration phase and the measurement
    phase would masquerade as a dispatch-cost change; sampling them in
    the same rounds makes the drift hit numerator and denominator
    together.
    """
    best = [float("inf")] * len(fns)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            for index, fn in enumerate(fns):
                started = time.perf_counter()
                fn()
                best[index] = min(best[index], time.perf_counter() - started)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


# ---------------------------------------------------------------------------
# The workload: the closure run's dispatch stream
# ---------------------------------------------------------------------------


def closure_ops(count: int, start_tag: int = 1000) -> list[tuple]:
    """ADD_WME ops shaped like what the closure run actually dispatches:
    two-attribute symbol-valued facts with a modest symbol vocabulary."""
    return [
        (
            messages.ADD_WME,
            "anc" if i % 3 else "parent",
            {"from": f"n{i % 61}", "to": f"n{(i * 7 + 1) % 61}"},
            start_tag + i,
        )
        for i in range(count)
    ]


def _batches(ops: list[tuple], size: int) -> list[list[tuple]]:
    return [ops[i : i + size] for i in range(0, len(ops) - size + 1, size)]


def _pipe_frames(batches: list[list[tuple]]) -> list[bytes]:
    return [
        pickle.dumps((messages.BATCH, batch, seq), protocol=pickle.HIGHEST_PROTOCOL)
        for seq, batch in enumerate(batches)
    ]


def _ring_frames(batches: list[list[tuple]]) -> list[bytes]:
    """Steady-state codec frames: symbols pre-interned so no frame
    carries a table delta (matching a warmed-up run)."""
    watermark = len(SYMBOLS)
    for seq, batch in enumerate(batches):  # intern every symbol once
        codec.encode_batch(batch, seq, SYMBOLS, watermark)
    watermark = len(SYMBOLS)
    return [
        codec.encode_batch(batch, seq, SYMBOLS, watermark)[0]
        for seq, batch in enumerate(batches)
    ]


# ---------------------------------------------------------------------------
# Section: dispatch (the headline -- wire publish + consume)
# ---------------------------------------------------------------------------


def measure_dispatch(profile: dict) -> tuple[dict, float]:
    """Per-op cost of the scheduling operation itself.

    Both sides run in this process so nothing but the transfer is
    timed: no scheduler handoff, no worker-side match work.  Messages
    alternate publish/consume, which keeps the ring on its fast path
    (two slice stores + one counter store) exactly as a draining worker
    would; the pipe pays its syscall pair either way.  Calibration runs
    in the same rounds as both transports so the committed ratios see
    one machine state, not three.
    """
    reps = profile["reps"]
    rows = {}
    cal = float("inf")
    for batch_size, label in ((1, "batch1"), (4, "batch4")):
        ops = closure_ops(batch_size * profile["messages"])
        batches = _batches(ops, batch_size)
        pframes = _pipe_frames(batches)
        rframes = _ring_frames(batches)
        n_msgs = len(batches)
        n_ops = n_msgs * batch_size

        # A duplex Pipe, exactly what _ProcessShard opens: the executor's
        # pipe transport sends and receives on one bidirectional channel.
        send_conn, recv_conn = multiprocessing.Pipe()
        ring = Ring.create(1 << 20)
        try:
            def pipe_round() -> None:
                send = send_conn.send_bytes
                recv = recv_conn.recv_bytes
                for frame in pframes:
                    send(frame)
                    recv()

            def ring_round() -> None:
                write = ring.write
                read = ring.read_message
                for frame in rframes:
                    write(frame)
                    read()

            pipe_round(), ring_round(), _spin()  # warm
            pipe_s, ring_s, cal_s = _best_interleaved(
                [pipe_round, ring_round, _spin], reps
            )
        finally:
            send_conn.close()
            recv_conn.close()
            ring.close()

        cal = min(cal, cal_s)
        rows[label] = {
            "batch_size": batch_size,
            "messages": n_msgs,
            "pipe_us_per_op": pipe_s / n_ops * 1e6,
            "ring_us_per_op": ring_s / n_ops * 1e6,
            "advantage": pipe_s / ring_s,
            # Committed (machine-independent) numbers: work ratios.
            "pipe_ratio": pipe_s / n_ops / cal_s,
            "ring_ratio": ring_s / n_ops / cal_s,
        }
    return rows, cal


# ---------------------------------------------------------------------------
# Section: marshalling (serialisation CPU + frame bytes)
# ---------------------------------------------------------------------------


def measure_marshalling(profile: dict) -> dict:
    reps = profile["reps"]
    ops = closure_ops(profile["messages"])
    batches = _batches(ops, 1)
    n_ops = len(batches)

    def pickle_encode() -> None:
        dumps = pickle.dumps
        proto = pickle.HIGHEST_PROTOCOL
        for seq, batch in enumerate(batches):
            dumps((messages.BATCH, batch, seq), protocol=proto)

    # Warm the global table so fresh-encode timing is the steady state
    # (no delta strings), exactly like a mid-run dispatch.
    _ring_frames(batches[:4])
    watermark = len(SYMBOLS)

    def codec_fresh() -> None:
        encode = codec.encode_batch
        for seq, batch in enumerate(batches):
            encode(batch, seq, SYMBOLS, watermark)

    shared_cache: dict[int, bytes] = {}
    for seq, batch in enumerate(batches):  # fill: the first shard's encode
        codec.encode_batch(batch, seq, SYMBOLS, watermark, shared_cache)

    def codec_cached() -> None:
        # Every op hits the shared epoch cache -- the executor's fanout
        # path, where shard 2..N reuse the bytes shard 1 produced.
        encode = codec.encode_batch
        for seq, batch in enumerate(batches):
            encode(batch, seq, SYMBOLS, watermark, shared_cache)

    pframes = _pipe_frames(batches)
    rframes = _ring_frames(batches)

    def pickle_decode() -> None:
        loads = pickle.loads
        for frame in pframes:
            loads(frame)

    # Steady-state frames carry no delta, so seed the mirror the way a
    # worker's would have been seeded: by every symbol shipped so far.
    mirror = SymbolTable()
    mirror.extend(SYMBOLS.delta(0))

    def codec_decode() -> None:
        decode = codec.decode_batch
        for frame in rframes:
            decode(frame, mirror)

    out = {}
    for name, fn in (
        ("pickle_encode", pickle_encode),
        ("codec_encode_fresh", codec_fresh),
        ("codec_encode_cached", codec_cached),
        ("pickle_decode", pickle_decode),
        ("codec_decode", codec_decode),
    ):
        fn()  # warm
        out[name + "_us_per_op"] = _best(fn, reps) / n_ops * 1e6
    out["frame_bytes_pipe"] = len(pframes[0])
    out["frame_bytes_ring"] = len(rframes[0])
    return out


# ---------------------------------------------------------------------------
# Section: full path (marshal + wire + unmarshal)
# ---------------------------------------------------------------------------


def measure_full_path(profile: dict) -> dict:
    reps = profile["reps"]
    rows = {}
    for batch_size, label in ((1, "batch1"), (4, "batch4")):
        ops = closure_ops(batch_size * profile["messages"])
        batches = _batches(ops, batch_size)
        n_ops = len(batches) * batch_size
        _ring_frames(batches[:4])  # warm the symbol table
        watermark = len(SYMBOLS)
        mirror = SymbolTable()
        mirror.extend(SYMBOLS.delta(0))

        send_conn, recv_conn = multiprocessing.Pipe()
        try:
            def pipe_full() -> None:
                dumps, loads = pickle.dumps, pickle.loads
                proto = pickle.HIGHEST_PROTOCOL
                send = send_conn.send_bytes
                recv = recv_conn.recv_bytes
                for seq, batch in enumerate(batches):
                    send(dumps((messages.BATCH, batch, seq), protocol=proto))
                    loads(recv())

            pipe_full()
            pipe_s = _best(pipe_full, reps)
        finally:
            send_conn.close()
            recv_conn.close()

        ring = Ring.create(1 << 20)
        try:
            def ring_full() -> None:
                encode, decode = codec.encode_batch, codec.decode_batch
                write, read = ring.write, ring.read_message
                for seq, batch in enumerate(batches):
                    frame, _ = encode(batch, seq, SYMBOLS, watermark)
                    write(frame)
                    decode(read(), mirror)

            ring_full()
            ring_s = _best(ring_full, reps)
        finally:
            ring.close()

        rows[label] = {
            "pipe_us_per_op": pipe_s / n_ops * 1e6,
            "ring_us_per_op": ring_s / n_ops * 1e6,
        }
    return rows


# ---------------------------------------------------------------------------
# Section: end to end (real worker processes, wme-changes/sec)
# ---------------------------------------------------------------------------


def _closure_chain(length: int) -> list[tuple]:
    return [("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(length)]


def measure_end_to_end(profile: dict) -> dict:
    """The closure run to natural halt over each transport.

    A chain of N parent edges derives N(N+1)/2 ancestor facts; every
    make is one wme change, so changes/sec is directly comparable with
    the paper's 9400 budget.  One sample per mode -- worker spawn cost
    is excluded, match work dominates, and the number is informational
    (never gated): on a single-core host the parallel modes measure
    dispatch overhead plus serialised match work, not speedup.
    """
    chain = _closure_chain(profile["chain"])
    changes = len(chain) + profile["chain"] * (profile["chain"] + 1) // 2
    rows = {}
    # Serial matchers first: the interpreted Rete vs the generated
    # kernel (repro.kernel), same program, same change stream.  Best of
    # three runs -- the kernel's codegen cache makes run 2+ reflect
    # steady state (compiling is once per ruleset *shape*, by design),
    # and the interpreted matchers get the same treatment.
    from repro.ops5.engine import matcher_named

    for label in ("rete", "compiled"):
        best = float("inf")
        for _ in range(3):
            matcher = matcher_named(label)
            system = ProductionSystem(CLOSURE, matcher=matcher)
            started = time.perf_counter()
            for cls, attrs in chain:
                system.add(cls, **attrs)
            system.run(max_cycles=10_000)
            best = min(best, time.perf_counter() - started)
        rows[label] = {
            "workers": 0,
            "seconds": best,
            "wme_changes": changes,
            "wme_changes_per_sec": changes / best,
        }
    rows["compiled"]["speedup_vs_rete"] = (
        rows["rete"]["seconds"] / rows["compiled"]["seconds"]
    )
    for label, kind, workers in (
        ("inline", "pipe", 0),
        ("pipe", "pipe", 2),
        ("ring", "ring", 2),
    ):
        with ParallelMatcher(workers=workers, transport=kind, supervisor=FAST) as m:
            system = ProductionSystem(CLOSURE, matcher=m)
            started = time.perf_counter()
            for cls, attrs in chain:
                system.add(cls, **attrs)
            system.run(max_cycles=10_000)
            m.flush()
            elapsed = time.perf_counter() - started
            summary = m.transport_summary()
        rows[label] = {
            "workers": workers,
            "seconds": elapsed,
            "wme_changes": changes,
            "wme_changes_per_sec": changes / elapsed,
            "dispatches": summary.get("dispatches", 0),
            "bytes_sent": summary.get("bytes_sent", 0),
            "ring_stalls": summary.get("ring_stalls", 0),
        }
    rows["paper_target_wme_changes_per_sec"] = PAPER_TARGET
    return rows


# ---------------------------------------------------------------------------
# Section: recovery (the differential harness over both transports)
# ---------------------------------------------------------------------------


def measure_recovery() -> dict:
    """Seeded crash+hang chaos over ring and pipe: both must be
    bit-identical to the inline reference with the same recovery story
    (the transport half of the acceptance criterion)."""
    from repro.faults import seeded_chaos

    setup = _closure_chain(6)
    reports = {
        kind: seeded_chaos(
            CLOSURE,
            setup,
            seed=13,
            workers=2,
            crashes=1,
            hangs=1,
            supervisor=SupervisorConfig(collect_deadline=0.5, checkpoint_every=4),
            transport=kind,
        )
        for kind in ("ring", "pipe")
    }
    stories = {
        kind: [
            (e["shard"], e["seq"], e["cause"], e["action"])
            for e in report.recovery_events
        ]
        for kind, report in reports.items()
    }
    return {
        kind: {
            "identical": report.identical,
            "divergences": report.divergences,
            "recovery_events": len(report.recovery_events),
            "halted": report.halted,
        }
        for kind, report in reports.items()
    } | {"stories_match": stories["ring"] == stories["pipe"]}


# ---------------------------------------------------------------------------
# Section: slots (the Token / rete-node layout note)
# ---------------------------------------------------------------------------


class _DictToken:
    """Token without ``__slots__`` -- the counterfactual being measured."""

    def __init__(self, parent, wme) -> None:
        self.parent = parent
        self.wme = wme
        self.key = parent.key + ((wme.timetag if wme is not None else 0),)
        self.depth = parent.depth + 1


def measure_slots(profile: dict) -> dict:
    """Build-and-traverse cost of token chains, slotted vs dict-backed.

    This is the access pattern of every join activation: construct a
    child token, read ``key``/``depth``/``parent`` back out.  The
    measured gap is the justification recorded in ``rete/nodes.py`` for
    declaring ``__slots__`` on Token and every node class.
    """
    reps = profile["reps"]
    n = profile["slots_n"]
    wme = WME("item", {"k": "v"})
    wme.timetag = 7
    root = Token.empty()

    def run_slotted() -> int:
        total = 0
        parent = root
        for i in range(n):
            token = Token(parent, wme)
            total += token.depth + token.key[-1]
            parent = token if i % 8 else root
        return total

    dict_root = _DictToken.__new__(_DictToken)
    dict_root.parent = None
    dict_root.wme = None
    dict_root.key = ()
    dict_root.depth = 0

    def run_dict() -> int:
        total = 0
        parent = dict_root
        for i in range(n):
            token = _DictToken(parent, wme)
            total += token.depth + token.key[-1]
            parent = token if i % 8 else dict_root
        return total

    run_slotted(), run_dict()  # warm
    slotted = _best(run_slotted, reps) / n * 1e9
    plain = _best(run_dict, reps) / n * 1e9
    return {
        "token_slots_ns_per_op": slotted,
        "token_dict_ns_per_op": plain,
        "speedup": plain / slotted,
        "note": (
            "__slots__ removes the per-instance __dict__ from Token and "
            "every rete node; the measured gap is this construct+access "
            "micro-bench, the memory win (no dict per token) compounds "
            "with beta-memory size"
        ),
    }


# ---------------------------------------------------------------------------
# Reporting / gating
# ---------------------------------------------------------------------------


def measure(profile_name: str) -> dict:
    profile = PROFILES[profile_name]
    dispatch, cal = measure_dispatch(profile)
    measured = {
        "schema": BASELINE_SCHEMA,
        "profile": profile_name,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "paper_target_wme_changes_per_sec": PAPER_TARGET,
        "calibration_seconds": cal,
        "dispatch": dispatch,
        "marshalling": measure_marshalling(profile),
        "full_path": measure_full_path(profile),
        "end_to_end": measure_end_to_end(profile),
        "recovery": measure_recovery(),
        "slots": measure_slots(profile),
    }
    return measured


def report(measured: dict) -> None:
    print(f"profile: {measured['profile']}  "
          f"(calibration {measured['calibration_seconds'] * 1e3:.2f} ms)")
    print("dispatch (publish + consume one ready frame, per op):")
    for label, row in measured["dispatch"].items():
        print(
            f"  {label:<7} pipe {row['pipe_us_per_op']:6.2f} us   "
            f"ring {row['ring_us_per_op']:6.2f} us   "
            f"ring advantage {row['advantage']:.2f}x"
        )
    m = measured["marshalling"]
    print("marshalling (per op):")
    print(
        f"  encode: pickle {m['pickle_encode_us_per_op']:5.2f} us   "
        f"codec fresh {m['codec_encode_fresh_us_per_op']:5.2f} us   "
        f"codec cached {m['codec_encode_cached_us_per_op']:5.2f} us"
    )
    print(
        f"  decode: pickle {m['pickle_decode_us_per_op']:5.2f} us   "
        f"codec {m['codec_decode_us_per_op']:5.2f} us   "
        f"frame bytes pipe {m['frame_bytes_pipe']} / ring {m['frame_bytes_ring']}"
    )
    print("full path (marshal + wire + unmarshal, per op):")
    for label, row in measured["full_path"].items():
        print(
            f"  {label:<7} pipe {row['pipe_us_per_op']:6.2f} us   "
            f"ring {row['ring_us_per_op']:6.2f} us"
        )
    print("end to end (closure to halt, wme-changes/sec; paper budget "
          f"{PAPER_TARGET}):")
    for label in ("rete", "compiled", "inline", "pipe", "ring"):
        row = measured["end_to_end"][label]
        extra = f"  dispatches={row['dispatches']}" if "dispatches" in row else ""
        if "speedup_vs_rete" in row:
            extra = f"  ({row['speedup_vs_rete']:.2f}x interpreted rete)"
        print(
            f"  {label:<8} w={row['workers']}  {row['seconds'] * 1e3:7.1f} ms  "
            f"{row['wme_changes_per_sec']:7.0f} changes/sec{extra}"
        )
    r = measured["recovery"]
    print(
        "recovery: ring identical=%s pipe identical=%s stories_match=%s"
        % (r["ring"]["identical"], r["pipe"]["identical"], r["stories_match"])
    )
    s = measured["slots"]
    print(
        f"slots: Token {s['token_slots_ns_per_op']:.0f} ns/op vs dict-backed "
        f"{s['token_dict_ns_per_op']:.0f} ns/op ({s['speedup']:.2f}x)"
    )


def _gate_rows(measured: dict) -> dict:
    """The dimensionless numbers the baseline commits and --check gates."""
    return {
        label: {
            "pipe_ratio": row["pipe_ratio"],
            "ring_ratio": row["ring_ratio"],
        }
        for label, row in measured["dispatch"].items()
    }


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def check(measured: dict, tolerance: float) -> int:
    profile_name = measured["profile"]
    baseline = load_baseline().get(profile_name)
    if baseline is None:
        print(
            f"error: no committed baseline for profile {profile_name!r}; "
            f"run with --update first",
            file=sys.stderr,
        )
        return 2
    failures = []
    for label, row in _gate_rows(measured).items():
        for side in ("pipe_ratio", "ring_ratio"):
            expected = baseline["dispatch"][label][side]
            got = row[side]
            drift = got / expected - 1.0
            status = "ok" if drift <= tolerance else "REGRESSED"
            print(
                f"  {label}/{side:<10} {got:8.4f} vs baseline {expected:8.4f} "
                f"({drift:+.1%}, tolerance {tolerance:.0%}): {status}"
            )
            if drift > tolerance:
                failures.append(f"{label}/{side}")
    for kind in ("ring", "pipe"):
        if not measured["recovery"][kind]["identical"]:
            print(f"  recovery/{kind}: NOT bit-identical", file=sys.stderr)
            failures.append(f"recovery/{kind}")
    if not measured["recovery"]["stories_match"]:
        failures.append("recovery/stories")
    if failures:
        print(
            f"FAIL: dispatch cost or recovery regressed on "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print("PASS: dispatch cost within tolerance; recovery bit-identical "
          "on both transports")
    return 0


def update(measured: dict) -> None:
    try:
        baseline = load_baseline()
    except FileNotFoundError:
        baseline = {}
    baseline["schema"] = BASELINE_SCHEMA + "-baseline"
    baseline[measured["profile"]] = {"dispatch": _gate_rows(measured)}
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote baseline for {measured['profile']!r} to {BASELINE_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small message counts / few reps (the CI profile)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail if dispatch cost regressed vs the committed baseline",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the committed baseline"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative dispatch-cost regression (default 0.25)",
    )
    parser.add_argument(
        "--out", default=BENCH_OUT_PATH,
        help="where to write the JSON snapshot (default BENCH_transport.json)",
    )
    args = parser.parse_args(argv)

    measured = measure("quick" if args.quick else "full")
    report(measured)
    with open(args.out, "w") as handle:
        json.dump(measured, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    if args.update:
        update(measured)
    if args.check:
        return check(measured, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
