"""Section 7: five production-system architectures compared.

Paper numbers: DADO 175 (Rete) / 215 (TREAT), NON-VON 2000, Oflazer
4500-7000, PSM 9400 wme-changes/sec (PESA-1 unpublished).  The
qualitative findings: small numbers of powerful shared-memory
processors beat massive trees of weak ones; the state-storing strategy
barely matters on the trees.
"""

from conftest import SEED

from repro.analysis import render_table
from repro.machines import (
    ALL_MACHINES,
    DADO_RETE,
    DADO_TREAT,
    DADO_TREE,
    NONVON_TREE,
    comparison_table,
    measured_speed,
    simulate_tree,
    speed_ratios,
)
from repro.workloads import PAPER_SYSTEMS, generate_trace


def _tree_speed(config):
    speeds = [
        simulate_tree(generate_trace(profile, seed=SEED, firings=40), config)
        .wme_changes_per_second
        for profile in PAPER_SYSTEMS
    ]
    return sum(speeds) / len(speeds)


def _build():
    rows = comparison_table()
    measured = measured_speed(firings=60)
    trees = {
        "dado": _tree_speed(DADO_TREE),
        "nonvon": _tree_speed(NONVON_TREE),
    }
    return rows, measured, trees


def test_sec7_architecture_comparison(benchmark, report):
    rows, measured_psm, trees = benchmark.pedantic(_build, rounds=1, iterations=1)

    table_rows = [
        [r.machine, r.algorithm, r.processors, r.processor_mips, r.topology,
         round(r.model_speed), r.published_label]
        for r in rows
    ]
    table_rows.append(
        ["PSM (DES-measured)", "rete", 32, 2.0, "shared-bus",
         round(measured_psm), "9400"]
    )
    table_rows.append(
        ["DADO (tree-simulated)", "rete", 16_000, 0.5, "tree",
         round(trees["dado"]), "175-215"]
    )
    table_rows.append(
        ["NON-VON (tree-simulated)", "rete", 16_032, 3.0, "tree",
         round(trees["nonvon"]), "2000"]
    )

    report(
        "sec7_comparison",
        render_table(
            ["machine", "algorithm", "procs", "MIPS", "topology",
             "model wme/s", "published"],
            table_rows,
            title="Section 7: architecture comparison",
        ),
    )

    by_name = {r.machine: r.model_speed for r in rows}

    # Who wins: the paper's ordering.
    assert (
        by_name["PSM (this paper)"]
        > by_name["Oflazer's machine"]
        > by_name["NON-VON"]
        > by_name["DADO (TREAT)"]
        > by_name["DADO (Rete)"]
    )

    # By what factor: PSM beats the trees by well over an order of
    # magnitude, Oflazer by less than 2x.
    ratios = speed_ratios(rows)
    assert ratios["DADO (Rete)"] < 0.05
    assert ratios["NON-VON"] < 0.35
    assert 0.4 <= ratios["Oflazer's machine"] <= 0.9

    # TREAT vs Rete on DADO: within ~25% (the paper's "quite the same").
    assert DADO_TREAT.predicted_speed() / DADO_RETE.predicted_speed() < 1.3

    # Every model reproduces its machine's published prediction.
    for machine in ALL_MACHINES:
        error = machine.calibration_error()
        assert error is None or error < 0.05

    # The PSM's number is *measured* here, not quoted: the simulator
    # lands in the paper's neighbourhood.
    assert 6000 <= measured_psm <= 12000

    # The tree machines are measured too (partitioned tree simulation on
    # the same traces) and land near their cited predictions -- so the
    # 20-50x gap is no longer an appeal to authority.
    assert 150 <= trees["dado"] <= 260
    assert 1500 <= trees["nonvon"] <= 2500
    assert measured_psm > 20 * trees["dado"]
