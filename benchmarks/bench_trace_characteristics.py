"""Workload characteristics: the statistics the paper's argument rests on.

One table across the six calibrated systems with the quantities the
paper cites: serial cost per change (~c1 = 1800), two-input task sizes
(50-100 instructions), activations vs affected productions per change,
and the per-change intrinsic parallelism that bounds Figure 6-1.
"""

from conftest import FIRINGS, SEED

from repro.analysis import render_table
from repro.trace import summarize
from repro.workloads import PAPER_SYSTEMS, generate_trace


def _characteristics():
    rows = []
    for profile in PAPER_SYSTEMS:
        stats = summarize(generate_trace(profile, seed=SEED, firings=FIRINGS))
        rows.append([
            profile.name,
            round(stats.serial_cost / stats.changes, 0),
            round(stats.two_input_task_cost.mean, 1),
            round(stats.tasks_per_change.mean, 1),
            round(stats.affected_per_change.mean, 1),
            round(stats.change_parallelism.mean, 1),
            round(stats.change_parallelism.p90, 1),
        ])
    return rows


def test_trace_characteristics(benchmark, report):
    rows = benchmark.pedantic(_characteristics, rounds=1, iterations=1)

    report(
        "trace_characteristics",
        render_table(
            ["system", "serial instr/change", "2-input task mean",
             "tasks/change", "affected/change", "parallelism (mean)",
             "parallelism (p90)"],
            rows,
            title="Workload characteristics (paper: c1~1800 instr/change, "
                  "50-100 instr tasks, ~30 affected/change)",
        ),
    )

    serial = [row[1] for row in rows]
    assert 1000 <= sum(serial) / len(serial) <= 2800  # around c1

    task_means = [row[2] for row in rows]
    assert all(25 <= value <= 110 for value in task_means)

    affected = [row[4] for row in rows]
    assert 15 <= sum(affected) / len(affected) <= 40  # "about 30"

    # Activations per change track the affected count (Section 4): the
    # ratio stays small, not proportional to program size.
    for row in rows:
        assert row[3] <= 4.0 * row[4]

    # Intrinsic per-change parallelism is modest -- the paper's core
    # claim -- but above 1 (there is something to exploit).
    parallelism = [row[5] for row in rows]
    assert all(1.5 <= value <= 25 for value in parallelism)
