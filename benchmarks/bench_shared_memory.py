"""Shared-memory backend throughput gate: local thread shards vs. Rete.

The CI perf-smoke step for the ``local`` transport.  Each of the six
Section 6 system-class programs is recorded once (the replay protocol
from :mod:`repro.workloads.replay`: the op stream the engine actually
sent its matcher, split at conflict-set reads) and then replayed
against the serial interpreted Rete and against the shared-memory
backend at one and two thread shards.  Only the cycle loop is timed --
ruleset load and initial facts are preload, exactly the serve regime
the backend exists for -- and every replay's final conflict set must
match the serial run before its timing counts.

Samples are interleaved round-robin so host drift hits every backend in
the same round, and best-of is reported because this host's timing
noise is one-sided.  ``--check`` gates each program's two-shard speedup
over Rete against ``benchmarks/baselines/shared_memory.json`` with a
relative tolerance (default 25%, mirroring the transport and
compiled-kernel gates).

Usage::

    python benchmarks/bench_shared_memory.py                  # full report
    python benchmarks/bench_shared_memory.py --quick --check  # the CI gate
    python benchmarks/bench_shared_memory.py --update         # re-baseline
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(REPO, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO, "src"))

from repro.parallel import ParallelMatcher  # noqa: E402
from repro.rete import ReteNetwork  # noqa: E402
from repro.workloads.programs import SYSTEM_PROGRAMS  # noqa: E402
from repro.workloads.replay import record_program, replay_once  # noqa: E402

BASELINE_PATH = os.path.join(REPO, "benchmarks", "baselines", "shared_memory.json")
BENCH_OUT_PATH = os.path.join(REPO, "BENCH_shared_memory.json")
BASELINE_SCHEMA = "repro.shared-memory-bench/1"

#: label -> (matcher factory, needs close()).
BACKENDS = {
    "rete": (ReteNetwork, False),
    "local1": (lambda: ParallelMatcher(workers=1, transport="local"), True),
    "local2": (lambda: ParallelMatcher(workers=2, transport="local"), True),
}

PROFILES = {
    "quick": {"reps": 5},
    "full": {"reps": 9},
}


def _interleaved_replay(recording, reps: int) -> dict[str, float]:
    """Best replay seconds per backend, round-robin, identity-checked."""
    best = {label: float("inf") for label in BACKENDS}
    reference_keys = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            for label, (factory, needs_close) in BACKENDS.items():
                matcher = factory()
                try:
                    elapsed, keys = replay_once(recording, matcher)
                finally:
                    if needs_close:
                        matcher.close()
                if reference_keys is None:
                    reference_keys = keys
                assert keys == reference_keys, (
                    f"{recording.name}/{label}: conflict set diverged"
                )
                best[label] = min(best[label], elapsed)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def measure_program(name: str, module, reps: int) -> dict:
    recording = record_program(module)
    best = _interleaved_replay(recording, reps)
    row = {
        "cycles": recording.cycle_count,
        "ops": recording.op_count,
    }
    for label, seconds in best.items():
        row[label] = {
            "seconds": seconds,
            "cycles_per_sec": recording.cycle_count / seconds,
        }
    row["speedup_local1"] = best["rete"] / best["local1"]
    row["speedup_local2"] = best["rete"] / best["local2"]
    return row


def measure(profile_name: str) -> dict:
    reps = PROFILES[profile_name]["reps"]
    return {
        "schema": BASELINE_SCHEMA,
        "profile": profile_name,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "backends": sorted(BACKENDS),
        "programs": {
            name: measure_program(name, module, reps)
            for name, module in sorted(SYSTEM_PROGRAMS.items())
        },
    }


def report(measured: dict) -> None:
    print(
        f"profile: {measured['profile']}  "
        f"(replay protocol, backends: {', '.join(measured['backends'])})"
    )
    print("system-class programs (timed cycle loop, best-of interleaved):")
    for name, row in measured["programs"].items():
        print(
            f"  {name:<8} rete {row['rete']['seconds'] * 1e3:7.2f} ms   "
            f"local1 {row['speedup_local1']:5.2f}x   "
            f"local2 {row['speedup_local2']:5.2f}x   "
            f"({row['cycles']} cycles, {row['ops']} ops)"
        )


def _gate_rows(measured: dict) -> dict:
    """The dimensionless numbers the baseline commits and --check gates."""
    return {
        name: {"speedup_local2": row["speedup_local2"]}
        for name, row in measured["programs"].items()
    }


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def check(measured: dict, tolerance: float) -> int:
    profile_name = measured["profile"]
    baseline = load_baseline().get(profile_name)
    if baseline is None:
        print(
            f"error: no committed baseline for profile {profile_name!r}; "
            f"run with --update first",
            file=sys.stderr,
        )
        return 2
    failures = []
    for name, row in _gate_rows(measured).items():
        expected = baseline["programs"][name]["speedup_local2"]
        got = row["speedup_local2"]
        # Bigger-is-better ratio: fail only when the shared-memory
        # backend's advantage over Rete shrinks past the tolerance.
        drift = got / expected - 1.0
        status = "ok" if drift >= -tolerance else "REGRESSED"
        print(
            f"  {name}/speedup_local2 {got:5.2f}x vs baseline {expected:5.2f}x "
            f"({drift:+.1%}, tolerance {tolerance:.0%}): {status}"
        )
        if drift < -tolerance:
            failures.append(name)
    if failures:
        print(
            f"FAIL: shared-memory speedup regressed on {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print("PASS: shared-memory speedup within tolerance on all six programs")
    return 0


def update(measured: dict) -> None:
    try:
        baseline = load_baseline()
    except FileNotFoundError:
        baseline = {}
    baseline["schema"] = BASELINE_SCHEMA + "-baseline"
    baseline[measured["profile"]] = {"programs": _gate_rows(measured)}
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote baseline for {measured['profile']!r} to {BASELINE_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer interleaved rounds (the CI profile)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail if the local backend's speedup regressed vs baseline",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the committed baseline"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative speedup shrinkage (default 0.25)",
    )
    parser.add_argument(
        "--out", default=BENCH_OUT_PATH,
        help="where to write the JSON snapshot "
             "(default BENCH_shared_memory.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    measured = measure("quick" if args.quick else "full")
    measured["wall_seconds"] = time.perf_counter() - started
    report(measured)
    with open(args.out, "w") as handle:
        json.dump(measured, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    if args.update:
        update(measured)
    if args.check:
        return check(measured, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
