"""Where does this Python engine sit on the paper's 1986 ladder?

Section 2.2 ranks interpreters by wme-changes/sec on a 1-MIPS VAX:
Lisp ~8, Bliss ~40, compiled OPS83 ~200, optimised 400-800, with the
parallel target at 5000-10000.  This bench measures *this library's*
real wall-clock match throughput on the bundled programs -- an honest
placement of an interpreted-Python Rete among its 1986 ancestors, and a
regression tripwire for engine performance.
"""

import time

from repro.analysis import render_table
from repro.rete import ReteNetwork
from repro.workloads.programs import closure, hanoi


def _throughput(builder, cycles=None, indexed=False):
    system = builder(matcher=ReteNetwork(indexed=indexed))
    started = time.perf_counter()
    result = system.run(cycles)
    elapsed = time.perf_counter() - started
    changes = system.matcher.stats.total_changes
    return changes / elapsed if elapsed > 0 else 0.0, result.fired


def _measure():
    rows = []
    for label, builder, cycles in (
        ("hanoi-6", lambda **kw: hanoi.build(6, **kw), None),
        ("closure-12", lambda **kw: closure.build(closure.chain(12), **kw), 5000),
    ):
        plain, fired = _throughput(builder, cycles)
        indexed, _ = _throughput(builder, cycles, indexed=True)
        rows.append([label, fired, round(plain), round(indexed)])
    return rows


def test_python_engine_on_the_ladder(benchmark, report):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    ladder = [
        ["Lisp OPS5 (VAX-780)", "-", 8, "-"],
        ["Bliss OPS5 (VAX-780)", "-", 40, "-"],
        ["compiled OPS83 (VAX-780)", "-", 200, "-"],
        ["optimised OPS83 (VAX-780)", "-", 600, "-"],
        ["PSM target (32 x 2 MIPS)", "-", 9400, "-"],
    ]

    report(
        "python_ladder",
        render_table(
            ["implementation / workload", "firings", "wme-changes/s",
             "indexed wme-changes/s"],
            rows + ladder,
            title="This Python Rete on the paper's Section 2.2 ladder "
                  "(real wall clock, this host)",
        ),
    )

    # Engine health floor: interpreted Python on 2020s hardware should
    # comfortably beat the 1986 Lisp interpreter on a 1-MIPS VAX.  The
    # thresholds are generous: wall clock on a shared CI host is noisy.
    for row in rows:
        assert row[2] > 50
    # The join-heavy workload should not be badly hurt by hashed
    # memories (usually it gains; scheduling noise can eat the gain).
    closure_row = rows[1]
    assert closure_row[3] > closure_row[2] * 0.5
