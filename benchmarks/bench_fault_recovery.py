"""Recovery cost: checkpointed restart vs full op-stream replay.

Section 3.1 of the paper observes that the match state is a
deterministic function of the working-memory op stream, and quantifies
what that costs: re-deriving state from scratch (McDermott's c3
variant) runs ~20x slower than updating it incrementally (c1).  Crash
recovery faces exactly that trade -- a respawned shard can rebuild by
replaying the whole committed op journal (pure re-derivation), or
restore a checkpoint and replay only the tail since it was taken.

This benchmark measures both, two ways:

* **Replay curve**: real op journals of growing length (captured from
  closure runs through the supervised executor), timing full replay
  against checkpoint-plus-tail restore.  The ratio between them is the
  paper's state-saving ratio recast as a recovery-cost curve: it grows
  with journal length because replay is O(journal) while the
  checkpointed path is O(blob + tail).
* **Live recovery**: a real worker process crashed mid-run by the
  fault injector, once with checkpointing disabled and once enabled,
  reporting the supervisor's measured replay cost and replayed-op
  counts for each.
* **WAL group commit**: the durability-cost side of the same ledger.
  The session WAL fsyncs before every acknowledged op (strict) or
  batches all dirty journals behind a commit window; the same append
  burst is timed both ways, with the journal proven complete on
  reload.  Fewer disk barriers per op is what pays for the recovery
  guarantees above.
* **Fleet recovery**: the serve-side analogue.  A durable process
  fleet (real worker OS processes behind the journaling router) hosts
  several sessions, a worker is SIGKILLed, and the first post-kill op
  is timed -- that latency covers failure detection, fence + respawn,
  checkpoint restore + journal-tail replay for every session on the
  victim, and the op itself.  Swept over ``checkpoint_every`` to show
  the same trade at the session layer: rarer checkpoints mean longer
  replay tails and slower recovery.

The snapshot lands in ``BENCH_fault_recovery.json`` at the repo root,
next to the other wall-clock baselines.  Assertions are qualitative --
replay cost grows with journal length, the checkpointed path replays
(and eventually costs) less, and both rebuild bit-identical state.

Usage::

    python benchmarks/bench_fault_recovery.py          # full curve
    python benchmarks/bench_fault_recovery.py --smoke  # the CI profile

(The file matches the ``bench_*.py`` pytest glob but defines no tests;
it is a standalone script.)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(REPO, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO, "src"))

from repro.faults import CRASH, FaultPlan, FaultSpec  # noqa: E402
from repro.ops5 import ProductionSystem  # noqa: E402
from repro.parallel import (  # noqa: E402
    ParallelMatcher,
    SupervisorConfig,
    rebuild_state,
)
from repro.parallel.validate import run_recorded  # noqa: E402

SNAPSHOT = os.path.join(REPO, "BENCH_fault_recovery.json")

CLOSURE = """
(p base (parent ^from <x> ^to <y>) - (anc ^from <x> ^to <y>)
   --> (make anc ^from <x> ^to <y>))
(p step (anc ^from <x> ^to <y>) (parent ^from <y> ^to <z>)
        - (anc ^from <x> ^to <z>)
   --> (make anc ^from <x> ^to <z>))
"""

#: Chain lengths swept for the replay curve (journal length grows
#: quadratically with the chain: closure fires O(n^2) rules).
PROFILES = {
    "smoke": {
        "chains": [4, 6], "tail": 4, "reps": 3,
        "fleet_checkpoints": [0, 4], "fleet_rounds": 6,
        "fleet_sessions": 3, "wal_appends": 200,
    },
    "full": {
        "chains": [4, 6, 8, 10, 12], "tail": 8, "reps": 5,
        "fleet_checkpoints": [0, 1, 4, 16], "fleet_rounds": 12,
        "fleet_sessions": 4, "wal_appends": 500,
    },
}

#: Group-commit window measured against the strict policy.
WAL_COMMIT_WINDOW = 0.01

#: The paper's Section 3.1 state-saving ratio (c3 re-derivation vs c1
#: incremental), the number this curve is the recovery-side analogue of.
PAPER_REDERIVE_RATIO = 20.0


def journal_for(chain: int) -> list:
    """The real committed op journal of a closure run of *chain* edges.

    Captured from the supervised executor with checkpointing disabled,
    so the journal holds every op from program load to quiescence --
    exactly what a shard that never checkpointed would replay.
    """
    config = SupervisorConfig(checkpoint_every=None)
    with ParallelMatcher(workers=0, supervisor=config) as matcher:
        system = ProductionSystem(CLOSURE, matcher=matcher)
        for i in range(chain):
            system.add("parent", **{"from": f"n{i}", "to": f"n{i + 1}"})
        system.run()
        return list(matcher._supervisor.journals[0])


def _best(fn, reps: int) -> tuple[float, object]:
    """(best seconds, last result) over *reps* timed calls."""
    best = float("inf")
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def measure_replay_point(chain: int, tail: int, reps: int) -> dict:
    """Full replay vs checkpoint+tail restore for one journal length."""
    journal = journal_for(chain)
    tail = min(tail, len(journal) - 1)
    full_seconds, full_state = _best(
        lambda: rebuild_state(None, journal), reps
    )
    # The checkpoint a prudent shard would hold: everything but the tail.
    prefix_state = rebuild_state(None, journal[:-tail])
    checkpoint_seconds, blob = _best(prefix_state.checkpoint, reps)
    restore_seconds, restored = _best(
        lambda: rebuild_state(blob, journal[-tail:]), reps
    )
    # Both paths must land on the same state, or the timings are noise.
    assert restored.conflict_set.snapshot() == full_state.conflict_set.snapshot()
    assert set(restored.wmes) == set(full_state.wmes)
    return {
        "chain": chain,
        "journal_ops": len(journal),
        "tail_ops": tail,
        "checkpoint_bytes": len(blob),
        "checkpoint_write_seconds": checkpoint_seconds,
        "full_replay_seconds": full_seconds,
        "checkpointed_restore_seconds": restore_seconds,
        "replay_over_restore": full_seconds / restore_seconds,
    }


def measure_live(checkpoint_every) -> dict:
    """One real crash, recovered live; the supervisor's own timings."""
    chain = [("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(6)]
    plan = FaultPlan([FaultSpec(kind=CRASH, index=0, at=12)])
    config = SupervisorConfig(
        collect_deadline=10.0, checkpoint_every=checkpoint_every
    )
    with ParallelMatcher(workers=1, fault_plan=plan, supervisor=config) as matcher:
        record = run_recorded(CLOSURE, chain, matcher)
        events = matcher.fault_events()
    assert len(events) == 1, events
    event = events[0]
    return {
        "checkpoint_every": checkpoint_every,
        "fired": len(record.fired),
        **event.snapshot(),
    }


def measure_group_commit(appends: int, reps: int) -> list[dict]:
    """Strict per-append fsync vs. a group-commit window, same burst.

    Times only the append loop (the interval a client's acknowledged op
    waits on) and proves the journal complete on reload afterwards --
    the throughput gain must not come out of the recovery guarantee.
    """
    import shutil
    import tempfile

    from repro.serve.durability import DurabilityStore

    rows = []
    for mode, kwargs in (
        ("strict", {"fsync": True}),
        ("group-commit", {"fsync": True, "commit_window": WAL_COMMIT_WINDOW}),
    ):
        best = float("inf")
        stats = None
        for _ in range(reps):
            root = tempfile.mkdtemp(prefix="repro-walgc-")
            try:
                store = DurabilityStore(root, **kwargs)
                store.register("s", {"program": CLOSURE})
                started = time.perf_counter()
                for seq in range(1, appends + 1):
                    store.append("s", seq, {"op": "run", "seq": seq})
                elapsed = time.perf_counter() - started
                store.close()  # runs the final barrier
                stats = store.stats()
                reloaded = DurabilityStore(root)
                bundle = reloaded.load("s")
                reloaded.close()
                assert bundle is not None and bundle.last_seq == appends
                best = min(best, elapsed)
            finally:
                shutil.rmtree(root, ignore_errors=True)
        rows.append(
            {
                "mode": mode,
                "commit_window": kwargs.get("commit_window", 0.0),
                "appends": appends,
                "seconds": best,
                "appends_per_sec": appends / best,
                "fsyncs": stats["fsyncs"],
            }
        )
    return rows


def measure_fleet_point(
    checkpoint_every: int, rounds: int, sessions: int
) -> dict:
    """SIGKILL a real worker under session load; time the recovery.

    The timed interval is one client call on a victim-hosted session
    issued right after the kill: it spans failure detection (the call
    itself hits the dead socket), fence + respawn of the worker
    process, restore of *every* session placed there, and the op's own
    execution.  ``replayed_ops`` counts the journal-tail entries the
    router re-applied across those sessions.
    """
    from repro.serve import ProcessRouterFleet, RuleClient

    with ProcessRouterFleet(
        workers=2,
        checkpoint_every=checkpoint_every,
        heartbeat_interval=None,  # recovery is driven by the failed call
        restart_backoff=0.05,
    ) as fleet:
        with RuleClient(fleet.address) as client:
            for index in range(sessions):
                client.call(
                    "create_session",
                    program=CLOSURE,
                    name=f"fb{index}",
                    tenant=f"tenant{index % 2}",
                )
            for round_no in range(rounds):
                for index in range(sessions):
                    client.call(
                        "assert", session=f"fb{index}", wme=[
                            "parent",
                            {"from": f"fb{index}_n{round_no}",
                             "to": f"fb{index}_n{round_no + 1}"},
                        ],
                    )
                    client.call("run", session=f"fb{index}")
            # Checkpoints are taken asynchronously; let them land so the
            # measured replay tail reflects the configured cadence.
            time.sleep(0.3)
            stats = client.call("stats")
            placements = {
                name: row["worker"]
                for name, row in stats["sessions"].items()
            }
            loads: dict[int, int] = {}
            for worker in placements.values():
                loads[worker] = loads.get(worker, 0) + 1
            victim = max(loads, key=lambda w: (loads[w], -w))
            probe = next(
                name for name, worker in placements.items()
                if worker == victim
            )
            journal_bytes = stats["router"]["durability"]["bytes_appended"]
            fleet.kill_worker(victim)
            started = time.perf_counter()
            reply = client.call("run", session=probe)
            latency = time.perf_counter() - started
            assert reply["ok"], reply
            after = client.call("stats")["router"]
            replayed = sum(
                event.get("replayed_ops", 0)
                for event in after["events"]
                if event.get("type") == "recovered"
            )
            return {
                "checkpoint_every": checkpoint_every,
                "sessions_on_victim": loads[victim],
                "rounds": rounds,
                "journal_bytes": journal_bytes,
                "checkpoints_taken": after["durability"]["checkpoints"],
                "replayed_ops": replayed,
                "recovered_sessions": len(after["recovered_sessions"]),
                "lost_sessions": len(after["lost_sessions"]),
                "recovery_seconds": latency,
            }


def render(
    rows: list[dict], live: list[dict], wal: list[dict], fleet: list[dict]
) -> str:
    header = (
        f"{'chain':>5} {'journal':>7} {'ckpt-KiB':>8} {'replay-ms':>9} "
        f"{'restore-ms':>10} {'ratio':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['chain']:>5} {row['journal_ops']:>7} "
            f"{row['checkpoint_bytes'] / 1024:>8.1f} "
            f"{row['full_replay_seconds'] * 1e3:>9.2f} "
            f"{row['checkpointed_restore_seconds'] * 1e3:>10.2f} "
            f"{row['replay_over_restore']:>6.1f}"
        )
    lines.append("")
    lines.append("live crash recovery (1 worker, crash at batch 12):")
    for row in live:
        mode = (
            f"checkpoint_every={row['checkpoint_every']}"
            if row["checkpoint_every"]
            else "no checkpoints"
        )
        lines.append(
            f"  {mode:<20} replayed {row['replayed_ops']:>4} ops "
            f"(checkpoint used: {str(row['used_checkpoint']).lower()}) "
            f"in {row['replay_seconds'] * 1e3:.2f} ms, "
            f"total {row['total_seconds'] * 1e3:.2f} ms"
        )
    lines.append("")
    lines.append("session WAL append cost (fsync policy, same burst):")
    for row in wal:
        window = (
            f"window={row['commit_window'] * 1e3:.0f}ms"
            if row["commit_window"]
            else "every append"
        )
        lines.append(
            f"  {row['mode']:<13} ({window:<14}) "
            f"{row['appends']} appends in {row['seconds'] * 1e3:7.2f} ms "
            f"({row['appends_per_sec']:>8.0f}/s, {row['fsyncs']} fsyncs)"
        )
    lines.append("")
    lines.append(
        "fleet recovery (2 process workers, SIGKILL the loaded one, "
        "time the next op):"
    )
    for row in fleet:
        mode = (
            f"checkpoint_every={row['checkpoint_every']}"
            if row["checkpoint_every"]
            else "no checkpoints"
        )
        lines.append(
            f"  {mode:<20} {row['sessions_on_victim']} sessions on victim, "
            f"replayed {row['replayed_ops']:>4} ops, "
            f"recovered in {row['recovery_seconds'] * 1e3:.1f} ms "
            f"(lost: {row['lost_sessions']})"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="short curve / few reps (the CI profile)",
    )
    parser.add_argument(
        "--out", default=SNAPSHOT, help="where to write the JSON snapshot"
    )
    args = parser.parse_args(argv)
    profile_name = "smoke" if args.smoke else "full"
    profile = PROFILES[profile_name]

    rows = [
        measure_replay_point(chain, profile["tail"], profile["reps"])
        for chain in profile["chains"]
    ]
    live = [measure_live(None), measure_live(4)]
    wal = measure_group_commit(profile["wal_appends"], profile["reps"])
    fleet = [
        measure_fleet_point(
            every, profile["fleet_rounds"], profile["fleet_sessions"]
        )
        for every in profile["fleet_checkpoints"]
    ]
    print(render(rows, live, wal, fleet))

    # Qualitative shape, not absolute speed: replay cost grows with the
    # journal, and the checkpointed path replays strictly less live.
    assert rows[-1]["full_replay_seconds"] > rows[0]["full_replay_seconds"]
    assert rows[-1]["replay_over_restore"] > 1.0
    assert not live[0]["used_checkpoint"] and live[1]["used_checkpoint"]
    assert live[1]["replayed_ops"] < live[0]["replayed_ops"]
    # Group commit must cut disk barriers without losing a single
    # acknowledged op (completeness is asserted inside the measurement).
    strict_wal, grouped_wal = wal
    assert grouped_wal["fsyncs"] < strict_wal["fsyncs"]
    assert grouped_wal["seconds"] < strict_wal["seconds"]
    # The fleet never loses a session, and checkpoints shorten the
    # replay tail just as they do for shards (fleet[0] never
    # checkpoints; every later point does).
    assert all(row["lost_sessions"] == 0 for row in fleet)
    assert all(
        row["replayed_ops"] < fleet[0]["replayed_ops"] for row in fleet[1:]
    )

    with open(args.out, "w") as handle:
        json.dump(
            {
                "schema": "repro.bench-fault-recovery/1",
                "python": platform.python_version(),
                "profile": profile_name,
                "paper": {
                    "section": "3.1",
                    "note": (
                        "re-deriving match state from scratch (c3) vs "
                        "incremental update (c1); recovery replay is the "
                        "same trade, bounded by checkpoints"
                    ),
                    "rederive_ratio": PAPER_REDERIVE_RATIO,
                },
                "replay_curve": rows,
                "live_recovery": live,
                "wal_group_commit": wal,
                "fleet_recovery": fleet,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
