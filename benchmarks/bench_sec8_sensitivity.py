"""Section 8: sensitivity of the speed-up ceiling to workload shifts.

The paper argues its ~10x ceiling is *stable* because the three factors
that set it cannot move much:

1. working-memory changes per cycle (more changes would erode the
   rule-based programming style),
2. affected productions per change (knowledge diversity keeps it small
   regardless of rule count),
3. the variance of per-production processing cost (divisible only until
   scheduling overhead bites).

This bench perturbs each factor on the synthetic generator and
re-measures the 32-processor true speed-up.  The paper's prediction:
speed-ups improve somewhat with each relaxation but remain bounded --
an order of magnitude, not the thousand-fold the naive "one processor
per rule" intuition suggests.
"""

from dataclasses import replace

from conftest import FIRINGS, SEED

from repro.analysis import render_table
from repro.psim import MachineConfig, simulate
from repro.workloads import generate_trace, profile_named

BASE = profile_named("vt")
CONFIG = MachineConfig(processors=64)  # generous, to expose the ceiling


def _speedup(profile):
    trace = generate_trace(profile, seed=SEED, firings=FIRINGS)
    return simulate(trace, CONFIG).true_speedup


def _sweep():
    rows = []
    for factor in (0.5, 1.0, 2.0, 4.0):
        profile = replace(
            BASE,
            name=f"{BASE.name}-chg{factor}",
            changes_per_firing=max(1.0, BASE.changes_per_firing * factor),
        )
        rows.append(["changes/cycle", f"x{factor}", round(_speedup(profile), 2)])
    for factor in (0.5, 1.0, 2.0, 4.0):
        profile = replace(
            BASE,
            name=f"{BASE.name}-aff{factor}",
            affected_mean=max(2.0, BASE.affected_mean * factor),
        )
        rows.append(["affected/change", f"x{factor}", round(_speedup(profile), 2)])
    for bias in (0.8, 0.5, 0.38, 0.2, 0.05):
        profile = replace(
            BASE, name=f"{BASE.name}-bias{bias}", heavy_serial_bias=bias
        )
        rows.append(["serial bias (variance)", f"{bias}", round(_speedup(profile), 2)])
    return rows


def test_sec8_sensitivity(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    report(
        "sec8_sensitivity",
        render_table(
            ["factor perturbed", "setting", "true speed-up @64 procs"],
            rows,
            title="Section 8: stability of the speed-up ceiling "
                  "(base system: vt; paper: <10-fold under realistic "
                  "workload shifts)",
        ),
    )

    by_factor: dict[str, list[float]] = {}
    for factor, _, speedup in rows:
        by_factor.setdefault(factor, []).append(speedup)

    # Each relaxation helps monotonically (more parallel slack)...
    for factor in ("changes/cycle", "affected/change"):
        speedups = by_factor[factor]
        for slower, faster in zip(speedups, speedups[1:]):
            assert faster >= slower * 0.95
    # serial bias: lower bias = less irreducible serial work = faster.
    bias_speedups = by_factor["serial bias (variance)"]
    assert bias_speedups[0] < bias_speedups[-1]

    # ... but the ceiling holds: at the paper-realistic settings (the
    # x1.0 rows and measured bias), speed-up stays under ~10-fold, and
    # even 4x relaxations of single factors stay within ~2.5x of base.
    base = by_factor["changes/cycle"][1]  # the x1.0 row
    assert base < 10.5
    for factor in ("changes/cycle", "affected/change"):
        assert by_factor[factor][-1] <= 2.5 * base + 1.0
