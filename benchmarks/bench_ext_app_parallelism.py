"""Extension: application-level parallelism (Section 8).

The paper's one endorsed way around the turnover ceiling: "if a system
has multiple threads, each one could be performing only the usual small
number of working memory changes per cycle, but ... the total number of
changes per cycle would be several times higher.  Thus application-
level parallelism will certainly help when it can be used."

Modelled with :func:`repro.trace.merge_traces`: k independent rule
threads synchronise on the recognize--act barrier; each cycle carries
all k threads' changes.  The bench sweeps the thread count on a
64-processor PSM.
"""

from conftest import FIRINGS

from repro.analysis import render_table
from repro.psim import MachineConfig, simulate
from repro.trace import merge_traces
from repro.workloads import generate_trace, profile_named


def _sweep():
    profile = profile_named("ep-soar")
    threads = [
        generate_trace(profile, seed=seed, firings=FIRINGS // 2)
        for seed in (11, 22, 33, 44, 55, 66, 77, 88)
    ]
    config = MachineConfig(processors=64)
    rows = []
    for count in (1, 2, 4, 8):
        trace = (
            threads[0]
            if count == 1
            else merge_traces(threads[:count], name=f"ep-soar x{count}")
        )
        result = simulate(trace, config)
        rows.append([
            count,
            round(trace.mean_changes_per_firing(), 2),
            round(result.concurrency, 2),
            round(result.true_speedup, 2),
            round(result.wme_changes_per_second),
        ])
    return rows


def test_ext_application_parallelism(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    report(
        "ext_app_parallelism",
        render_table(
            ["threads", "changes/cycle", "concurrency", "true speed-up",
             "wme-changes/s"],
            rows,
            title="Section 8 extension: application-level parallelism on a "
                  "64-processor PSM (more threads -> more changes per "
                  "cycle -> more exploitable parallelism)",
        ),
    )

    speedups = [row[3] for row in rows]
    throughputs = [row[4] for row in rows]

    # Every added thread raises both metrics...
    assert speedups == sorted(speedups)
    assert throughputs == sorted(throughputs)
    # ... substantially: 4 threads at least ~2x one thread's speed-up.
    assert speedups[2] > 1.8 * speedups[0]
    # ... but with diminishing returns per thread as the 64 processors
    # and the bus saturate.
    gain_2 = speedups[1] / speedups[0]
    gain_8 = speedups[3] / speedups[2]
    assert gain_8 < gain_2
