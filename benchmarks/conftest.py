"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
computes the series, prints it in the paper's shape (run pytest with
``-s`` to see it), saves it under ``benchmarks/out/``, and asserts the
qualitative result -- who wins, by roughly what factor, where the
crossovers fall.  Absolute throughputs depend on the calibrated cost
model and are asserted as bands, not points.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Processor counts swept in the figures (the paper's x-axis reaches 72;
#: curves are flat past 64).
PROCESSOR_COUNTS = [1, 2, 4, 8, 16, 32, 48, 64]

#: Deterministic seed and run length for the calibrated workloads.
SEED = 42
FIRINGS = 60


@pytest.fixture(scope="session")
def report():
    """Print a rendered table and persist it under benchmarks/out/."""

    def _report(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _report


@pytest.fixture(scope="session")
def save_csv():
    """Persist a figure's series as CSV under benchmarks/out/ (for
    replotting outside this harness)."""

    def _save(name: str, x_label, x_values, series: dict) -> None:
        from repro.analysis import render_csv

        OUT_DIR.mkdir(exist_ok=True)
        headers = [x_label] + list(series)
        rows = [
            [x] + [series[curve][i] for curve in series]
            for i, x in enumerate(x_values)
        ]
        (OUT_DIR / f"{name}.csv").write_text(render_csv(headers, rows) + "\n")

    return _save


@pytest.fixture(scope="session")
def paper_traces():
    """The six calibrated system traces (shared across benches)."""
    from repro.workloads import PAPER_SYSTEMS, generate_trace

    return {
        profile.name: generate_trace(profile, seed=SEED, firings=FIRINGS)
        for profile in PAPER_SYSTEMS
    }
