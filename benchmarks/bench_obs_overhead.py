"""Overhead guard for the observability layer (``repro.obs``).

The recorder is threaded through the engine's hot loop, every Rete
activation, and the parallel flush barrier.  Its design contract is
that the *disabled* path costs one attribute check -- this benchmark
holds the code to that contract, in two ways:

* **Report**: times the ``bench_matchers`` workloads (hanoi, closure)
  with observability disabled (the default ``NULL_RECORDER`` path) and
  enabled (a live :class:`~repro.obs.Recorder` plus
  :class:`~repro.rete.RecorderListener`), printing the enabled-path
  overhead for information.
* **Check** (``--check``): compares the disabled-path cost against the
  committed baseline in ``benchmarks/baselines/obs_overhead.json`` and
  fails (exit 1) when it regressed by more than ``--tolerance``
  (default 5%).  CI runs this in ``--smoke`` mode on every push.

Machine independence: raw wall-clock is useless as a committed number,
so every measurement is normalised by a calibration loop timed the
same way, same interpreter, same moment.  The calibration load is
shaped like the engine's hot loop -- dict probes, attribute access,
small allocations -- because a pure arithmetic spin responds to CPU
frequency/cache state differently from the dict-heavy engine and lets
machine drift masquerade as a code regression.  The stored values are
dimensionless work ratios that move only when the *relative* cost of
the measured path moves.

Usage::

    python benchmarks/bench_obs_overhead.py                 # report (full)
    python benchmarks/bench_obs_overhead.py --smoke --check # the CI gate
    python benchmarks/bench_obs_overhead.py --update        # re-baseline
    python benchmarks/bench_obs_overhead.py --smoke --update

(The file matches the ``bench_*.py`` pytest glob but defines no tests;
it is a standalone script.)
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(REPO, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO, "src"))

from repro.obs import Recorder  # noqa: E402
from repro.rete import RecorderListener, ReteNetwork  # noqa: E402
from repro.workloads.programs import closure, hanoi  # noqa: E402

BASELINE_PATH = os.path.join(REPO, "benchmarks", "baselines", "obs_overhead.json")
BASELINE_SCHEMA = "repro.obs-overhead/1"

#: Workload sizes per profile: (hanoi disks, closure chain, closure cycles, reps).
PROFILES = {
    "smoke": {"disks": 3, "chain": 4, "cycles": 2000, "reps": 9, "inner": 4},
    "full": {"disks": 4, "chain": 7, "cycles": 5000, "reps": 9, "inner": 2},
}


class _CalToken:
    __slots__ = ("items", "count")

    def __init__(self) -> None:
        self.items = {}
        self.count = 0


def _spin() -> int:
    """The calibration load, shaped like the engine's hot loop.

    Tuple-keyed dict inserts/probes/pops, ``__slots__`` attribute
    access, and small allocations -- the instruction mix the matcher
    workloads actually execute.  An arithmetic-only spin tracks CPU
    frequency, not memory behaviour, so under frequency scaling or a
    co-tenant the off/cal ratio drifted far more than any real code
    change.
    """
    token = _CalToken()
    store = {}
    total = 0
    for i in range(30_000):
        key = ("p", i % 61)
        store[key] = i
        if key in store:
            total += store[key]
        token.items[i % 53] = i
        token.count += 1
        if i % 7 == 0:
            store.pop(key, None)
    return total


def _time_sample(fn, inner: int = 1) -> float:
    """Seconds per call over *inner* back-to-back calls.

    Batching widens each sample past timer/jitter granularity: a ~1 ms
    workload timed alone swings >10% run to run; four in a row do not.
    """
    started = time.perf_counter()
    for _ in range(inner):
        fn()
    return (time.perf_counter() - started) / inner


def measure_workload(runner, reps: int, inner: int) -> dict:
    """Interleaved rounds of (calibration, off, on); minimum of each.

    Interleaving matters: the calibration spin normalises away machine
    speed, but only if it samples the *same* conditions (CPU frequency,
    competing load) as the workload it normalises.  Timing all
    calibration reps up front lets a frequency shift between phases
    masquerade as a code regression.  The collector is paused during the
    rounds so GC scheduling noise cannot land on one mode only.
    """
    for _ in range(2):  # warm caches/allocator outside the timed rounds
        for mode in ("off", "on"):
            runner(mode)
        _spin()
    cal = off = on = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            cal = min(cal, _time_sample(_spin))
            off = min(off, _time_sample(lambda: runner("off"), inner))
            on = min(on, _time_sample(lambda: runner("on"), inner))
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "calibration_seconds": cal,
        "off_seconds": off,
        "on_seconds": on,
        "off_ratio": off / cal,
        "enabled_overhead": (on - off) / off,
    }


def _recorder_for(mode: str):
    if mode == "off":
        return None, None
    recorder = Recorder()
    return recorder, RecorderListener(recorder)


def run_hanoi(disks: int, mode: str) -> None:
    recorder, listener = _recorder_for(mode)
    result = hanoi.run(
        disks,
        matcher=ReteNetwork(listener=listener),
        recorder=recorder,
    )
    assert result.halted


def run_closure(chain: int, cycles: int, mode: str) -> None:
    recorder, listener = _recorder_for(mode)
    system = closure.build(
        closure.chain(chain),
        matcher=ReteNetwork(listener=listener),
        recorder=recorder,
    )
    system.run(cycles)


def measure(profile: dict) -> dict:
    """All measurements for one profile: calibration-normalised ratios."""
    reps = profile["reps"]
    rows = {}
    for name, runner in (
        ("hanoi", lambda mode: run_hanoi(profile["disks"], mode)),
        (
            "closure",
            lambda mode: run_closure(profile["chain"], profile["cycles"], mode),
        ),
    ):
        rows[name] = measure_workload(runner, reps, profile["inner"])
    return {"workloads": rows}


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def report(profile_name: str, measured: dict) -> None:
    print(f"profile: {profile_name}")
    for name, row in measured["workloads"].items():
        print(
            f"  {name:<8} off {row['off_seconds'] * 1e3:8.2f} ms "
            f"(ratio {row['off_ratio']:6.2f} over "
            f"{row['calibration_seconds'] * 1e3:.2f} ms calibration)   "
            f"on {row['on_seconds'] * 1e3:8.2f} ms "
            f"(+{row['enabled_overhead']:.1%} when enabled)"
        )


def check(profile_name: str, measured: dict, tolerance: float) -> int:
    """Compare disabled-path ratios against the committed baseline."""
    baseline = load_baseline().get(profile_name)
    if baseline is None:
        print(f"error: no committed baseline for profile {profile_name!r}; "
              f"run with --update first", file=sys.stderr)
        return 2
    failures = []
    for name, row in measured["workloads"].items():
        expected = baseline["workloads"][name]["off_ratio"]
        got = row["off_ratio"]
        drift = got / expected - 1.0
        status = "ok" if drift <= tolerance else "REGRESSED"
        print(
            f"  {name:<8} disabled-path ratio {got:6.2f} vs baseline "
            f"{expected:6.2f} ({drift:+.1%}, tolerance {tolerance:.0%}): {status}"
        )
        if drift > tolerance:
            failures.append(name)
    if failures:
        print(
            f"FAIL: disabled-path overhead regressed on {', '.join(failures)} "
            f"-- the no-op recorder path must stay near-free",
            file=sys.stderr,
        )
        return 1
    print("PASS: disabled-path cost within tolerance of baseline")
    return 0


def update(profile_name: str, measured: dict) -> None:
    try:
        baseline = load_baseline()
    except FileNotFoundError:
        baseline = {"schema": BASELINE_SCHEMA}
    baseline["schema"] = BASELINE_SCHEMA
    baseline[profile_name] = measured
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote baseline for {profile_name!r} to {BASELINE_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workloads / few reps (the CI profile)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail if the disabled path regressed vs the committed baseline",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the committed baseline"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed relative regression for --check (default 0.05)",
    )
    args = parser.parse_args(argv)

    profile_name = "smoke" if args.smoke else "full"
    measured = measure(PROFILES[profile_name])
    report(profile_name, measured)
    if args.update:
        update(profile_name, measured)
    if args.check:
        return check(profile_name, measured, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
