"""Ablation: hashed join memories vs linear memory scans.

The PSM project's implementation studies looked at memory-node
organisation; hashing the memories by the equality-join values turns
each two-input activation from a scan of the opposite memory into a
bucket probe.  Semantics are untouched (differentially tested); the
match effort drops in proportion to memory size over bucket size.

Measured here as comparison counts on real programs at two working-set
scales, demonstrating that indexing matters more as memories grow --
the reason serious Rete implementations (OPS83 onward) index.
"""

from repro.analysis import render_table
from repro.ops5 import ProductionSystem
from repro.rete import ReteNetwork
from repro.workloads.programs import closure, hanoi

_JOIN_SRC = "(p find (item ^v <x>) (slot ^v <x>) --> (halt))"


def _join_workload(size, indexed):
    net = ReteNetwork(indexed=indexed)
    system = ProductionSystem(_JOIN_SRC, matcher=net)
    for v in range(size):
        system.add("item", v=v)
        system.add("slot", v=v)
    return net.stats.total_comparisons


def _program_workload(builder, indexed, cycles):
    system = builder(matcher=ReteNetwork(indexed=indexed))
    system.run(cycles)
    return system.matcher.stats.total_comparisons


def _measure():
    rows = []
    for size in (20, 80, 320):
        scan = _join_workload(size, indexed=False)
        probe = _join_workload(size, indexed=True)
        rows.append([f"equality join, {size} WMEs/side", scan, probe,
                     round(scan / probe, 1)])
    for name, builder, cycles in (
        ("hanoi-5", lambda **kw: hanoi.build(5, **kw), None),
        ("closure-10", lambda **kw: closure.build(closure.chain(10), **kw), 5000),
    ):
        scan = _program_workload(builder, False, cycles)
        probe = _program_workload(builder, True, cycles)
        rows.append([name, scan, probe, round(scan / probe, 1)])
    return rows


def test_abl_memory_indexing(benchmark, report):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    report(
        "abl_indexing",
        render_table(
            ["workload", "scan comparisons", "indexed comparisons", "reduction"],
            rows,
            title="Ablation: hashed join memories vs linear scans "
                  "(same conflict sets; tested differentially)",
        ),
    )

    # Indexing wins on every workload...
    assert all(row[3] >= 1.0 for row in rows)
    # ... and the win grows with memory size (the scan is O(memory)).
    sizes = [row[3] for row in rows[:3]]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 10
