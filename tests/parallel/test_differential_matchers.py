"""Property-based differential testing across all five matcher backends.

Hypothesis generates random OPS5 programs (joins, predicates, negations)
and random working-memory scripts; naive, TREAT, Rete, indexed Rete,
Oflazer, and the live parallel executor must hold identical conflict
sets after every change, and -- for programs with right-hand sides --
produce identical firing sequences, outputs, and final memories.

The parallel matcher is one shared process pool for the whole module
(`clear()` between examples), so a hundred generated programs cost two
forks, not two hundred.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.naive import NaiveMatcher
from repro.oflazer import CombinationMatcher
from repro.ops5.actions import Constant, Make, Remove, VariableRef
from repro.ops5.condition import (
    ConditionElement,
    ConstantTest,
    Predicate,
    PredicateTest,
    Test,
    VariableTest,
)
from repro.ops5.production import Production
from repro.ops5.wme import WME, WorkingMemory
from repro.parallel import ParallelMatcher, compare_backends
from repro.rete import ReteNetwork
from repro.treat import TreatMatcher

CLASSES = ["c1", "c2", "c3"]
ATTRIBUTES = ["a", "b"]
SYMBOLS = ["red", "blue"]
NUMBERS = [0, 1, 2]
VARIABLES = ["x", "y"]

values = st.sampled_from(SYMBOLS + NUMBERS)


@pytest.fixture(scope="module")
def pool():
    """One warm two-worker pool shared by every generated example."""
    with ParallelMatcher(workers=2) as matcher:
        yield matcher


@st.composite
def condition_elements(draw, index: int, bound: set[str]) -> ConditionElement:
    """One CE; predicates only reference already-bound variables."""
    cls = draw(st.sampled_from(CLASSES))
    negated = index > 0 and draw(st.booleans())
    tests: dict[str, Test] = {}
    local_bound: set[str] = set()
    for attribute in draw(
        st.lists(st.sampled_from(ATTRIBUTES), unique=True, min_size=1)
    ):
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 0:
            tests[attribute] = ConstantTest(draw(values))
        elif choice == 1:
            name = draw(st.sampled_from(VARIABLES))
            tests[attribute] = VariableTest(name)
            local_bound.add(name)
        elif choice == 2:
            tests[attribute] = PredicateTest(
                draw(st.sampled_from([Predicate.NE, Predicate.GT, Predicate.LE])),
                ConstantTest(draw(st.sampled_from(NUMBERS))),
            )
        else:
            usable = sorted(bound)
            if usable:
                tests[attribute] = PredicateTest(
                    draw(st.sampled_from([Predicate.NE, Predicate.LT])),
                    VariableTest(draw(st.sampled_from(usable))),
                )
            else:
                tests[attribute] = ConstantTest(draw(values))
    if not negated:
        bound.update(local_bound)
    return ConditionElement(cls, tests, negated)


@st.composite
def actions_for(draw, name: str, conditions, bound: set[str]):
    """A small RHS: makes (constants or bound variables) and removes.

    Made WMEs may re-enter the matched classes, so runs can cascade;
    the drivers cap cycles, and every backend hits the same cap.
    """
    acts = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        cls = draw(st.sampled_from(CLASSES + ["log"]))
        attrs = []
        for attribute in draw(st.lists(st.sampled_from(ATTRIBUTES), unique=True)):
            if bound and draw(st.booleans()):
                attrs.append((attribute, VariableRef(draw(st.sampled_from(sorted(bound))))))
            else:
                attrs.append((attribute, Constant(draw(values))))
        acts.append(Make(cls, tuple(attrs)))
    # Optionally retract the WME matching the first CE (always positive).
    if draw(st.booleans()):
        acts.append(Remove(1))
    return tuple(acts)


@st.composite
def productions(draw, name: str, with_actions: bool) -> Production:
    ce_count = draw(st.integers(min_value=1, max_value=3))
    bound: set[str] = set()
    conditions = [draw(condition_elements(i, bound)) for i in range(ce_count)]
    if all(ce.negated for ce in conditions):
        conditions[0] = ConditionElement(
            conditions[0].cls, conditions[0].tests, False
        )
    acts = draw(actions_for(name, conditions, bound)) if with_actions else ()
    return Production(name, conditions, acts)


@st.composite
def programs(draw, with_actions: bool = False) -> list[Production]:
    count = draw(st.integers(min_value=1, max_value=4))
    return [draw(productions(f"p{i}", with_actions)) for i in range(count)]


@st.composite
def wme_specs(draw):
    cls = draw(st.sampled_from(CLASSES))
    attrs = {
        attribute: draw(values)
        for attribute in draw(st.lists(st.sampled_from(ATTRIBUTES), unique=True))
    }
    return (cls, attrs)


@st.composite
def change_scripts(draw):
    """A list of operations: ("add", spec) or ("remove", index-of-live)."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        if live and draw(st.booleans()) and draw(st.booleans()):
            ops.append(("remove", draw(st.integers(min_value=0, max_value=live - 1))))
            live -= 1
        else:
            ops.append(("add", draw(wme_specs())))
            live += 1
    return ops


def _drive(matcher, program, script):
    """Apply the script; return conflict-set snapshots after each op."""
    for production in program:
        matcher.add_production(production)
    memory = WorkingMemory()
    live: list[WME] = []
    snapshots = []
    for op in script:
        if op[0] == "add":
            cls, attrs = op[1]
            wme = memory.add(WME(cls, attrs))
            matcher.add_wme(wme)
            live.append(wme)
        else:
            wme = live.pop(op[1])
            memory.remove(wme)
            matcher.remove_wme(wme)
        snapshots.append(matcher.conflict_set.snapshot())
    return snapshots


@settings(max_examples=100, deadline=None, database=None)
@given(program=programs(), script=change_scripts())
def test_all_matchers_agree_on_conflict_sets(pool, program, script):
    """Five-way agreement after every single working-memory change."""
    pool.clear()
    reference = _drive(NaiveMatcher(), program, script)
    assert _drive(TreatMatcher(), program, script) == reference
    assert _drive(ReteNetwork(), program, script) == reference
    assert _drive(ReteNetwork(indexed=True), program, script) == reference
    assert _drive(CombinationMatcher(), program, script) == reference
    assert _drive(pool, program, script) == reference


@settings(max_examples=100, deadline=None, database=None)
@given(program=programs(with_actions=True), setup=st.lists(wme_specs(), min_size=1, max_size=6))
def test_all_matchers_agree_on_firing_sequences(pool, program, setup):
    """Full recognize--act runs: identical firings, output, final WM."""
    pool.clear()
    report = compare_backends(
        program,
        setup,
        {
            "naive": NaiveMatcher,
            "treat": TreatMatcher,
            "rete": ReteNetwork,
            "oflazer": CombinationMatcher,
            "parallel": lambda: pool,
        },
        max_cycles=40,
    )
    assert report.agree, report.divergences()
