"""Properties of the symbol intern table and the packed value codec.

The transport's compression rests on two invariants: (1) the intern
table is a bijection between texts and dense ids, and a worker mirror
fed only deltas agrees with the coordinator's table id-for-id; (2) any
legal OPS5 value -- symbol, int (any magnitude), float -- survives the
packed batch/reply encoding bit-for-bit.  Hypothesis drives both, plus
the checkpoint path: an indexed Rete network whose join buckets key on
process-local intern ids must rebuild those buckets after unpickling.
"""

import pickle

from hypothesis import given, settings, strategies as st


def make_wme(cls, attrs, timetag):
    wme = WME(cls, attrs)
    wme.timetag = timetag
    return wme

from repro.ops5 import parse_program
from repro.ops5.symbols import SYMBOLS, SymbolTable
from repro.ops5.wme import WME
from repro.parallel import messages
from repro.parallel.codec import decode_batch, decode_reply, encode_batch, encode_reply

# OPS5 values: symbols (any text), i64 and beyond-i64 ints, finite floats.
ops5_values = st.one_of(
    st.text(min_size=0, max_size=30),
    st.integers(),
    st.integers(min_value=1 << 64, max_value=1 << 80),
    st.floats(allow_nan=False, allow_infinity=False),
)

attr_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)


@given(st.lists(st.text(max_size=20), max_size=50))
@settings(max_examples=50, deadline=None)
def test_intern_table_is_a_bijection(texts):
    table = SymbolTable()
    ids = [table.intern_id(t) for t in texts]
    # Same text -> same id; every id resolves back to its text.
    assert ids == [table.intern_id(t) for t in texts]
    for text, ident in zip(texts, ids):
        assert table.text_of(ident) == text
        assert table.try_id(text) == ident
    assert len(table) == len(set(texts))


@given(st.lists(st.text(max_size=20), max_size=40), st.integers(0, 40))
@settings(max_examples=50, deadline=None)
def test_mirror_fed_deltas_agrees_id_for_id(texts, split):
    """The worker-mirror protocol: grow only by coordinator deltas."""
    table = SymbolTable()
    mirror = SymbolTable()
    for t in texts[:split]:
        table.intern_id(t)
    mirror.extend(table.delta(0))
    watermark = len(table)
    for t in texts[split:]:
        table.intern_id(t)
    mirror.extend(table.delta(watermark))
    assert len(mirror) == len(table)
    for t in texts:
        assert mirror.try_id(t) == table.try_id(t)


@given(
    st.lists(
        st.tuples(attr_names, ops5_values).map(lambda kv: {kv[0]: kv[1]}),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=60, deadline=None)
def test_batch_frame_round_trips_every_ops5_value(attr_dicts):
    table = SymbolTable()
    mirror = SymbolTable()
    ops = [
        (messages.ADD_WME, f"cls{i}", attrs, i + 1)
        for i, attrs in enumerate(attr_dicts)
    ] + [(messages.REMOVE_WME, 1), (messages.RESET,)]
    frame, watermark = encode_batch(ops, 7, table, 0)
    decoded, seq = decode_batch(frame, mirror)
    assert seq == 7
    assert decoded == ops
    # Values must come back with their exact types (1 vs 1.0 vs "1").
    for (_, _, attrs, _), (_, _, out, _) in zip(
        ops[: len(attr_dicts)], decoded[: len(attr_dicts)]
    ):
        for key in attrs:
            assert type(out[key]) is type(attrs[key])
    assert watermark == len(table)


@given(st.lists(st.tuples(st.text(min_size=1, max_size=15), ops5_values), max_size=6))
@settings(max_examples=60, deadline=None)
def test_reply_frame_round_trips_even_with_unknown_symbols(bindings):
    """A mirror never allocates ids: names it has not seen go inline."""
    mirror = SymbolTable()
    mirror.intern_id("known-production")
    edits = [
        (messages.INSERT, "known-production", (1, 2), dict(bindings)),
        (messages.DELETE, "never-interned", (3,)),
    ]
    rows = [(0, 1, 2, 3, 4), (1, 0, 0, 0, 0)]
    table = SymbolTable()
    table.extend(mirror.delta(0))
    out_edits, out_rows = decode_reply(encode_reply(edits, rows, mirror), table)
    assert out_edits == edits
    assert out_rows == rows


def test_symbol_ids_never_collide_with_numbers_in_join_keys():
    """The regression the key bitmask exists for: a symbol whose intern
    id happens to equal a numeric join value must not hash-collide into
    the same bucket and produce phantom matches."""
    from repro.rete.network import ReteNetwork

    program = parse_program(
        """
        (p pair (left ^v <x>) (right ^v <x>) --> (make hit))
        """
    )
    network = ReteNetwork()
    for production in program.productions:
        network.add_production(production)
    sym = "collider"
    ident = SYMBOLS.intern_id(sym)
    # A number equal to the symbol's intern id on the opposite side.
    network.add_wme(make_wme("left", {"v": sym}, 1))
    network.add_wme(make_wme("right", {"v": ident}, 2))
    assert len(network.conflict_set) == 0
    network.add_wme(make_wme("right", {"v": sym}, 3))
    assert len(network.conflict_set) == 1


def test_checkpoint_restore_rebuilds_interned_join_indexes():
    """Pickle an indexed network, reload it, and keep matching: the
    rebuilt join indexes must answer exactly like the originals (this
    is the executor's checkpoint/restore path in miniature)."""
    from repro.rete.network import ReteNetwork

    program = parse_program(
        """
        (p link (node ^name <a>) (edge ^from <a> ^to <b>) (node ^name <b>)
           --> (make reach ^to <b>))
        """
    )

    def fresh():
        network = ReteNetwork()
        for production in program.productions:
            network.add_production(production)
        return network

    live = fresh()
    wmes = []
    for i in range(4):
        wmes.append(make_wme("node", {"name": f"n{i}"}, len(wmes) + 1))
    wmes.append(make_wme("edge", {"from": "n0", "to": "n1"}, len(wmes) + 1))
    for wme in wmes:
        live.add_wme(wme)

    resumed = pickle.loads(pickle.dumps(live, protocol=pickle.HIGHEST_PROTOCOL))
    resumed.rebuild_join_indexes()

    extra = make_wme("edge", {"from": "n2", "to": "n3"}, 99)
    live.add_wme(extra)
    resumed.add_wme(extra)
    assert len(resumed.conflict_set) == len(live.conflict_set) == 2
