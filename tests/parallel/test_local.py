"""The shared-memory ``local`` backend: thread shards on one kernel.

The differential fuzz harness exercises ``local`` alongside the process
transports; these tests pin the backend's own mechanisms -- the
compiled-kernel shard state, the zero-copy checkpoint/restore path, the
work-stealing scheduler's counters and granularity fast path, and fault
recovery with checkpoints enabled (the regression surface for the
identity-preserving checkpoint bug).
"""

import pytest

from repro.faults import FaultPlan, run_chaos
from repro.ops5 import ProductionSystem, parse_program
from repro.ops5.wme import WME, WorkingMemory
from repro.parallel import ParallelMatcher, SupervisorConfig
from repro.parallel import messages
from repro.parallel.local import (
    LocalKernelState,
    LocalScheduler,
    _LocalShard,
    rebuild_local_state,
)
from repro.parallel.validate import run_recorded, validate_parallel
from repro.rete import ReteNetwork
from repro.workloads.programs import SYSTEM_PROGRAMS
from repro.workloads.replay import record_program, replay_once

CLOSURE = """
(p base (parent ^from <x> ^to <y>) - (anc ^from <x> ^to <y>)
   --> (make anc ^from <x> ^to <y>))
(p step (anc ^from <x> ^to <y>) (parent ^from <y> ^to <z>)
        - (anc ^from <x> ^to <z>)
   --> (make anc ^from <x> ^to <z>))
"""

CHAIN = [("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(6)]

#: Shrunk deadlines so hang detection takes milliseconds, plus a small
#: checkpoint interval so recovery exercises checkpoint+tail replay.
FAST = SupervisorConfig(collect_deadline=0.5, checkpoint_every=4)


def _closure_state():
    """A LocalKernelState loaded with the closure rules + chain facts."""
    productions = parse_program(CLOSURE).productions
    memory = WorkingMemory()
    wmes = [memory.add(WME(cls, dict(attrs))) for cls, attrs in CHAIN]
    state = LocalKernelState()
    ops = [(messages.ADD_PRODUCTION, p) for p in productions]
    ops += [(messages.ADD_WME_REF, w) for w in wmes]
    edits, rows = state.apply_batch(ops)
    return state, edits, rows, memory


# -- differential identity ----------------------------------------------------


@pytest.mark.parametrize("name", sorted(SYSTEM_PROGRAMS))
def test_system_program_bit_identical(name):
    """Every system-class program fires identically under thread shards."""
    mod = SYSTEM_PROGRAMS[name]
    reference = mod.run()
    with ParallelMatcher(workers=2, transport="local") as matcher:
        subject = mod.run(matcher=matcher)
    assert subject.fired == reference.fired
    assert subject.halted == reference.halted
    assert subject.halt_reason == reference.halt_reason
    assert tuple(subject.output) == tuple(reference.output)


def test_validate_parallel_over_local_transport():
    report = validate_parallel(CLOSURE, CHAIN, workers=2, transport="local")
    assert report.agree, report.divergences


def test_clear_allows_pool_reuse():
    with ParallelMatcher(workers=2, transport="local") as matcher:
        first = run_recorded(CLOSURE, CHAIN, matcher)
        matcher.clear()
        second = run_recorded(CLOSURE, CHAIN, matcher)
    assert first.fired == second.fired
    assert first.conflict_sets == second.conflict_sets


def test_replay_protocol_is_bit_identical():
    """The benchmark's measurement protocol doubles as a correctness
    check: a recorded op stream replays to the same conflict set on the
    serial Rete and on local thread shards."""
    recording = record_program(SYSTEM_PROGRAMS["vt"])
    assert recording.cycle_count > 0 and recording.op_count > 0
    _, serial_keys = replay_once(recording, ReteNetwork())
    with ParallelMatcher(workers=2, transport="local") as matcher:
        _, local_keys = replay_once(recording, matcher)
    assert serial_keys == local_keys


# -- kernel shard state -------------------------------------------------------


def test_production_edits_emit_conflict_set_diff():
    """With WMEs resident, a ruleset edit rebuilds and emits only the
    conflict-set *diff* -- the coordinator maintains its view
    incrementally and never re-reads the whole set."""
    state, edits, rows, _ = _closure_state()
    inserted = {e[1].production.name for e in edits if e[0] == messages.INSERT_REF}
    assert inserted == {"base"}  # step needs anc facts that don't exist yet
    assert len(rows) == len(CHAIN)
    removal, _ = state.apply_batch([(messages.REMOVE_PRODUCTION, "base")])
    deletes = {(e[0], e[1]) for e in removal}
    assert deletes == {(messages.DELETE, "base")}
    assert not [e for e in removal if e[0] == messages.INSERT_REF]


def test_checkpoint_restore_preserves_wme_identity():
    """Regression: the checkpoint must share the coordinator's live WME
    objects.  The engine removes WMEs by identity, so a restored shard
    holding equal-but-distinct copies poisons every later firing."""
    state, _, _, memory = _closure_state()
    restored = rebuild_local_state(state.checkpoint(), [])
    assert set(restored.wmes) == set(state.wmes)
    for timetag, wme in restored.wmes.items():
        assert wme is state.wmes[timetag]
    assert sorted(i.key for i in restored.conflict_set) == sorted(
        i.key for i in state.conflict_set
    )
    for inst in restored.conflict_set:
        for wme in inst.wmes:
            if wme is not None:
                assert state.wmes[wme.timetag] is wme


def test_restore_replays_journal_tail():
    state, _, _, memory = _closure_state()
    blob = state.checkpoint()
    late = memory.add(WME("parent", {"from": "n6", "to": "n7"}))
    journal = [(messages.ADD_WME_REF, late)]
    restored = rebuild_local_state(blob, journal)
    assert late.timetag in restored.wmes
    assert len(restored.wmes) == len(state.wmes) + 1
    # Journal replay is quiet: the coordinator already merged those edits.
    assert restored.conflict_set.drain() == []


def test_bad_op_resets_inline_shard_state():
    """An op error must answer ERROR and leave the shard reusable with
    fresh state -- the same contract the process worker honours."""
    shard = _LocalShard(0, scheduler=None)
    shard.dispatch([("bogus-tag", None)])
    status, payload, _ = shard.collect()
    assert status == messages.ERROR
    assert "bogus-tag" in payload
    productions = parse_program(CLOSURE).productions
    shard.dispatch([(messages.ADD_PRODUCTION, productions[0])])
    status, _, _ = shard.collect()
    assert status == messages.OK
    assert "base" in shard.state.productions


# -- scheduler ----------------------------------------------------------------


def test_scheduler_summary_is_side_effect_free():
    """Observability reads never advance the epoch barrier or mutate
    counters: two consecutive snapshots after quiescence are equal."""
    with ParallelMatcher(workers=2, transport="local") as matcher:
        system = ProductionSystem(CLOSURE, matcher=matcher)
        for cls, attrs in CHAIN:
            system.add(cls, **attrs)
        system.run(max_cycles=200)
        first = matcher.scheduler_summary()
        second = matcher.scheduler_summary()
    assert first is not None
    assert first == second
    assert first["workers"] == 2
    assert first["epochs"] > 0
    # The run's small per-cycle batches take the granularity fast path.
    assert first["fast_batches"] > 0
    assert all(depth == 0 for depth in first["queue_depths"])


def test_scheduler_summary_absent_off_local_transport():
    with ParallelMatcher(workers=0) as matcher:
        run_recorded(CLOSURE, CHAIN, matcher)
        assert matcher.scheduler_summary() is None


def test_oversize_batches_run_through_the_deques():
    """A batch bigger than one grain skips the fast path and is split
    into stealable grain-sized tasks; the result still matches a
    one-shot serial application of the same ops."""
    productions = parse_program(CLOSURE).productions
    memory = WorkingMemory()
    wmes = [
        memory.add(WME("parent", {"from": f"n{i}", "to": f"n{i + 1}"}))
        for i in range(40)
    ]
    ops = [(messages.ADD_PRODUCTION, p) for p in productions]
    ops += [(messages.ADD_WME_REF, w) for w in wmes]
    scheduler = LocalScheduler(2, grain=4)
    try:
        shard = _LocalShard(0, scheduler=scheduler)
        shard.dispatch(list(ops))
        status, edits, rows = shard.collect()
        stats = scheduler.stats()
    finally:
        scheduler.shutdown()
    assert status == messages.OK
    # Grains ran on worker threads or on the helping coordinator --
    # either way they went through the deques, not the fast path.
    assert stats["tasks_executed"] + stats["tasks_helped"] > 0
    assert stats["fast_batches"] == 0
    serial_edits, serial_rows = LocalKernelState().apply_batch(list(ops))
    keys = lambda es: sorted(
        e[1].key for e in es if e[0] == messages.INSERT_REF
    )
    assert keys(edits) == keys(serial_edits)
    assert len(rows) == len(serial_rows)


# -- fault recovery -----------------------------------------------------------


def test_crash_and_hang_recover_from_checkpoints():
    """The chaos acceptance scenario on thread shards with checkpoints
    enabled -- the configuration that caught the pickled-checkpoint
    identity bug.  Crash + hang mid-run, bit-identical completion."""
    plan = FaultPlan.seeded(3, shards=2, horizon=20, crashes=1, hangs=1)
    report = run_chaos(
        CLOSURE, CHAIN, plan, workers=2, supervisor=FAST, transport="local"
    )
    assert report.identical, report.divergences
    assert report.transport == "local"
    causes = sorted(e["cause"] for e in report.recovery_events)
    assert causes == ["crash", "hang"]
    assert all(e["action"] == "respawned" for e in report.recovery_events)


def test_seeded_chaos_local_matches_pipe_recovery_story():
    """The same seeded plan faults the same (shard, seq) slots on both
    transports -- local's fault emulation is plan-compatible, so a chaos
    failure reproduces across backends."""
    plan = FaultPlan.seeded(7, shards=2, horizon=16, crashes=1)
    reports = {
        kind: run_chaos(
            CLOSURE, CHAIN, plan, workers=2, supervisor=FAST, transport=kind
        )
        for kind in ("local", "pipe")
    }
    for kind, report in reports.items():
        assert report.identical, (kind, report.divergences)
    keyed = [
        [(e["shard"], e["seq"], e["cause"]) for e in r.recovery_events]
        for r in reports.values()
    ]
    assert keyed[0] == keyed[1]
