"""Determinism regressions: simulation and live execution are functions.

The paper's measurements are only reproducible if both layers are
deterministic: the discrete-event simulator must return bit-equal
results for equal inputs, and the live executor must produce identical
runs for every worker count (0 = inline, and any process count) and
across repeated runs.  The executor guarantee follows from disjoint
per-production edit streams plus totally-ordered conflict resolution;
these tests pin it.
"""

import pytest

from repro.parallel import ParallelMatcher, run_recorded
from repro.psim import MachineConfig, simulate
from repro.rete import ReteNetwork
from repro.trace import capture_trace

CLOSURE = """
(p base (parent ^from <x> ^to <y>) - (anc ^from <x> ^to <y>)
   --> (make anc ^from <x> ^to <y>))
(p step (anc ^from <x> ^to <y>) (parent ^from <y> ^to <z>)
        - (anc ^from <x> ^to <z>)
   --> (make anc ^from <x> ^to <z>))
"""

CHAIN = [("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(5)]

COUNTDOWN = """
(p tick (count ^n <n> ^next <m>) (value ^n <n>)
   --> (remove 2) (make value ^n <m>) (write <n>))
"""

COUNT_SETUP = [
    ("count", {"n": i, "next": i - 1}) for i in range(5, 0, -1)
] + [("value", {"n": 5})]


def _simulate_once():
    trace, _, _ = capture_trace(CLOSURE, CHAIN, name="closure")
    return simulate(trace, MachineConfig(processors=8), record_placements=True)


def test_simulator_is_bit_equal_across_runs():
    first = _simulate_once()
    second = _simulate_once()
    # Dataclass equality covers every measured field, and placements
    # compare the full task-by-task schedule, not just the aggregates.
    assert first == second
    assert first.placements == second.placements


@pytest.mark.parametrize("program,setup", [(CLOSURE, CHAIN), (COUNTDOWN, COUNT_SETUP)])
def test_live_executor_identical_across_worker_counts(program, setup):
    reference = run_recorded(program, setup, ReteNetwork())
    for workers in (0, 1, 2, 3):
        with ParallelMatcher(workers=workers) as matcher:
            assert run_recorded(program, setup, matcher) == reference


def test_live_executor_identical_across_repeated_runs():
    with ParallelMatcher(workers=2) as matcher:
        first = run_recorded(CLOSURE, CHAIN, matcher)
        matcher.clear()
        second = run_recorded(CLOSURE, CHAIN, matcher)
    assert first == second


def test_partitioning_is_stable_across_runs():
    """Same program, same worker count -> same production placement."""
    def placement():
        with ParallelMatcher(workers=3) as matcher:
            run_recorded(CLOSURE, CHAIN, matcher)
            return [p.names for p in matcher.partition_snapshot()]

    assert placement() == placement()
