"""Unit tests for the shared-memory SPSC ring.

The ring is the transport's load-bearing primitive: monotonic head/tail
counters, progressive (chunked) writes, and producer backpressure.  The
transport and differential tests prove the end-to-end story; these pin
the byte-level mechanics -- especially the two paths that only trigger
under pressure: wraparound and the full-ring stall.
"""

import threading

import pytest

from repro.parallel.ring import DATA, Ring, RingStall


def make_ring(capacity=1024):
    ring = Ring.create(capacity=capacity)
    yield_ring.append(ring)
    return ring


yield_ring: list = []


@pytest.fixture(autouse=True)
def _reap_rings():
    yield
    while yield_ring:
        yield_ring.pop().close()


def test_messages_round_trip_in_order():
    ring = make_ring(capacity=8192)  # holds the whole burst unread
    payloads = [bytes([i % 251]) * (i * 7 % 90 + 1) for i in range(40)]
    for payload in payloads:
        ring.write(payload, timeout=1.0)
    assert ring.available() > 0
    out = [ring.read_message(timeout=1.0) for _ in payloads]
    assert out == payloads
    assert ring.available() == 0


def test_wraparound_preserves_content():
    """Messages crossing the physical end of the buffer must come out
    intact: total traffic here is many times the ring's capacity, so
    every offset (and both the write and read wrap paths) gets hit."""
    ring = make_ring(capacity=1024)
    for i in range(200):
        payload = bytes([(i * 31 + j) % 256 for j in range(i % 97 + 1)])
        ring.write(payload, timeout=1.0)
        assert ring.read_message(timeout=1.0) == payload


def test_message_larger_than_ring_streams_through():
    """Progressive writes mean capacity bounds memory, not message size:
    a concurrent reader drains while the producer is still writing."""
    ring = make_ring(capacity=1024)
    payload = bytes(range(256)) * 64  # 16 KiB through a 1 KiB ring
    result = []
    reader = threading.Thread(
        target=lambda: result.append(ring.read_message(timeout=10.0))
    )
    reader.start()
    ring.write(payload, timeout=10.0)
    reader.join(timeout=10.0)
    assert result == [payload]
    assert ring.stalls() >= 1  # the producer necessarily waited


def test_full_ring_write_raises_ring_stall_and_counts_it():
    ring = make_ring(capacity=1024)
    ring.write(bytes(900), timeout=1.0)
    before = ring.stalls()
    with pytest.raises(RingStall):
        ring.write(bytes(900), timeout=0.05)
    assert ring.stalls() == before + 1


def test_write_waiter_runs_while_blocked():
    """The waiter hook is how a blocked worker notices a dead peer."""
    ring = make_ring(capacity=1024)
    ring.write(bytes(900), timeout=1.0)
    calls = []

    def waiter():
        calls.append(1)
        if len(calls) >= 3:
            raise EOFError("peer gone")

    with pytest.raises(EOFError):
        ring.write(bytes(900), timeout=5.0, waiter=waiter)
    assert len(calls) == 3


def test_read_timeout_raises_ring_stall():
    ring = make_ring()
    with pytest.raises(RingStall):
        ring.read_message(timeout=0.05)


def test_poll_sees_pending_message_and_times_out_empty():
    ring = make_ring()
    assert not ring.poll(timeout=0.02)
    ring.write(b"x", timeout=1.0)
    assert ring.poll(timeout=0.02)
    assert ring.read_message(timeout=1.0) == b"x"


def test_attach_shares_the_segment():
    ring = make_ring()
    other = Ring.attach(ring.name)
    try:
        ring.write(b"hello across", timeout=1.0)
        assert other.read_message(timeout=1.0) == b"hello across"
    finally:
        other.close()


def test_capacity_floor_rejected():
    with pytest.raises(ValueError):
        Ring.create(capacity=10)


def test_header_is_off_data_region():
    ring = make_ring()
    # Counters live in the header, below DATA; a fresh ring starts zeroed.
    assert ring.available() == 0
    assert ring.stalls() == 0
    assert len(ring.shm.buf) >= DATA + 1024
