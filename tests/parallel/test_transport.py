"""The transport layer end to end: ring vs pipe, eager dispatch, metrics.

The contract under test: the choice of shard transport (pickled pipes
vs packed shared-memory ring frames) and of dispatch policy (barrier vs
eager batching) is *invisible* in every run observable -- firing
sequence, conflict sets, output, final memory -- and visible only in
the transport metrics.  These tests drive the same program through the
combinations and diff the records, then pin the metrics/plumbing edges
(resolution, validation, endpoint accounting) directly.
"""

import pytest

from repro.ops5 import Ops5Error, ProductionSystem
from repro.parallel import (
    DispatchConfig,
    ParallelMatcher,
    TRANSPORTS,
    resolve_transport,
    ring_available,
    validate_parallel,
)

CLOSURE = """
(p base (parent ^from <x> ^to <y>) - (anc ^from <x> ^to <y>)
   --> (make anc ^from <x> ^to <y>))
(p step (anc ^from <x> ^to <y>) (parent ^from <y> ^to <z>)
        - (anc ^from <x> ^to <z>)
   --> (make anc ^from <x> ^to <z>))
"""

CHAIN = [("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(5)]

needs_ring = pytest.mark.skipif(
    not ring_available(), reason="shared_memory unavailable on this host"
)


def test_resolution():
    assert resolve_transport("pipe") == "pipe"
    assert resolve_transport("auto") in ("ring", "pipe")
    if ring_available():
        assert resolve_transport("ring") == "ring"
        assert resolve_transport("auto") == "ring"
    with pytest.raises(ValueError):
        resolve_transport("telepathy")
    assert resolve_transport("local") == "local"
    assert set(TRANSPORTS) == {"auto", "ring", "pipe", "local"}


def test_matcher_rejects_unknown_transport():
    with pytest.raises(Ops5Error):
        ParallelMatcher(workers=1, transport="telepathy")


def test_build_matcher_rejects_transport_for_serial_backends():
    from repro.serve.session import build_matcher

    with pytest.raises(Ops5Error):
        build_matcher("rete", transport="ring")


def test_dispatch_config_validation():
    with pytest.raises(ValueError):
        DispatchConfig(eager_ops=0)
    with pytest.raises(ValueError):
        DispatchConfig(min_ops=8, max_ops=4)
    assert DispatchConfig(eager_ops=None).eager_ops is None


@needs_ring
def test_ring_transport_is_bit_identical_to_rete():
    report = validate_parallel(CLOSURE, CHAIN, workers=2, transport="ring")
    assert report.agree, report.divergences()


def test_pipe_transport_is_bit_identical_to_rete():
    report = validate_parallel(CLOSURE, CHAIN, workers=2, transport="pipe")
    assert report.agree, report.divergences()


@pytest.mark.parametrize("transport", ["ring", "pipe"])
def test_eager_dispatch_changes_no_observable(transport):
    """An eager_ops=1 run dispatches mid-cycle constantly; the record
    must still match the pure-barrier run op for op."""
    if transport == "ring" and not ring_available():
        pytest.skip("shared_memory unavailable")
    records = {}
    for label, dispatch in [
        ("barrier", DispatchConfig(eager_ops=None)),
        ("eager", DispatchConfig(eager_ops=1, adaptive=False, min_ops=1)),
    ]:
        from repro.parallel.validate import run_recorded

        with ParallelMatcher(workers=2, transport=transport, dispatch=dispatch) as m:
            records[label] = run_recorded(CLOSURE, CHAIN, m)
            summary = m.transport_summary()
        if label == "eager":
            assert summary["eager_dispatches"] > 0
        else:
            assert summary["eager_dispatches"] == 0
    assert records["barrier"] == records["eager"]


@needs_ring
def test_ring_run_uses_packed_frames_not_pickle():
    """The perf claim's precondition: a steady-state closure run over
    the ring ships zero pickle-fallback frames (productions ride in the
    batch frame's pickled-op slot, not as whole-frame fallbacks)."""
    with ParallelMatcher(workers=2, transport="ring") as matcher:
        system = ProductionSystem(CLOSURE, matcher=matcher)
        for cls, attrs in CHAIN:
            system.add(cls, **attrs)
        system.run(max_cycles=100)
        matcher.flush()
        summary = matcher.transport_summary()
    assert summary["kind"] == "ring"
    assert summary["pickle_fallbacks"] == 0
    assert summary["frames_sent"] > 0
    assert summary["bytes_sent"] > 0
    assert summary["frames_received"] >= summary["dispatches"]
    assert summary["symbols"] > 0


def test_metrics_snapshot_has_transport_section():
    from repro.obs import metrics as obs_metrics

    with ParallelMatcher(workers=1, transport="pipe") as matcher:
        system = ProductionSystem(CLOSURE, matcher=matcher)
        for cls, attrs in CHAIN:
            system.add(cls, **attrs)
        system.run(max_cycles=100)
        matcher.flush()
        data = obs_metrics.snapshot(system)
    transport = data["transport"]
    assert transport["kind"] == "pipe"
    assert transport["dispatches"] > 0
    assert transport["frames_sent"] > 0
    assert transport["mean_dispatch_latency_us"] > 0


def test_inline_matcher_reports_inline_kind():
    with ParallelMatcher(workers=0) as matcher:
        system = ProductionSystem(CLOSURE, matcher=matcher)
        for cls, attrs in CHAIN:
            system.add(cls, **attrs)
        system.run(max_cycles=100)
        summary = matcher.transport_summary()
    assert summary["kind"] == "inline"
    assert summary["frames_sent"] == 0


@needs_ring
def test_transport_stats_survive_worker_retirement():
    """close() must absorb endpoint counters before tearing them down,
    so post-mortem summaries still carry the run's traffic."""
    matcher = ParallelMatcher(workers=2, transport="ring")
    try:
        system = ProductionSystem(CLOSURE, matcher=matcher)
        for cls, attrs in CHAIN:
            system.add(cls, **attrs)
        system.run(max_cycles=100)
        matcher.flush()
        live = matcher.transport_summary()
    finally:
        matcher.close()
    post = matcher.transport_summary()
    assert post["frames_sent"] == live["frames_sent"]
    assert post["bytes_sent"] == live["bytes_sent"]
