"""Unit tests for the parallel executor's moving parts.

The differential harness (test_differential_matchers.py) proves the
end-to-end semantics; these tests pin down the individual mechanisms --
partitioning, the wire protocol, the work queue, backfill, dynamic
production changes, and pool lifecycle -- so a regression points at the
broken part directly.
"""

import pytest

from repro.ops5 import Ops5Error, ProductionSystem, parse_program
from repro.ops5.wme import WME, WorkingMemory
from repro.parallel import (
    ParallelMatcher,
    WorkQueue,
    assign_productions,
    measure_sharing_loss,
    route_classes,
    validate_parallel,
)
from repro.parallel import messages
from repro.parallel.worker import ShardState
from repro.rete import ReteNetwork

CLOSURE = """
(p base (parent ^from <x> ^to <y>) - (anc ^from <x> ^to <y>)
   --> (make anc ^from <x> ^to <y>))
(p step (anc ^from <x> ^to <y>) (parent ^from <y> ^to <z>)
        - (anc ^from <x> ^to <z>)
   --> (make anc ^from <x> ^to <z>))
"""

CHAIN = [("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(5)]


def _closure_productions():
    return parse_program(CLOSURE).productions


# -- partitioning -------------------------------------------------------------


def test_assign_productions_is_balanced_and_deterministic():
    productions = _closure_productions()  # two productions
    first = assign_productions(productions, 2)
    second = assign_productions(list(reversed(productions)), 2)
    assert [p.names for p in first] == [p.names for p in second]
    assert all(len(p.productions) == 1 for p in first)


def test_assign_productions_handles_more_shards_than_rules():
    partitions = assign_productions(_closure_productions(), 4)
    assert len(partitions) == 4
    assert sum(len(p.productions) for p in partitions) == 2
    assert [p.index for p in partitions] == [0, 1, 2, 3]


def test_route_classes_maps_each_class_to_its_shards():
    partitions = assign_productions(_closure_productions(), 2)
    routes = route_classes(partitions)
    # Both productions test parent and anc, so both classes reach both shards.
    assert routes["parent"] == (0, 1)
    assert routes["anc"] == (0, 1)


def test_sharing_loss_is_at_least_one():
    loss = measure_sharing_loss(assign_productions(_closure_productions(), 2))
    assert loss.distributed_nodes >= loss.serial_nodes
    assert loss.factor >= 1.0


# -- wire protocol -------------------------------------------------------------


def test_wme_roundtrips_through_the_wire_format():
    wme = WorkingMemory().add(WME("goal", {"want": "x", "n": 3}))
    op = messages.encode_wme(wme)
    decoded = messages.decode_wme(op)
    assert decoded.cls == wme.cls
    assert decoded.attributes == wme.attributes
    assert decoded.timetag == wme.timetag


def test_shard_state_rejects_unknown_ops():
    with pytest.raises(ValueError):
        ShardState().apply_batch([("??",)])


def test_shard_state_stat_rows_count_wme_ops_only():
    """Stat-row indices must align with the coordinator's change map,
    which counts WME ops and skips production ops."""
    state = ShardState()
    memory = WorkingMemory()
    production = _closure_productions()[0]
    wme = memory.add(WME("parent", {"from": "a", "to": "b"}))
    ops = [(messages.ADD_PRODUCTION, production), messages.encode_wme(wme)]
    _, stat_rows = state.apply_batch(ops)
    assert [row[0] for row in stat_rows] == [0]


# -- the work queue -------------------------------------------------------------


def test_work_queue_tracks_changes_per_shard():
    queue = WorkQueue(2)
    change = queue.open_change("add", "goal")
    queue.push(0, ("+w", "goal", {}, 1), change=change)
    queue.push(1, ("+w", "goal", {}, 1), change=change)
    queue.push(0, ("+p", None))  # production ops carry no change
    assert queue.dirty
    pending, change_map, changes = queue.take()
    assert [len(ops) for ops in pending] == [2, 1]
    assert change_map == [[0], [0]]
    assert changes == [("add", "goal")]
    assert not queue.dirty


# -- matcher behaviour (inline shard: no processes, same code path) -------------


def test_inline_matcher_matches_serial_rete():
    report = validate_parallel(CLOSURE, CHAIN, workers=2)
    assert report.agree, report.divergences()


def test_late_production_backfills_existing_memory():
    with ParallelMatcher(workers=0) as matcher:
        memory = WorkingMemory()
        for cls, attrs in CHAIN:
            matcher.add_wme(memory.add(WME(cls, attrs)))
        matcher.flush()
        base, step = _closure_productions()
        matcher.add_production(base)
        serial = ReteNetwork()
        serial.add_production(base)
        for wme in memory:
            serial.add_wme(wme)
        assert matcher.conflict_set.snapshot() == serial.conflict_set.snapshot()


def test_remove_production_retracts_its_instantiations():
    with ParallelMatcher(workers=0) as matcher:
        base, step = _closure_productions()
        matcher.add_production(base)
        matcher.add_production(step)
        memory = WorkingMemory()
        for cls, attrs in CHAIN:
            matcher.add_wme(memory.add(WME(cls, attrs)))
        assert len(matcher.conflict_set) > 0
        matcher.remove_production("base")
        remaining = {key[0] for key in matcher.conflict_set.snapshot()}
        assert "base" not in remaining


def test_remove_production_in_same_batch_as_wme_changes():
    """A rule removed before the flush must leave no trace, even though
    its shard already queued work for it."""
    with ParallelMatcher(workers=0) as matcher:
        base, step = _closure_productions()
        matcher.add_production(base)
        memory = WorkingMemory()
        for cls, attrs in CHAIN:
            matcher.add_wme(memory.add(WME(cls, attrs)))
        matcher.remove_production("base")  # same batch, never flushed
        assert matcher.conflict_set.snapshot() == frozenset()


def test_clear_resets_for_reuse():
    with ParallelMatcher(workers=0) as matcher:
        base, step = _closure_productions()
        matcher.add_production(base)
        memory = WorkingMemory()
        for cls, attrs in CHAIN:
            matcher.add_wme(memory.add(WME(cls, attrs)))
        matcher.flush()
        matcher.clear()
        assert len(matcher.conflict_set) == 0
        assert list(matcher.productions) == []
        # The pool is reusable with a different program.
        matcher.add_production(step)
        matcher.add_wme(WorkingMemory().add(WME("anc", {"from": "a", "to": "b"})))
        matcher.flush()


def test_duplicate_production_and_unknown_removal_raise():
    with ParallelMatcher(workers=0) as matcher:
        base, _ = _closure_productions()
        matcher.add_production(base)
        with pytest.raises(Ops5Error):
            matcher.add_production(base)
        with pytest.raises(Ops5Error):
            matcher.remove_production("nope")


def test_remove_unknown_wme_raises():
    with ParallelMatcher(workers=0) as matcher:
        with pytest.raises(Ops5Error):
            matcher.remove_wme(WorkingMemory().add(WME("a", {})))


def test_closed_matcher_rejects_new_work():
    matcher = ParallelMatcher(workers=0)
    matcher.close()
    with pytest.raises(Ops5Error):
        matcher.add_wme(WorkingMemory().add(WME("a", {})))


def test_stop_reaps_a_sigstopped_worker():
    """`close` must escalate past SIGTERM: a SIGSTOPped worker leaves
    SIGTERM pending forever, and only SIGKILL acts on a stopped process.
    Regression test for the old stop() that never escalated."""
    import os
    import signal

    matcher = ParallelMatcher(workers=1)
    matcher.add_production(_closure_productions()[0])
    matcher.flush()  # make sure the pool is started and serving
    shard = matcher._shards[0]
    os.kill(shard.process.pid, signal.SIGSTOP)
    matcher.close()
    assert not shard.process.is_alive()
    assert shard.conn.closed


def test_stop_closes_pipe_even_when_worker_already_died():
    import os
    import signal

    matcher = ParallelMatcher(workers=1)
    matcher.add_production(_closure_productions()[0])
    matcher.flush()
    shard = matcher._shards[0]
    os.kill(shard.process.pid, signal.SIGKILL)
    shard.process.join(timeout=5)
    matcher.close()  # send fails on the dead pipe; must not leak it
    assert shard.conn.closed


def test_negative_worker_count_rejected():
    with pytest.raises(Ops5Error):
        ParallelMatcher(workers=-1)


def test_partition_snapshot_before_and_after_start():
    with ParallelMatcher(workers=0) as matcher:
        base, step = _closure_productions()
        matcher.add_production(base)
        matcher.add_production(step)
        preview = matcher.partition_snapshot()
        assert sorted(n for p in preview for n in p.names) == ["base", "step"]
        matcher.flush()  # starts the pool
        actual = matcher.partition_snapshot()
        assert sorted(n for p in actual for n in p.names) == ["base", "step"]


# -- process shards (one real multiprocessing smoke per concern) ---------------


def test_process_pool_matches_serial_rete():
    report = validate_parallel(CLOSURE, CHAIN, workers=2)
    assert report.agree, report.divergences()


def test_worker_error_propagates_and_pool_survives():
    with ParallelMatcher(workers=1) as matcher:
        base, _ = _closure_productions()
        matcher.add_production(base)
        memory = WorkingMemory()
        wme = memory.add(WME("parent", {"from": "a", "to": "b"}))
        matcher.add_wme(wme)
        matcher.flush()
        # Force a worker-side failure: remove a WME the worker (reset
        # after its own error handling) no longer knows about is not
        # reachable from here, so use a duplicate production instead.
        matcher._queue.push(0, (messages.ADD_PRODUCTION, base))
        with pytest.raises(RuntimeError):
            matcher.flush()
        # The worker reset itself; the coordinator can clear and go on.
        matcher.clear()
        matcher.add_production(base)
        matcher.add_wme(WorkingMemory().add(WME("parent", {"from": "x", "to": "y"})))
        assert len(matcher.conflict_set) == 1


def test_engine_runs_with_parallel_string_backend():
    system = ProductionSystem(CLOSURE, matcher="parallel")
    try:
        for cls, attrs in CHAIN:
            system.add(cls, **attrs)
        result = system.run()
        assert result.halted
        assert result.fired > 0
    finally:
        system.matcher.close()
