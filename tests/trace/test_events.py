"""Trace data-structure invariants."""

import pytest

from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace


def _task(index, cost=10, deps=(), kind="join", node=1, productions=()):
    return Task(
        index=index, kind=kind, cost=cost, deps=tuple(deps),
        node_id=node, productions=tuple(productions),
    )


def _trace(changes_per_firing=2, firings=2):
    trace = Trace(name="t", firings=[])
    for f in range(firings):
        firing = FiringTrace(production=f"p{f}")
        for c in range(changes_per_firing):
            change = ChangeTrace("add", "cls")
            change.tasks = [
                _task(0, cost=5, kind="root"),
                _task(1, cost=10, deps=(0,)),
                _task(2, cost=20, deps=(1,), productions=("p0",)),
            ]
            firing.changes.append(change)
        trace.firings.append(firing)
    trace.serial_cost = trace.total_cost
    return trace


class TestChangeTrace:
    def test_total_cost(self):
        change = ChangeTrace("add", "c", [_task(0, 5), _task(1, 7, deps=(0,))])
        assert change.total_cost == 12

    def test_critical_path_linear_chain(self):
        change = ChangeTrace(
            "add", "c", [_task(0, 5), _task(1, 7, deps=(0,)), _task(2, 3, deps=(1,))]
        )
        assert change.critical_path == 15

    def test_critical_path_with_fanout(self):
        change = ChangeTrace(
            "add", "c",
            [_task(0, 5), _task(1, 100, deps=(0,)), _task(2, 1, deps=(0,))],
        )
        assert change.critical_path == 105

    def test_affected_productions_union(self):
        change = ChangeTrace(
            "add", "c",
            [_task(0, productions=("a", "b")), _task(1, productions=("b",))],
        )
        assert change.affected_productions() == {"a", "b"}


class TestTraceTotals:
    def test_counts(self):
        trace = _trace(changes_per_firing=3, firings=2)
        assert trace.total_changes == 6
        assert trace.total_tasks == 18
        assert trace.mean_changes_per_firing() == 3.0

    def test_serial_cost_defaults_to_total(self):
        trace = Trace(name="t", firings=_trace().firings)
        assert trace.serial_cost == trace.total_cost

    def test_mean_affected(self):
        trace = _trace()
        assert trace.mean_affected_productions() == 1.0


class TestValidation:
    def test_valid_trace_passes(self):
        _trace().validate()

    def test_forward_dep_rejected(self):
        trace = _trace()
        trace.firings[0].changes[0].tasks[0] = _task(0, deps=(1,))
        with pytest.raises(ValueError):
            trace.validate()

    def test_misnumbered_index_rejected(self):
        trace = _trace()
        trace.firings[0].changes[0].tasks[1] = _task(5)
        with pytest.raises(ValueError):
            trace.validate()

    def test_nonpositive_cost_rejected(self):
        trace = _trace()
        trace.firings[0].changes[0].tasks[1] = _task(1, cost=0, deps=(0,))
        with pytest.raises(ValueError):
            trace.validate()
