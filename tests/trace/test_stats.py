"""Trace statistics."""

import pytest

from repro.trace import capture_trace, summarize
from repro.trace.stats import Distribution
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace
from repro.workloads import PAPER_SYSTEMS, generate_trace
from repro.workloads.programs import hanoi


class TestDistribution:
    def test_summary_values(self):
        dist = Distribution.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert dist.count == 5
        assert dist.mean == pytest.approx(3.0)
        assert dist.minimum == 1.0 and dist.maximum == 5.0
        assert dist.p50 == 3.0

    def test_empty(self):
        dist = Distribution.of([])
        assert dist.count == 0
        assert dist.mean == 0.0

    def test_p90(self):
        dist = Distribution.of(list(map(float, range(100))))
        assert dist.p90 == 90.0

    def test_describe_renders(self):
        assert "mean" in Distribution.of([1.0]).describe()


class TestSummarize:
    def test_counts_match_trace(self):
        trace = generate_trace(PAPER_SYSTEMS[0], seed=3, firings=15)
        stats = summarize(trace)
        assert stats.firings == 15
        assert stats.changes == trace.total_changes
        assert stats.tasks == trace.total_tasks
        assert stats.serial_cost == trace.serial_cost

    def test_kind_mix_sums_to_tasks(self):
        trace = generate_trace(PAPER_SYSTEMS[1], seed=3, firings=10)
        stats = summarize(trace)
        assert sum(stats.kind_mix.values()) == stats.tasks

    def test_parallelism_at_least_one(self):
        trace = generate_trace(PAPER_SYSTEMS[2], seed=3, firings=10)
        stats = summarize(trace)
        assert stats.change_parallelism.minimum >= 1.0

    def test_serial_chain_parallelism_is_one(self):
        tasks = [
            Task(index=i, kind="join", cost=10, deps=(i - 1,) if i else (),
                 node_id=i + 1, productions=("p",))
            for i in range(4)
        ]
        trace = Trace(name="chain",
                      firings=[FiringTrace("p", [ChangeTrace("add", "c", tasks)])])
        stats = summarize(trace)
        assert stats.change_parallelism.mean == pytest.approx(1.0)

    def test_add_fraction(self):
        trace = generate_trace(PAPER_SYSTEMS[0], seed=3, firings=30)
        stats = summarize(trace)
        assert 0.3 <= stats.add_fraction <= 0.8

    def test_captured_traces_summarise_too(self):
        trace, _, _ = capture_trace(hanoi.PROGRAM, hanoi.setup(4), name="hanoi")
        stats = summarize(trace)
        assert stats.firings == 30
        assert stats.task_cost.mean > 0

    def test_rows_render(self):
        trace = generate_trace(PAPER_SYSTEMS[0], seed=3, firings=5)
        labels = [label for label, _ in summarize(trace).rows()]
        assert "task cost" in labels
        assert "per-change parallelism" in labels


class TestPaperBands:
    def test_two_input_tasks_near_the_50_100_band(self):
        """Section 4: tasks of 50-100 instructions.  Our calibrated
        generator sits at the low edge (the serial-cost constraint wins);
        the mean must stay within a factor of ~2 of the band."""
        for profile in PAPER_SYSTEMS[:3]:
            stats = summarize(generate_trace(profile, seed=9, firings=20))
            assert 25 <= stats.two_input_task_cost.mean <= 110
