"""Trace serialisation round-trips."""

import json

import pytest

from repro.trace import (
    capture_trace,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.workloads import generate_trace, profile_named
from repro.workloads.programs import hanoi


def _traces():
    captured, _, _ = capture_trace(hanoi.PROGRAM, hanoi.setup(3), name="hanoi-3")
    synthetic = generate_trace(profile_named("ilog"), seed=5, firings=8)
    return [captured, synthetic]


class TestRoundTrip:
    @pytest.mark.parametrize("index", [0, 1], ids=["captured", "synthetic"])
    def test_dict_roundtrip_preserves_everything(self, index):
        trace = _traces()[index]
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.name == trace.name
        assert rebuilt.serial_cost == trace.serial_cost
        assert rebuilt.total_changes == trace.total_changes
        assert rebuilt.total_tasks == trace.total_tasks
        for original, again in zip(trace.firings, rebuilt.firings):
            assert original.production == again.production
            for change_a, change_b in zip(original.changes, again.changes):
                assert change_a.kind == change_b.kind
                assert change_a.tasks == change_b.tasks

    def test_file_roundtrip(self, tmp_path):
        trace = _traces()[0]
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        rebuilt = load_trace(path)
        assert rebuilt.total_tasks == trace.total_tasks

    def test_simulation_identical_after_reload(self, tmp_path):
        from repro.psim import MachineConfig, simulate

        trace = _traces()[1]
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        rebuilt = load_trace(path)
        config = MachineConfig(processors=8)
        assert simulate(rebuilt, config).makespan == simulate(trace, config).makespan


class TestValidation:
    def test_version_checked(self):
        data = trace_to_dict(_traces()[1])
        data["version"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(data)

    def test_corrupt_deps_rejected(self):
        data = trace_to_dict(_traces()[1])
        data["firings"][0]["changes"][0]["tasks"][0]["deps"] = [5]
        with pytest.raises(ValueError):
            trace_from_dict(data)

    def test_output_is_plain_json(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(_traces()[1], path)
        data = json.loads(path.read_text())
        assert data["version"] == 1


class TestCliTraceCommand:
    def test_capture_and_replay(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "p.ops5"
        program.write_text("(p go (a ^v <x>) --> (write got <x>) (remove 1))")
        wmes = tmp_path / "m.wmes"
        wmes.write_text("(a ^v 1) (a ^v 2)")
        out = tmp_path / "t.json"
        assert main(["trace", "--file", str(program), "--wmes", str(wmes),
                     "--out", str(out)]) == 0
        assert out.exists()
        assert main(["simulate", "--trace", str(out), "--processors", "2"]) == 0
        assert "true speed-up" in capsys.readouterr().out

    def test_synthetic_capture(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "s.json"
        assert main(["trace", "--system", "mud", "--firings", "5",
                     "--out", str(out)]) == 0
        assert "tasks" in capsys.readouterr().out
