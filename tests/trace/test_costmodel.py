"""The instruction cost model and the Section 2.2 interpreter ladder."""

import pytest

from repro.rete.instrument import ActivationEvent
from repro.trace import (
    C1_INSTRUCTIONS_PER_INSERT,
    C2_INSTRUCTIONS_PER_DELETE,
    C3_INSTRUCTIONS_PER_WME,
    CostModel,
    UNIPROCESSOR_TIERS,
    changes_per_second,
    uniprocessor_ladder,
)


def _event(kind, comparisons=0, outputs=0):
    return ActivationEvent(
        seq=1, parent=None, node_id=1, node_kind=kind,
        direction="add", comparisons=comparisons, outputs=outputs,
    )


class TestPaperConstants:
    def test_section_3_1_constants(self):
        assert C1_INSTRUCTIONS_PER_INSERT == 1800
        assert C2_INSTRUCTIONS_PER_DELETE == C1_INSTRUCTIONS_PER_INSERT
        assert C3_INSTRUCTIONS_PER_WME == 1100

    def test_ladder_reproduces_published_speeds_at_1_mips(self):
        ladder = uniprocessor_ladder(mips=1.0)
        assert ladder["lisp-interpreted"] == pytest.approx(8.0)
        assert ladder["bliss-interpreted"] == pytest.approx(40.0)
        assert ladder["ops83-compiled"] == pytest.approx(200.0)
        # "Optimised" lands in the published 400-800 band.
        assert 400 <= ladder["ops83-optimized"] <= 800

    def test_ladder_scales_with_mips(self):
        assert uniprocessor_ladder(2.0)["ops83-compiled"] == pytest.approx(400.0)

    def test_tiers_are_monotone(self):
        costs = list(UNIPROCESSOR_TIERS.values())
        assert costs == sorted(costs, reverse=True)


class TestActivationCosts:
    def test_join_cost_composition(self):
        model = CostModel()
        cost = model.activation_cost(_event("join", comparisons=3, outputs=1))
        assert cost == model.join_base + 3 * model.per_comparison + model.per_output

    def test_typical_join_in_paper_task_band(self):
        # Section 4: tasks average 50-100 instructions.
        model = CostModel()
        typical = model.activation_cost(_event("join", comparisons=2, outputs=1))
        assert 50 <= typical <= 100

    def test_root_cost_includes_constant_tests(self):
        model = CostModel()
        assert (
            model.activation_cost(_event("root", comparisons=5))
            == model.root_base + 5 * model.per_constant_test
        )

    def test_memory_and_terminal_costs(self):
        model = CostModel()
        assert model.activation_cost(_event("amem")) == model.amem_base
        assert model.activation_cost(_event("bmem")) == model.bmem_base
        assert model.activation_cost(_event("term")) == model.term_base

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CostModel().activation_cost(_event("mystery"))

    def test_change_cost_sums(self):
        model = CostModel()
        events = [_event("amem"), _event("join", comparisons=1)]
        assert model.change_cost(events) == sum(
            model.activation_cost(e) for e in events
        )


class TestThroughputHelper:
    def test_changes_per_second(self):
        assert changes_per_second(2_000_000, mips=2.0) == pytest.approx(1.0)

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ValueError):
            changes_per_second(0, 1.0)
