"""The instruction cost model and the Section 2.2 interpreter ladder."""

import pytest

from repro.rete.instrument import ActivationEvent
from repro.trace import (
    C1_INSTRUCTIONS_PER_INSERT,
    C2_INSTRUCTIONS_PER_DELETE,
    C3_INSTRUCTIONS_PER_WME,
    CostModel,
    UNIPROCESSOR_TIERS,
    changes_per_second,
    uniprocessor_ladder,
)


def _event(kind, comparisons=0, outputs=0):
    return ActivationEvent(
        seq=1, parent=None, node_id=1, node_kind=kind,
        direction="add", comparisons=comparisons, outputs=outputs,
    )


class TestPaperConstants:
    def test_section_3_1_constants(self):
        assert C1_INSTRUCTIONS_PER_INSERT == 1800
        assert C2_INSTRUCTIONS_PER_DELETE == C1_INSTRUCTIONS_PER_INSERT
        assert C3_INSTRUCTIONS_PER_WME == 1100

    def test_ladder_reproduces_published_speeds_at_1_mips(self):
        ladder = uniprocessor_ladder(mips=1.0)
        assert ladder["lisp-interpreted"] == pytest.approx(8.0)
        assert ladder["bliss-interpreted"] == pytest.approx(40.0)
        assert ladder["ops83-compiled"] == pytest.approx(200.0)
        # "Optimised" lands in the published 400-800 band.
        assert 400 <= ladder["ops83-optimized"] <= 800

    def test_ladder_scales_with_mips(self):
        assert uniprocessor_ladder(2.0)["ops83-compiled"] == pytest.approx(400.0)

    def test_tiers_are_monotone(self):
        costs = list(UNIPROCESSOR_TIERS.values())
        assert costs == sorted(costs, reverse=True)


class TestActivationCosts:
    def test_join_cost_composition(self):
        model = CostModel()
        cost = model.activation_cost(_event("join", comparisons=3, outputs=1))
        assert cost == model.join_base + 3 * model.per_comparison + model.per_output

    def test_typical_join_in_paper_task_band(self):
        # Section 4: tasks average 50-100 instructions.
        model = CostModel()
        typical = model.activation_cost(_event("join", comparisons=2, outputs=1))
        assert 50 <= typical <= 100

    def test_root_cost_includes_constant_tests(self):
        model = CostModel()
        assert (
            model.activation_cost(_event("root", comparisons=5))
            == model.root_base + 5 * model.per_constant_test
        )

    def test_memory_and_terminal_costs(self):
        model = CostModel()
        assert model.activation_cost(_event("amem")) == model.amem_base
        assert model.activation_cost(_event("bmem")) == model.bmem_base
        assert model.activation_cost(_event("term")) == model.term_base

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CostModel().activation_cost(_event("mystery"))

    def test_change_cost_sums(self):
        model = CostModel()
        events = [_event("amem"), _event("join", comparisons=1)]
        assert model.change_cost(events) == sum(
            model.activation_cost(e) for e in events
        )


class TestThroughputHelper:
    def test_changes_per_second(self):
        assert changes_per_second(2_000_000, mips=2.0) == pytest.approx(1.0)

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ValueError):
            changes_per_second(0, 1.0)


class TestKernelCalibration:
    """The measured bridge from the paper's interpreter constants to the
    compiled kernel the ``local`` backend actually runs."""

    def test_explicit_scale_multiplies_every_constant(self):
        from repro.trace import kernel_calibrated_model

        base = CostModel()
        half = kernel_calibrated_model(scale=0.5)
        assert half.label == "kernel-calibrated"
        assert half.join_base == max(1, round(base.join_base * 0.5))
        assert half.root_base == max(1, round(base.root_base * 0.5))
        assert half.term_base == max(1, round(base.term_base * 0.5))

    def test_tiny_scale_floors_at_one_instruction(self):
        from repro.trace import kernel_calibrated_model

        floored = kernel_calibrated_model(scale=1e-6)
        assert floored.join_base == 1
        assert floored.per_comparison == 1
        assert floored.activation_cost(_event("root")) >= 1

    def test_default_label_names_the_paper(self):
        assert CostModel().label == "paper-sec3"

    def test_measured_scale_is_clamped_and_cached(self):
        from repro.trace import measured_kernel_scale

        first = measured_kernel_scale(repeats=1)
        assert 0.05 <= first <= 4.0
        assert measured_kernel_scale(repeats=1) == first
