"""Trace capture under non-default configurations."""


from repro.trace import CostModel, capture_trace
from repro.workloads.programs import hanoi, monkey


class TestStrategyVariants:
    def test_mea_capture(self):
        trace, result, _ = capture_trace(
            hanoi.PROGRAM, hanoi.setup(3), name="hanoi-mea", strategy="mea"
        )
        assert result.fired > 0
        trace.validate()

    def test_lex_and_mea_firing_counts_agree_on_hanoi(self):
        # Hanoi's goal structure is strategy-insensitive: the recursion
        # forces the same number of firings either way.
        _, lex, _ = capture_trace(hanoi.PROGRAM, hanoi.setup(3), strategy="lex")
        _, mea, _ = capture_trace(hanoi.PROGRAM, hanoi.setup(3), strategy="mea")
        assert lex.fired == mea.fired


class TestCostModelVariants:
    def test_custom_cost_model_scales_serial_cost(self):
        cheap = CostModel()
        dear = CostModel(
            join_base=cheap.join_base * 2,
            per_comparison=cheap.per_comparison * 2,
            per_output=cheap.per_output * 2,
            amem_base=cheap.amem_base * 2,
            bmem_base=cheap.bmem_base * 2,
            term_base=cheap.term_base * 2,
            root_base=cheap.root_base * 2,
            per_constant_test=cheap.per_constant_test * 2,
        )
        trace_cheap, _, _ = capture_trace(
            monkey.PROGRAM, monkey.setup(), cost_model=cheap
        )
        trace_dear, _, _ = capture_trace(
            monkey.PROGRAM, monkey.setup(), cost_model=dear
        )
        assert trace_dear.serial_cost == 2 * trace_cheap.serial_cost
        assert trace_dear.total_tasks == trace_cheap.total_tasks

    def test_max_cycles_truncates_trace(self):
        full, _, _ = capture_trace(hanoi.PROGRAM, hanoi.setup(3))
        partial, result, _ = capture_trace(
            hanoi.PROGRAM, hanoi.setup(3), max_cycles=5
        )
        assert result.fired == 5
        assert len(partial.firings) == 5
        assert len(full.firings) > 5


class TestCaptureIsolation:
    def test_repeated_captures_identical(self):
        first, _, _ = capture_trace(monkey.PROGRAM, monkey.setup(), name="a")
        second, _, _ = capture_trace(monkey.PROGRAM, monkey.setup(), name="b")
        assert first.serial_cost == second.serial_cost
        assert first.total_tasks == second.total_tasks

    def test_system_usable_after_capture(self):
        trace, result, system = capture_trace(monkey.PROGRAM, monkey.setup())
        assert system.halted
        assert len(system.memory) > 0
        # Stats survive and agree with the trace, modulo the initial
        # memory load (the trace excludes setup by default).
        setup_changes = len(monkey.setup())
        assert system.matcher.stats.total_changes == trace.total_changes + setup_changes
