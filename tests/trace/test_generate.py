"""Trace capture from instrumented runs."""

from repro.trace import SETUP, CostModel, capture_trace

SRC = """
(p select
  (goal ^want <c>)
  (item ^color <c> ^state free)
  -->
  (modify 2 ^state taken))
"""

SETUP_WMES = [
    ("goal", {"want": "red"}),
    ("item", {"color": "red", "state": "free"}),
    ("item", {"color": "red", "state": "free"}),
]


class TestCaptureTrace:
    def test_firing_and_change_grouping(self):
        trace, result, _ = capture_trace(SRC, SETUP_WMES, name="select")
        assert result.fired == 2
        assert len(trace.firings) == 2
        assert all(f.production == "select" for f in trace.firings)
        # Each firing's modify = remove + add.
        assert [len(f.changes) for f in trace.firings] == [2, 2]
        assert [c.kind for c in trace.firings[0].changes] == ["remove", "add"]

    def test_setup_excluded_by_default(self):
        trace, _, _ = capture_trace(SRC, SETUP_WMES)
        assert all(f.production != SETUP for f in trace.firings)
        assert trace.total_changes == 4

    def test_setup_included_on_request(self):
        trace, _, _ = capture_trace(SRC, SETUP_WMES, include_setup=True)
        assert trace.firings[0].production == SETUP
        assert len(trace.firings[0].changes) == len(SETUP_WMES)

    def test_trace_validates(self):
        trace, _, _ = capture_trace(SRC, SETUP_WMES)
        trace.validate()  # raises on corruption

    def test_costs_follow_cost_model(self):
        model = CostModel()
        trace, _, _ = capture_trace(SRC, SETUP_WMES, cost_model=model)
        for change in trace.iter_changes():
            for task in change.tasks:
                assert task.cost > 0
                if task.kind == "amem":
                    assert task.cost == model.amem_base

    def test_production_attribution(self):
        trace, _, _ = capture_trace(SRC, SETUP_WMES)
        affected = set()
        for change in trace.iter_changes():
            affected |= change.affected_productions()
        assert affected == {"select"}

    def test_deps_form_forest_rooted_at_root_task(self):
        trace, _, _ = capture_trace(SRC, SETUP_WMES)
        for change in trace.iter_changes():
            rootless = [t for t in change.tasks if not t.deps]
            assert len(rootless) == 1
            assert rootless[0].kind == "root"

    def test_serial_cost_is_task_sum(self):
        trace, _, _ = capture_trace(SRC, SETUP_WMES)
        assert trace.serial_cost == trace.total_cost

    def test_empty_run_produces_empty_trace(self):
        trace, result, _ = capture_trace(SRC, [], name="empty")
        assert result.fired == 0
        assert trace.firings == []
