"""Application-level parallelism: trace merging."""

import pytest

from repro.psim import MachineConfig, simulate
from repro.trace import merge_traces
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace


def _thread(name, firings, cost=50):
    trace = Trace(name=name, firings=[])
    for i in range(firings):
        change = ChangeTrace("add", "c", [
            Task(index=0, kind="join", cost=cost, deps=(), node_id=hash(name) % 97 + i,
                 productions=(name,))
        ])
        trace.firings.append(FiringTrace(production=f"{name}-p{i}", changes=[change]))
    trace.serial_cost = trace.total_cost
    return trace


class TestMergeTraces:
    def test_cycle_alignment(self):
        merged = merge_traces([_thread("a", 3), _thread("b", 3)])
        assert len(merged.firings) == 3
        assert all(len(f.changes) == 2 for f in merged.firings)
        assert merged.firings[0].production == "a-p0+b-p0"

    def test_uneven_threads(self):
        merged = merge_traces([_thread("a", 4), _thread("b", 2)])
        assert len(merged.firings) == 4
        assert [len(f.changes) for f in merged.firings] == [2, 2, 1, 1]

    def test_serial_cost_sums(self):
        a, b = _thread("a", 3, cost=10), _thread("b", 3, cost=20)
        merged = merge_traces([a, b])
        assert merged.serial_cost == a.serial_cost + b.serial_cost

    def test_validates(self):
        merge_traces([_thread("a", 2)]).validate()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_traces([])

    def test_threads_raise_throughput(self):
        """Section 8: k threads multiply the changes processed per
        barrier, so the merged trace finishes faster per change."""
        threads = [_thread(f"t{i}", 10) for i in range(4)]
        config = MachineConfig(processors=16)
        single = simulate(threads[0], config)
        merged = simulate(merge_traces(threads), config)
        assert merged.wme_changes_per_second > 2 * single.wme_changes_per_second
