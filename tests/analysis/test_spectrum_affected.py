"""Section 3.2 spectrum and Sections 4/8 limiting-factor measurements."""

from repro.analysis import (
    measure_program,
    measure_spectrum,
    measure_trace,
)
from repro.workloads import PAPER_SYSTEMS, generate_trace
from repro.workloads.programs import closure, hanoi


#: A three-positive-CE program: Rete stores only the prefix chain
#: (goal, goal x item, full triples) while the all-combinations scheme
#: additionally stores the (goal, slot) and (item, slot) pairs -- the
#: combinatorial surplus the paper warns about.
_TRIPLE_SRC = """
(p pick (goal ^t <t>) (item ^t <t> ^v <v>) (slot ^v <v>) --> (halt))
"""


def _triple_build(**kwargs):
    from repro.ops5 import ProductionSystem

    system = ProductionSystem(_TRIPLE_SRC, **kwargs)
    for t in range(3):
        system.add("goal", t=t)
    for i in range(6):
        system.add("item", t=i % 3, v=i % 2)
    for v in range(4):
        system.add("slot", v=v % 2)
    return system


class TestSpectrum:
    def test_ordering_on_join_heavy_snapshot(self):
        """TREAT stores least, all-combinations most (Section 3.2)."""
        report = measure_spectrum(_triple_build, "triple", max_cycles=0)
        assert report.treat.beta_state == 0
        assert report.rete.total > report.treat.total
        assert report.all_pairs.total > report.rete.total

    def test_alpha_state_identical_between_treat_and_rete(self):
        report = measure_spectrum(hanoi.build, "hanoi", max_cycles=10)
        assert report.treat.alpha_state == report.rete.alpha_state

    def test_ordered_returns_low_to_high(self):
        report = measure_spectrum(_triple_build, "triple", max_cycles=0)
        totals = [point.total for point in report.ordered()]
        assert totals == sorted(totals)

    def test_closure_rete_exceeds_treat(self):
        report = measure_spectrum(
            lambda **kw: closure.build(closure.chain(8), **kw),
            "closure",
            max_cycles=36,
        )
        assert report.rete.total > report.treat.total


class TestProgramFactors:
    def test_hanoi_factors(self):
        factors = measure_program(hanoi.build, "hanoi")
        assert factors.cycles == 30  # 15 moves + goal bookkeeping
        assert factors.mean_changes_per_cycle > 1
        assert factors.mean_affected_per_change >= 1
        assert factors.max_affected_per_change >= factors.mean_affected_per_change

    def test_cycle_cap_respected(self):
        factors = measure_program(hanoi.build, "hanoi", max_cycles=5)
        assert factors.cycles == 5


class TestTraceFactors:
    def test_synthetic_affected_matches_paper_scale(self):
        """Across the six calibrated systems, affected productions per
        change average around the paper's ~30 (we accept 10-45)."""
        means = [
            measure_trace(generate_trace(p, seed=9, firings=40)).mean_affected_per_change
            for p in PAPER_SYSTEMS
        ]
        overall = sum(means) / len(means)
        assert 10 <= overall <= 45

    def test_turnover_under_half_percent(self):
        """With the paper-scale stable memory, per-cycle turnover stays
        below ~1% (the paper reports < 0.5%)."""
        trace = generate_trace(PAPER_SYSTEMS[0], seed=9, firings=40)
        factors = measure_trace(trace, stable_memory_size=1000.0)
        assert factors.turnover_percent < 1.0

    def test_cost_variation_is_substantial(self):
        """The variance argument: per-production costs are far from
        uniform."""
        trace = generate_trace(PAPER_SYSTEMS[0], seed=9, firings=40)
        factors = measure_trace(trace)
        assert factors.cost_variation > 0.5
