"""Static and dynamic program measurements."""

import pytest

from repro.analysis import measure_dynamic, measure_static
from repro.ops5 import parse_program
from repro.workloads.programs import blocks, closure, hanoi, monkey


class TestStatic:
    def test_hanoi_structure(self):
        program = parse_program(hanoi.PROGRAM)
        stats = measure_static(program.productions, "hanoi")
        assert stats.productions == 5
        assert stats.condition_elements == 9
        assert stats.classes == 2  # goal, disk
        assert stats.negated_condition_elements == 0
        assert stats.makes == 2 and stats.modifies == 6 and stats.removes == 3

    def test_negation_share(self):
        program = parse_program("""
          (p a (x) - (y) --> (halt))
          (p b (x) --> (halt))
        """)
        stats = measure_static(program.productions)
        assert stats.negation_share == pytest.approx(1 / 3)

    def test_test_mix_counted(self):
        program = parse_program(
            "(p t (c ^a 1 ^b <v> ^d > 2 ^e << x y >> ^f { <w> <> 0 }) --> (halt))"
        )
        stats = measure_static(program.productions)
        assert stats.constant_tests == 1
        assert stats.variable_tests == 2  # <v> and <w> (in the conjunction)
        assert stats.predicate_tests == 2  # > 2 and <> 0
        assert stats.disjunctive_tests == 1

    def test_empty_program(self):
        stats = measure_static([])
        assert stats.productions == 0
        assert stats.mean_ces_per_production == 0.0
        assert stats.negation_share == 0.0

    def test_rows_render(self):
        program = parse_program(monkey.PROGRAM)
        rows = measure_static(program.productions, "monkey").rows()
        assert any("productions" in str(label) for label, _ in rows)


class TestDynamic:
    def test_hanoi_run_statistics(self):
        stats = measure_dynamic(hanoi.build, "hanoi")
        assert stats.firings == 30
        assert stats.changes == 122
        assert stats.peak_memory >= stats.mean_memory
        assert stats.mean_changes_per_firing == pytest.approx(122 / 30, abs=0.2)
        assert stats.network_nodes > 0
        assert 0.0 <= stats.sharing_ratio <= 1.0

    def test_cycle_cap(self):
        stats = measure_dynamic(blocks.build, "blocks", max_cycles=2)
        assert stats.firings == 2

    def test_turnover_reflects_memory_growth(self):
        # Closure only adds facts: the working memory grows, so turnover
        # per cycle shrinks as the run proceeds -- the mean stays small.
        stats = measure_dynamic(
            lambda **kw: closure.build(closure.chain(8), **kw), "closure"
        )
        assert stats.turnover_percent < 10.0

    def test_rows_render(self):
        rows = measure_dynamic(monkey.build, "monkey").rows()
        labels = [label for label, _ in rows]
        assert "firings" in labels
        assert "sharing ratio" in labels
