"""Section 3.1 analysis: model arithmetic and empirical comparison."""

import pytest

from repro.analysis import (
    CostModelParameters,
    breakeven_turnover,
    compare_matchers,
    non_state_saving_cost,
    state_saving_advantage,
    state_saving_cost,
    turnover,
)
from repro.workloads.programs import closure, hanoi


class TestAnalyticModel:
    def test_paper_breakeven_threshold(self):
        """c3/c1 = 1100/1800 ~ 0.61 (the paper's Section 3.1 result)."""
        assert breakeven_turnover() == pytest.approx(0.611, abs=0.001)

    def test_costs(self):
        assert state_saving_cost(inserts=2, deletes=1) == 2 * 1800 + 1 * 1800
        assert non_state_saving_cost(memory_size=100) == 100 * 1100

    def test_turnover(self):
        assert turnover(2, 2, 800) == pytest.approx(0.005)
        with pytest.raises(ValueError):
            turnover(1, 1, 0)

    def test_paper_factor_of_20(self):
        """At the measured <0.5% turnover, non-state-saving needs to
        recover a factor of about 20."""
        advantage = state_saving_advantage(inserts=2, deletes=2, memory_size=800)
        assert advantage > 20

    def test_breakeven_is_actually_breakeven(self):
        threshold = breakeven_turnover()
        memory = 1000.0
        changes = threshold * memory / 2  # i = d
        assert state_saving_advantage(changes, changes, memory) == pytest.approx(1.0)

    def test_custom_parameters(self):
        params = CostModelParameters(c1=1000, c2=1000, c3=500)
        assert breakeven_turnover(params) == pytest.approx(0.5)


class TestEmpiricalComparison:
    def test_rete_beats_naive_on_closure(self):
        """The join-heavy closure workload: naive re-matching must cost
        far more comparisons than incremental Rete."""
        comparison = compare_matchers(
            lambda **kw: closure.build(closure.chain(7), **kw), "closure"
        )
        assert comparison.measured_advantage > 3.0
        assert comparison.cycles > 0

    def test_fields_populated(self):
        comparison = compare_matchers(hanoi.build, "hanoi")
        assert comparison.program == "hanoi"
        assert comparison.mean_memory_size > 0
        assert comparison.mean_changes_per_cycle > 0
        assert comparison.rete_comparisons > 0
        assert comparison.naive_comparisons > 0

    def test_turnover_reported(self):
        comparison = compare_matchers(hanoi.build, "hanoi")
        assert 0 < comparison.mean_turnover < 1.5
