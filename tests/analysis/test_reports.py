"""Report rendering."""

from repro.analysis import render_series, render_table


class TestRenderTable:
    def test_headers_and_rows_present(self):
        text = render_table(["name", "value"], [["a", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "a" in text and "22" in text

    def test_title_prepended(self):
        text = render_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_numbers_right_aligned(self):
        text = render_table(["name", "value"], [["a", 5], ["bbbb", 12345]])
        rows = text.splitlines()[-2:]
        assert rows[0].endswith("5")
        assert rows[1].endswith("12,345")

    def test_floats_formatted(self):
        text = render_table(["v"], [[3.14159]])
        assert "3.14" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderSeries:
    def test_one_column_per_curve(self):
        text = render_series(
            "procs", [1, 2], {"fast": [1.0, 2.0], "slow": [0.5, 0.7]}
        )
        header = text.splitlines()[0]
        assert "procs" in header and "fast" in header and "slow" in header
        assert "2.00" in text

    def test_precision(self):
        text = render_series("x", [1], {"y": [1234.5678]}, precision=0)
        assert "1,235" in text or "1235" in text


class TestRenderCsv:
    def test_basic(self):
        from repro.analysis import render_csv

        out = render_csv(["a", "b"], [[1, "x"], [2, "y"]])
        assert out.splitlines() == ["a,b", "1,x", "2,y"]

    def test_quoting(self):
        from repro.analysis import render_csv

        out = render_csv(["v"], [['say "hi", ok']])
        assert out.splitlines()[1] == '"say ""hi"", ok"'

    def test_round_trips_through_csv_module(self):
        import csv
        import io

        from repro.analysis import render_csv

        rows = [[1, "plain"], [2, 'quo"te'], [3, "com,ma"]]
        text = render_csv(["n", "s"], rows)
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == ["n", "s"]
        assert parsed[2] == ["2", 'quo"te']
