"""Model-based stateful testing: all four matchers stay in lock-step.

A hypothesis ``RuleBasedStateMachine`` drives the same random operation
sequence -- WME adds/removes and production adds/removes -- against all
four matchers simultaneously, comparing conflict sets after every
operation and auditing Rete's internal memories with the deep checker.
This covers interleavings (e.g. removing a production, then its WMEs,
then re-adding it) that the scripted differential tests do not.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.naive import NaiveMatcher
from repro.oflazer import CombinationMatcher
from repro.ops5.wme import WME, WorkingMemory
from repro.rete import ReteNetwork, check_network
from repro.treat import TreatMatcher

from tests.rete.test_differential import productions, wme_specs


class MatcherLockstep(RuleBasedStateMachine):
    wmes = Bundle("wmes")
    rules = Bundle("rules")

    @initialize()
    def setup(self):
        self.matchers = {
            "naive": NaiveMatcher(),
            "rete": ReteNetwork(),
            "rete-indexed": ReteNetwork(indexed=True),
            "treat": TreatMatcher(),
            "oflazer": CombinationMatcher(),
        }
        self.memory = WorkingMemory()
        self.live_rules: set[str] = set()
        self.counter = 0

    # -- operations -----------------------------------------------------------

    @rule(target=rules, data=st.data())
    def add_production(self, data):
        self.counter += 1
        name = f"p{self.counter}"
        production = data.draw(productions(name))
        for matcher in self.matchers.values():
            matcher.add_production(production)
        self.live_rules.add(name)
        return name

    @rule(name=rules)
    def remove_production(self, name):
        if name not in self.live_rules:
            return
        for matcher in self.matchers.values():
            matcher.remove_production(name)
        self.live_rules.discard(name)

    @rule(target=wmes, spec=wme_specs())
    def add_wme(self, spec):
        cls, attrs = spec
        wme = self.memory.add(WME(cls, attrs))
        for matcher in self.matchers.values():
            matcher.add_wme(wme)
        return wme

    @rule(wme=wmes)
    def remove_wme(self, wme):
        if wme not in self.memory:
            return
        self.memory.remove(wme)
        for matcher in self.matchers.values():
            matcher.remove_wme(wme)

    # -- invariants --------------------------------------------------------------

    @invariant()
    def conflict_sets_agree(self):
        if not hasattr(self, "matchers"):
            return
        reference = self.matchers["naive"].conflict_set.snapshot()
        for name, matcher in self.matchers.items():
            assert matcher.conflict_set.snapshot() == reference, name

    @invariant()
    def rete_internals_consistent(self):
        if not hasattr(self, "matchers"):
            return
        assert check_network(self.matchers["rete"]) == []


MatcherLockstep.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestMatcherLockstep = MatcherLockstep.TestCase
