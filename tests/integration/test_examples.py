"""Every example script runs clean (they are part of the public surface)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()  # every example prints something


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "configurator",
        "speedup_study",
        "architecture_comparison",
        "real_program_traces",
        "four_matchers",
    } <= names
