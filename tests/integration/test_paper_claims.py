"""The claims ledger: the paper's headline sentences as assertions.

Each test quotes one claim from Gupta, Forgy, Newell & Wedig (ISCA
1986) and checks it against this reproduction.  The suite is the
executive summary of EXPERIMENTS.md in runnable form.
"""

import pytest

from repro.analysis import breakeven_turnover, state_saving_advantage
from repro.machines import DADO_RETE, DADO_TREAT, NONVON, OFLAZER, PSM
from repro.psim import MachineConfig, simulate
from repro.psim.metrics import (
    average_concurrency,
    average_speed,
    average_true_speedup,
)
from repro.trace import uniprocessor_ladder
from repro.workloads import PAPER_SYSTEMS, generate_trace


@pytest.fixture(scope="module")
def at_32():
    config = MachineConfig(processors=32)
    return [
        simulate(generate_trace(profile, seed=42, firings=40), config)
        for profile in PAPER_SYSTEMS
    ]


class TestAbstract:
    def test_speedup_from_parallelism_is_quite_limited(self, at_32):
        """'we show that the speed-up from parallelism is quite limited,
        less than 10-fold'"""
        assert average_true_speedup(at_32) < 10.0

    def test_execution_speeds_around_3800_firings_per_sec(self, at_32):
        """'it is possible to obtain execution speeds of about 3800
        rule-firings/sec' (we land in the band)"""
        firing_rate = sum(r.firings_per_second for r in at_32) / len(at_32)
        assert 2000 <= firing_rate <= 5000


class TestSection2:
    def test_interpreter_ladder(self):
        """'the Lisp implementation ... around 8 wme-changes/sec ... the
        Bliss based implementation ... around 40 ... the compiled OPS
        runs at around 200'"""
        ladder = uniprocessor_ladder(mips=1.0)
        assert ladder["lisp-interpreted"] == pytest.approx(8)
        assert ladder["bliss-interpreted"] == pytest.approx(40)
        assert ladder["ops83-compiled"] == pytest.approx(200)


class TestSection3:
    def test_breakeven_at_61_percent(self):
        """'state-saving algorithms are better if the number of
        insertions plus deletions per cycle is less than 61% of the
        stable size of the working memory'"""
        assert breakeven_turnover() == pytest.approx(0.61, abs=0.005)

    def test_factor_of_20_at_measured_turnover(self):
        """'a non state-saving algorithm will have to recover an
        inefficiency factor of about 20 before it breaks even'"""
        # 0.5% turnover, i = d, s = 1000.
        assert state_saving_advantage(2.5, 2.5, 1000) > 20


class TestSection4:
    def test_affected_productions_about_30(self, at_32):
        """'the number of productions that are affected per change to
        working memory is small, about 30'"""
        means = []
        for profile in PAPER_SYSTEMS:
            trace = generate_trace(profile, seed=42, firings=40)
            means.append(trace.mean_affected_productions())
        assert 15 <= sum(means) / len(means) <= 40

    def test_production_parallelism_only_about_5_fold(self):
        """'the actual speed-up that can be obtained using production
        parallelism (even with an unbounded number of processors) is
        much smaller, only about 5-fold'"""
        speedups = []
        for profile in PAPER_SYSTEMS:
            trace = generate_trace(profile, seed=42, firings=40)
            result = simulate(
                trace, MachineConfig(processors=512, granularity="production")
            )
            speedups.append(result.true_speedup)
        assert 3.0 <= sum(speedups) / len(speedups) <= 7.0


class TestSection5:
    def test_one_bus_handles_32_processors(self):
        """'a single high-speed bus should be able to handle the load
        put on it by about 32 processors'"""
        config = MachineConfig()
        assert config.bus_slowdown(32) == 1.0

    def test_hardware_scheduler_needed(self, at_32):
        """'the serial enqueueing and dequeueing of hundreds of
        fine-grain node activations ... is expected to become a
        bottleneck'"""
        trace = generate_trace(PAPER_SYSTEMS[0], seed=42, firings=20)
        hardware = simulate(trace, MachineConfig(processors=32))
        software = simulate(
            trace, MachineConfig(processors=32, scheduler="software")
        )
        assert software.true_speedup < 0.5 * hardware.true_speedup


class TestSection6:
    def test_average_concurrency_near_15_92(self, at_32):
        """'the graphs show that the average concurrency is 15.92'"""
        assert 11 <= average_concurrency(at_32) <= 21

    def test_average_speed_near_9400(self, at_32):
        """'the average execution speed is 9400 wme-changes/sec'"""
        assert 5500 <= average_speed(at_32) <= 12500

    def test_true_speedup_near_8_25_with_lost_factor_1_93(self, at_32):
        """'the average true speed-up is only 8.25 ... The lost factor
        of 1.93 (15.92/8.25)'"""
        speedup = average_true_speedup(at_32)
        lost = average_concurrency(at_32) / speedup
        assert 5.5 <= speedup <= 11.0
        assert 1.6 <= lost <= 2.3


class TestSection7:
    def test_machine_ordering(self):
        """'the [small-processor-count] architectures do significantly
        better' -- PSM > Oflazer > NON-VON > DADO"""
        assert (
            PSM.predicted_speed()
            > OFLAZER.predicted_speed()
            > NONVON.predicted_speed()
            > DADO_TREAT.predicted_speed()
            > DADO_RETE.predicted_speed()
        )

    def test_treat_and_rete_about_the_same_on_dado(self):
        """'the performance of DADO is quite the same when the TREAT
        algorithm is used ... and when the Rete algorithm is used'"""
        ratio = DADO_TREAT.predicted_speed() / DADO_RETE.predicted_speed()
        assert 1.0 < ratio < 1.35


class TestSection8:
    def test_parallel_firings_raise_concurrency(self):
        """'application-level parallelism will certainly help when it
        can be used' (modelled as parallel firings / merged threads)"""
        trace = generate_trace(PAPER_SYSTEMS[0], seed=42, firings=40)
        single = simulate(trace, MachineConfig(processors=32))
        batched = simulate(trace, MachineConfig(processors=32, firing_batch=2))
        assert batched.concurrency > single.concurrency
