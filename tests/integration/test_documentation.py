"""Documentation discipline: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

_MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    # importing __main__ would execute the CLI.
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", _MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", "").startswith("repro"):
                yield name, member


@pytest.mark.parametrize("module_name", _MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = [
        name
        for name, member in _public_members(module)
        if not (member.__doc__ and member.__doc__.strip())
    ]
    assert not undocumented, f"{module_name}: {undocumented}"


def test_public_methods_documented_on_core_classes():
    """Spot-deeper check: the engine/matcher surface is fully documented."""
    from repro.ops5.engine import ProductionSystem
    from repro.psim.machine import MachineConfig
    from repro.rete.network import ReteNetwork

    for cls in (ProductionSystem, ReteNetwork, MachineConfig):
        undocumented = [
            name
            for name, member in vars(cls).items()
            if not name.startswith("_")
            and (inspect.isfunction(member) or isinstance(member, property))
            and not (
                (member.fget.__doc__ if isinstance(member, property) else member.__doc__)
                or ""
            ).strip()
        ]
        assert not undocumented, f"{cls.__name__}: {undocumented}"


def test_top_level_docs_exist():
    import pathlib

    root = pathlib.Path(repro.__file__).parent.parent.parent
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / name
        assert path.exists() and path.stat().st_size > 500, name
