"""The tutorial's code (docs/tutorial.md) runs as written."""

from repro.ops5 import ProductionSystem, WatchListener
from repro.psim import MachineConfig, simulate, sweep_processors
from repro.rete import ReteNetwork, collect_stats
from repro.trace import capture_trace, load_trace, save_trace

SOURCE = """
(literalize order item qty status)
(literalize stock item qty)

(p fill-order
  (order ^item <i> ^qty <q> ^status open)
  (stock ^item <i> ^qty >= <q>)
  -->
  (modify 1 ^status filled)
  (write filled <i>))

(p backorder
  (order ^item <i> ^qty <q> ^status open)
  - (stock ^item <i> ^qty >= <q>)
  -->
  (modify 1 ^status backordered)
  (write backordered <i>))

(p all-handled
  (order)
  - (order ^status open)
  -->
  (halt))
"""

SETUP = [
    ("stock", {"item": "widget", "qty": 10}),
    ("order", {"item": "widget", "qty": 3, "status": "open"}),
    ("order", {"item": "gadget", "qty": 1, "status": "open"}),
]


class TestTutorialStep1:
    def test_run_output(self):
        ps = ProductionSystem(SOURCE)
        ps.load_memory(SETUP)
        result = ps.run()
        # LEX recency: the gadget order is the newest element, so its
        # rule fires first.
        assert result.output == ["backordered gadget", "filled widget"]
        assert result.halted

    def test_watch_listener_accepted(self):
        import io

        stream = io.StringIO()
        ps = ProductionSystem(SOURCE, listener=WatchListener(2, stream))
        ps.load_memory(SETUP)
        ps.run()
        assert "fill-order" in stream.getvalue()


class TestTutorialStep2:
    def test_network_introspection(self):
        ps = ProductionSystem(SOURCE, matcher=ReteNetwork())
        ps.load_memory(SETUP)
        ps.run()
        stats = collect_stats(ps.matcher)
        assert stats.nodes_by_kind["term"] == 3
        assert 0.0 <= stats.sharing_ratio <= 1.0
        assert ps.matcher.stats.mean_affected_productions > 0
        sizes = ps.matcher.state_size()
        assert set(sizes) == {"alpha_wmes", "beta_tokens"}


class TestTutorialSteps3And4:
    def test_trace_capture_save_and_sweep(self, tmp_path):
        trace, run_result, _ = capture_trace(SOURCE, SETUP, name="orders")
        assert run_result.fired == 3
        assert trace.total_changes > 0
        assert trace.serial_cost == trace.total_cost

        path = tmp_path / "orders.json"
        save_trace(trace, path)
        assert load_trace(path).total_tasks == trace.total_tasks

        psm = MachineConfig()
        summary = simulate(trace, psm).summary()
        assert "concurrency" in summary

        results = sweep_processors(trace, psm, [1, 2, 4])
        assert [r.config.processors for r in results] == [1, 2, 4]
        assert results[-1].makespan <= results[0].makespan
