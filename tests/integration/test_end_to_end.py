"""End-to-end: program -> trace -> simulation -> paper-scale metrics."""

import pytest

from repro.machines import measured_results
from repro.psim import MachineConfig, simulate
from repro.psim.metrics import (
    average_concurrency,
    average_speed,
    average_true_speedup,
)
from repro.trace import capture_trace
from repro.workloads import PARALLEL_FIRING_SYSTEMS, generate_trace
from repro.workloads.programs import hanoi


class TestRealProgramPipeline:
    def test_hanoi_trace_to_simulation(self):
        trace, result, _ = capture_trace(
            hanoi.PROGRAM, hanoi.setup(4), name="hanoi", max_cycles=None
        )
        assert result.fired == 30
        assert trace.total_changes == result.total_changes
        simulated = simulate(trace, MachineConfig(processors=8))
        assert simulated.total_changes == trace.total_changes
        assert simulated.true_speedup > 0.5
        assert simulated.concurrency >= 1.0

    def test_parallel_machine_beats_serial_machine(self):
        trace, _, _ = capture_trace(hanoi.PROGRAM, hanoi.setup(5), name="hanoi")
        serial = simulate(trace, MachineConfig(processors=1))
        parallel = simulate(trace, MachineConfig(processors=8))
        assert parallel.makespan < serial.makespan


class TestPaperHeadlineNumbers:
    """Section 6's aggregates at 32 processors x 2 MIPS.

    We assert bands around the published values: the shape must hold,
    absolute numbers may drift with the calibrated generators.
    """

    @pytest.fixture(scope="class")
    def results(self):
        return measured_results(firings=60)

    def test_mean_concurrency_near_16(self, results):
        assert 11.0 <= average_concurrency(results) <= 21.0  # paper: 15.92

    def test_mean_speed_near_9400(self, results):
        assert 5500 <= average_speed(results) <= 12500  # paper: 9400

    def test_mean_true_speedup_near_8(self, results):
        assert 5.5 <= average_true_speedup(results) <= 11.0  # paper: 8.25

    def test_speedup_under_10x(self, results):
        """The abstract's claim: true speed-up stays below ~10-fold."""
        for result in results:
            assert result.true_speedup < 14.0

    def test_lost_factor_near_2(self, results):
        factors = [r.lost_factor for r in results]
        mean = sum(factors) / len(factors)
        assert 1.6 <= mean <= 2.3  # paper: 1.93

    def test_firing_rate_vs_change_rate(self, results):
        """~2.5 changes per firing: firings/sec ~ 0.4x wme-changes/sec."""
        for result in results:
            ratio = result.wme_changes_per_second / result.firings_per_second
            assert 1.5 <= ratio <= 4.5


class TestParallelFirings:
    def test_parallel_firings_raise_concurrency(self):
        for profile in PARALLEL_FIRING_SYSTEMS:
            trace = generate_trace(profile, seed=42, firings=40)
            single = simulate(trace, MachineConfig(processors=32))
            batched = simulate(trace, MachineConfig(processors=32, firing_batch=2))
            assert batched.concurrency > single.concurrency


class TestGranularityOrdering:
    def test_production_parallelism_capped_near_5x(self):
        """Section 4: ~5-fold even with unbounded processors."""
        speedups = []
        for profile in PARALLEL_FIRING_SYSTEMS:
            trace = generate_trace(profile, seed=42, firings=40)
            result = simulate(
                trace,
                MachineConfig(processors=512, granularity="production"),
            )
            speedups.append(result.true_speedup)
        mean = sum(speedups) / len(speedups)
        assert 2.0 <= mean <= 8.0

    def test_node_granularity_beats_production(self):
        profile = PARALLEL_FIRING_SYSTEMS[0]
        trace = generate_trace(profile, seed=42, firings=40)
        production = simulate(
            trace, MachineConfig(processors=64, granularity="production")
        )
        intra = simulate(
            trace, MachineConfig(processors=64, granularity="intra-node")
        )
        assert intra.true_speedup > production.true_speedup
