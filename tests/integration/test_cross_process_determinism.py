"""Cross-process determinism: results must not depend on hash seeds.

Python randomises ``hash(str)`` per process; any code path keying
results off string hashes (set iteration order feeding an RNG, etc.)
would produce different numbers in different processes.  These tests
run the pipeline in subprocesses with different ``PYTHONHASHSEED``
values and demand identical output.
"""

import os
import subprocess
import sys



def _run(args, hashseed):
    env = dict(os.environ, PYTHONHASHSEED=str(hashseed))
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestHashSeedIndependence:
    def test_synthetic_simulation_identical(self):
        args = ["simulate", "--system", "vt", "--processors", "16",
                "--firings", "20"]
        assert _run(args, 1) == _run(args, 4242)

    def test_figures_identical(self):
        args = ["figures", "--firings", "5"]
        assert _run(args, 7) == _run(args, 12345)

    def test_real_program_run_identical(self, tmp_path):
        program = tmp_path / "p.ops5"
        program.write_text(
            "(p pair (n ^v <x>) (n ^v { <y> > <x> }) --> (write pair <x> <y>))"
        )
        wmes = tmp_path / "m.wmes"
        wmes.write_text("(n ^v 1) (n ^v 3) (n ^v 2)")
        args = ["run", str(program), "--wmes", str(wmes)]
        assert _run(args, 11) == _run(args, 2222)
