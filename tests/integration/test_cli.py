"""The command-line interface."""

import pytest

from repro.cli import main

PROGRAM = """
(p go (a ^v <x>) --> (write got <x>) (remove 1))
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.ops5"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def wmes_file(tmp_path):
    path = tmp_path / "mem.wmes"
    path.write_text("(a ^v 7) (a ^v 9)")
    return str(path)


class TestRun:
    def test_runs_program(self, capsys, program_file, wmes_file):
        assert main(["run", program_file, "--wmes", wmes_file]) == 0
        out = capsys.readouterr().out
        assert "got 9" in out and "got 7" in out
        assert "fired 2 productions" in out

    def test_matcher_selection(self, capsys, program_file, wmes_file):
        for matcher in ("rete", "treat", "naive", "compiled"):
            assert main(["run", program_file, "--wmes", wmes_file,
                         "--matcher", matcher]) == 0

    def test_stats_flag(self, capsys, program_file, wmes_file):
        main(["run", program_file, "--wmes", wmes_file, "--stats"])
        out = capsys.readouterr().out
        assert "mean affected productions" in out
        assert "rete:" in out

    def test_max_cycles(self, capsys, program_file, wmes_file):
        assert main(["run", program_file, "--wmes", wmes_file,
                     "--max-cycles", "1"]) == 0
        out = capsys.readouterr().out
        assert "fired 1 productions" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["run", "/nonexistent.ops5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_program_is_error(self, capsys, tmp_path):
        path = tmp_path / "bad.ops5"
        path.write_text("(p broken")
        assert main(["run", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestDemo:
    @pytest.mark.parametrize("name", ["monkey", "hanoi", "blocks"])
    def test_demos_run(self, capsys, name):
        assert main(["demo", name]) == 0
        assert "fired" in capsys.readouterr().out


class TestSimulate:
    def test_synthetic_system(self, capsys):
        assert main(["simulate", "--system", "ilog", "--processors", "8",
                     "--firings", "10"]) == 0
        out = capsys.readouterr().out
        assert "concurrency" in out and "wme-changes/s" in out

    def test_from_program_file(self, capsys, program_file, wmes_file):
        assert main(["simulate", "--file", program_file, "--wmes", wmes_file,
                     "--processors", "4"]) == 0
        assert "true speed-up" in capsys.readouterr().out

    def test_machine_knobs(self, capsys):
        assert main(["simulate", "--system", "ilog", "--firings", "5",
                     "--scheduler", "software",
                     "--granularity", "production",
                     "--firing-batch", "2"]) == 0


class TestTables:
    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "PSM" in out and "DADO" in out

    def test_figures(self, capsys):
        assert main(["figures", "--firings", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6-1" in out and "Figure 6-2" in out


class TestMeasure:
    def test_demo_measurement(self, capsys):
        from repro.cli import main

        assert main(["measure", "--demo", "monkey"]) == 0
        out = capsys.readouterr().out
        assert "static measurement" in out
        assert "dynamic measurement" in out
        assert "productions" in out

    def test_file_measurement(self, capsys, tmp_path):
        from repro.cli import main

        program = tmp_path / "p.ops5"
        program.write_text("(p go (a ^v <x>) --> (remove 1))")
        wmes = tmp_path / "m.wmes"
        wmes.write_text("(a ^v 1)")
        assert main(["measure", "--file", str(program), "--wmes", str(wmes)]) == 0
        out = capsys.readouterr().out
        assert "firings" in out


class TestGantt:
    def test_simulate_gantt_flag(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--system", "ilog", "--firings", "3",
                     "--processors", "2", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "p0 |" in out and "p1 |" in out


class TestParallelReaping:
    """``--matcher parallel`` must never leak worker processes."""

    @staticmethod
    def _assert_no_children():
        import multiprocessing
        import time

        for _ in range(100):
            if not multiprocessing.active_children():
                return
            time.sleep(0.05)
        raise AssertionError(
            f"leaked workers: {multiprocessing.active_children()}"
        )

    def test_demo_success_reaps_workers(self, capsys):
        assert main(["demo", "closure", "--matcher", "parallel",
                     "--workers", "2"]) == 0
        assert "fired" in capsys.readouterr().out
        self._assert_no_children()

    def test_run_success_reaps_workers(self, capsys, program_file, wmes_file):
        assert main(["run", program_file, "--wmes", wmes_file,
                     "--matcher", "parallel", "--workers", "2"]) == 0
        self._assert_no_children()

    def test_error_exit_reaps_workers(self, capsys, tmp_path):
        # The program fails to load *after* the matcher pool exists; the
        # pool must still be reaped on the error path.
        path = tmp_path / "bad.ops5"
        path.write_text("(literalize a x)\n(p r (a ^y 1) --> (halt))")
        assert main(["run", str(path), "--matcher", "parallel",
                     "--workers", "2"]) == 1
        assert "error" in capsys.readouterr().err
        self._assert_no_children()

    def test_workers_rejected_for_serial_matchers(self, capsys, program_file):
        assert main(["run", program_file, "--matcher", "rete",
                     "--workers", "2"]) == 1
        assert "parallel" in capsys.readouterr().err

    @pytest.mark.parametrize("matcher", ["rete-indexed", "oflazer", "parallel"])
    def test_remaining_registry_backends_run(self, capsys, program_file,
                                             wmes_file, matcher):
        argv = ["run", program_file, "--wmes", wmes_file, "--matcher", matcher]
        if matcher == "parallel":
            argv += ["--workers", "0"]
        assert main(argv) == 0
        assert "fired 2 productions" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_over_unix_socket(self, tmp_path):
        import os
        import threading
        import time

        from repro.serve import RuleClient

        sock = str(tmp_path / "serve.sock")
        rcs = []
        thread = threading.Thread(
            target=lambda: rcs.append(main(["serve", "--socket", sock])),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 30
        while not os.path.exists(sock):
            assert time.monotonic() < deadline, "server never bound"
            time.sleep(0.02)
        with RuleClient(sock) as client:
            assert client.ping()["ok"] is True
            sid = client.create_session(program="")
            assert sid in client.list_sessions()
            client.shutdown_server()
        thread.join(timeout=30)
        assert rcs == [0]


class TestVerifyFlag:
    def test_verify_passes_on_clean_run(self, capsys, tmp_path):
        from repro.cli import main

        program = tmp_path / "p.ops5"
        program.write_text("(p go (a ^v <x>) --> (remove 1))")
        wmes = tmp_path / "m.wmes"
        wmes.write_text("(a ^v 1) (a ^v 2)")
        assert main(["run", str(program), "--wmes", str(wmes), "--verify"]) == 0
        assert "verified consistent" in capsys.readouterr().out

    def test_verify_rejects_unverifiable_matchers(self, capsys, tmp_path):
        from repro.cli import main

        program = tmp_path / "p.ops5"
        program.write_text("(p go (a) --> (halt))")
        assert main(["run", str(program), "--matcher", "treat", "--verify"]) == 2

    def test_verify_covers_the_compiled_kernel(self, capsys, tmp_path):
        from repro.cli import main

        program = tmp_path / "p.ops5"
        program.write_text("(p go (a ^v <x>) --> (remove 1))")
        wmes = tmp_path / "m.wmes"
        wmes.write_text("(a ^v 1) (a ^v 2)")
        assert main(["run", str(program), "--wmes", str(wmes),
                     "--matcher", "compiled", "--verify"]) == 0
        assert "verified consistent" in capsys.readouterr().out


class TestMatchersCommand:
    def test_lists_every_registered_matcher_and_transport(self, capsys):
        from repro.cli import main
        from repro.ops5.engine import MATCHER_NAMES

        assert main(["matchers"]) == 0
        out = capsys.readouterr().out
        for name in MATCHER_NAMES:
            assert name in out
        assert "generated kernel" in out  # the one-line descriptions
        for transport in ("pipe", "ring", "auto"):
            assert transport in out


class TestProfileCommand:
    def test_profile_demo_emits_trace_and_metrics(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        events = tmp_path / "events.jsonl"
        assert main(["profile", "--demo", "hanoi", "--trace-out", str(trace),
                     "--metrics-out", str(metrics),
                     "--events-out", str(events)]) == 0
        out = capsys.readouterr().out
        assert "metrics consistent" in out
        document = json.loads(trace.read_text())
        assert document["traceEvents"]
        phases = {row["ph"] for row in document["traceEvents"]}
        assert "X" in phases and "M" in phases
        data = json.loads(metrics.read_text())
        assert data["schema"] == "repro.metrics/1"
        assert data["engine"]["wme_changes"] == data["match"]["wme_changes"]
        assert events.read_text().count("\n") == data["recorder"]["events"]

    def test_profile_parallel_labels_shard_lanes(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        assert main(["profile", "--demo", "closure", "--matcher", "parallel",
                     "--workers", "0", "--trace-out", str(trace)]) == 0
        assert "metrics consistent" in capsys.readouterr().out
        rows = json.loads(trace.read_text())["traceEvents"]
        names = {row["args"]["name"] for row in rows
                 if row["ph"] == "M" and row["name"] == "thread_name"}
        assert "engine" in names
        assert any(name.startswith("shard") for name in names)
        assert any(row["name"] == "shard-batch" for row in rows)

    def test_profile_file_with_wmes(self, capsys, program_file, wmes_file,
                                    tmp_path):
        metrics = tmp_path / "m.json"
        assert main(["profile", "--file", program_file, "--wmes", wmes_file,
                     "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "fired 2 productions" in out

    def test_profile_requires_a_workload(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile"])
