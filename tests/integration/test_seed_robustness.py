"""The headline bands hold across generator seeds, not just seed 42.

The calibrated workloads are random; a reproduction whose conclusions
depended on one lucky seed would be fragile.  These tests re-derive the
Section 6 aggregates for several seeds and assert the bands.
"""

import pytest

from repro.psim import MachineConfig, simulate
from repro.psim.metrics import average_concurrency, average_true_speedup
from repro.workloads import PAPER_SYSTEMS, generate_trace


@pytest.fixture(scope="module", params=[7, 1234, 987654])
def results(request):
    config = MachineConfig(processors=32)
    return [
        simulate(generate_trace(profile, seed=request.param, firings=40), config)
        for profile in PAPER_SYSTEMS
    ]


class TestSeedRobustness:
    def test_concurrency_band(self, results):
        assert 10.0 <= average_concurrency(results) <= 22.0

    def test_true_speedup_band(self, results):
        assert 5.0 <= average_true_speedup(results) <= 12.0

    def test_lost_factor_band(self, results):
        factors = [r.lost_factor for r in results]
        assert 1.5 <= sum(factors) / len(factors) <= 2.4

    def test_speedup_under_the_abstract_ceiling(self, results):
        # "less than 10-fold" as the average claim; individual systems
        # may exceed it slightly at 32 processors.
        assert average_true_speedup(results) < 12.0

    def test_ilog_always_least_parallel(self, results):
        by_name = {r.trace_name: r for r in results}
        ilog = by_name["ilog"].concurrency
        assert all(
            ilog <= r.concurrency + 1e-9 for r in results
        ), "ilog should sit at the bottom of Figure 6-1 at every seed"
