"""Scale checks: the library holds up beyond toy sizes."""

import pytest

from repro.psim import MachineConfig, simulate
from repro.rete import ReteNetwork, assert_network_consistent
from repro.trace import capture_trace
from repro.workloads import generate_trace, profile_named
from repro.workloads.programs import closure, hanoi


class TestEngineScale:
    def test_hanoi_8_disks(self):
        """255 moves, 510 firings, deep goal stack."""
        result = hanoi.run(8)
        moves = [line for line in result.output if line.startswith("move")]
        assert len(moves) == 255

    def test_closure_chain_20(self):
        """210 derived facts; beta memories hold thousands of tokens."""
        system = closure.build(closure.chain(20))
        system.run(5000)
        assert closure.derived_facts(system) == 210

    def test_network_consistent_after_big_run(self):
        net = ReteNetwork()
        system = closure.build(closure.chain(12), matcher=net)
        system.run(5000)
        assert_network_consistent(net)

    def test_thousand_wme_working_memory(self):
        from repro.ops5 import ProductionSystem

        ps = ProductionSystem(
            "(p pair (n ^v <x>) (m ^v <x>) --> (halt))"
        )
        for v in range(1000):
            ps.add("n", v=v)
        for v in range(0, 1000, 10):
            ps.add("m", v=v)
        assert len(ps.conflict_set) == 100


class TestSimulatorScale:
    def test_long_synthetic_run(self):
        """400 firings x ~60 tasks/change ~ 60k tasks through the DES."""
        trace = generate_trace(profile_named("vt"), seed=5, firings=400)
        result = simulate(trace, MachineConfig(processors=64))
        assert result.total_firings == 400
        assert result.makespan > 0
        assert result.concurrency <= 64

    def test_capture_scales_with_run_length(self):
        trace, run_result, _ = capture_trace(
            hanoi.PROGRAM, hanoi.setup(7), name="hanoi-7"
        )
        assert run_result.fired == 254  # 127 moves + goal bookkeeping
        assert trace.total_tasks > 3000
        trace.validate()

    def test_many_processor_sweep_is_stable(self):
        trace = generate_trace(profile_named("mud"), seed=5, firings=60)
        previous = None
        for processors in (64, 128, 256):
            result = simulate(trace, MachineConfig(processors=processors, buses=4))
            if previous is not None:
                # Fully saturated: more processors change nothing.
                assert result.makespan == pytest.approx(previous, rel=0.1)
            previous = result.makespan
