"""The PSM's measured (simulated) numbers and model scaling."""

import pytest

from repro.machines import PSM, measured_results, measured_speed
from repro.machines.base import MachineModel
from repro.psim import MachineConfig


class TestMeasuredResults:
    def test_one_result_per_system(self):
        results = measured_results(firings=20)
        assert len(results) == 6
        names = {r.trace_name for r in results}
        assert "r1-soar" in names and "ilog" in names

    def test_custom_machine_respected(self):
        slow = measured_speed(MachineConfig(processors=2), firings=20)
        fast = measured_speed(MachineConfig(processors=32), firings=20)
        assert fast > 2 * slow

    def test_deterministic(self):
        assert measured_speed(firings=20) == measured_speed(firings=20)


class TestModelScaling:
    def test_speed_linear_in_mips(self):
        base = PSM.predicted_speed()
        doubled = MachineModel(
            name="x", algorithm="rete", processors=32, processor_mips=4.0,
            processor_bits=32, topology="shared-bus",
            exploitable_parallelism=PSM.exploitable_parallelism,
            implementation_penalty=PSM.implementation_penalty,
        ).predicted_speed()
        assert doubled == pytest.approx(2 * base)

    def test_speed_inverse_in_serial_cost(self):
        fast_program = PSM.predicted_speed(serial_instructions_per_change=900)
        slow_program = PSM.predicted_speed(serial_instructions_per_change=3600)
        assert fast_program == pytest.approx(4 * slow_program)

    def test_penalty_hurts(self):
        lighter = MachineModel(
            name="x", algorithm="rete", processors=32, processor_mips=2.0,
            processor_bits=32, topology="shared-bus",
            exploitable_parallelism=16.3, implementation_penalty=1.0,
        )
        assert lighter.predicted_speed() > PSM.predicted_speed()
