"""Architecture models and the Section 7 comparison."""

import pytest

from repro.machines import (
    ALL_MACHINES,
    DADO_RETE,
    DADO_TREAT,
    NONVON,
    OFLAZER,
    OFLAZER_SPEED_RANGE,
    PESA1,
    PSM,
    comparison_table,
    measured_speed,
    render_table,
    speed_ratios,
)


class TestCalibration:
    @pytest.mark.parametrize(
        "machine", [DADO_RETE, DADO_TREAT, NONVON, OFLAZER, PSM]
    )
    def test_models_reproduce_published_predictions(self, machine):
        assert machine.calibration_error() < 0.05

    def test_oflazer_inside_published_range(self):
        low, high = OFLAZER_SPEED_RANGE
        assert low <= OFLAZER.predicted_speed() <= high

    def test_pesa_has_no_published_number(self):
        assert PESA1.published_speed is None
        assert PESA1.calibration_error() is None


class TestShape:
    def test_who_wins_ordering(self):
        """The paper's Section 7 ordering: PSM > Oflazer > NON-VON > DADO."""
        speeds = {m.name: m.predicted_speed() for m in ALL_MACHINES}
        assert speeds["PSM (this paper)"] > speeds["Oflazer's machine"]
        assert speeds["Oflazer's machine"] > speeds["NON-VON"]
        assert speeds["NON-VON"] > speeds["DADO (TREAT)"]
        assert speeds["DADO (TREAT)"] > speeds["DADO (Rete)"]

    def test_small_machines_beat_massive_trees_by_20x_plus(self):
        assert PSM.predicted_speed() / DADO_TREAT.predicted_speed() > 20
        assert PSM.predicted_speed() / NONVON.predicted_speed() > 4

    def test_treat_vs_rete_close_on_dado(self):
        """Paper: on the massively parallel machines the state-storing
        strategy matters little."""
        ratio = DADO_TREAT.predicted_speed() / DADO_RETE.predicted_speed()
        assert 1.0 < ratio < 1.5

    def test_speed_ratios_normalised_to_psm(self):
        ratios = speed_ratios()
        assert ratios["PSM (this paper)"] == pytest.approx(1.0)
        assert ratios["DADO (Rete)"] < 0.05


class TestTable:
    def test_rows_cover_all_machines(self):
        rows = comparison_table()
        assert [r.machine for r in rows] == [m.name for m in ALL_MACHINES]

    def test_published_labels(self):
        rows = {r.machine: r for r in comparison_table()}
        assert rows["DADO (Rete)"].published_label == "175"
        assert rows["Oflazer's machine"].published_label == "4500-7000"
        assert rows["PESA-1"].published_label == "not published"

    def test_render_contains_every_machine(self):
        text = render_table()
        for machine in ALL_MACHINES:
            assert machine.name in text


class TestMeasuredPsm:
    def test_measured_speed_in_paper_band(self):
        """The DES-measured PSM average lands near the paper's 9400."""
        speed = measured_speed(firings=40)
        assert 5500 <= speed <= 12000
