"""The partitioned tree-machine simulation (DADO / NON-VON style)."""

import pytest

from repro.machines import (
    DADO_TREE,
    NONVON_TREE,
    TreeMachineConfig,
    measured_speed,
    simulate_tree,
)
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace
from repro.workloads import PAPER_SYSTEMS, generate_trace


def _tiny_trace():
    """One change: root(10) + two productions (100 and 20)."""
    change = ChangeTrace("add", "c", [
        Task(index=0, kind="root", cost=10, deps=(), node_id=0),
        Task(index=1, kind="join", cost=100, deps=(0,), node_id=1,
             productions=("heavy",)),
        Task(index=2, kind="join", cost=20, deps=(0,), node_id=2,
             productions=("light",)),
    ])
    return Trace(name="t", firings=[FiringTrace("p", [change])])


class TestModelArithmetic:
    def test_two_partitions_take_the_max(self):
        config = TreeMachineConfig(
            partitions=2, pe_mips=1.0, datapath_penalty=1.0,
            tree_depth=0,
        )
        result = simulate_tree(_tiny_trace(), config)
        # LPT puts heavy and light on different partitions; the shared
        # root work (10) replicates into both.  Makespan = max(110, 30).
        assert result.makespan == pytest.approx(110.0)
        assert result.busy_time == pytest.approx(140.0)

    def test_single_partition_serialises(self):
        config = TreeMachineConfig(
            partitions=1, pe_mips=1.0, datapath_penalty=1.0, tree_depth=0
        )
        result = simulate_tree(_tiny_trace(), config)
        assert result.makespan == pytest.approx(130.0)

    def test_penalty_scales_compute(self):
        base = TreeMachineConfig(partitions=2, pe_mips=1.0,
                                 datapath_penalty=1.0, tree_depth=0)
        slow = TreeMachineConfig(partitions=2, pe_mips=1.0,
                                 datapath_penalty=2.0, tree_depth=0)
        assert (
            simulate_tree(_tiny_trace(), slow).makespan
            == pytest.approx(2 * simulate_tree(_tiny_trace(), base).makespan)
        )

    def test_communication_adds_per_change(self):
        near = TreeMachineConfig(partitions=2, pe_mips=1.0,
                                 datapath_penalty=1.0, tree_depth=0)
        deep = TreeMachineConfig(partitions=2, pe_mips=1.0,
                                 datapath_penalty=1.0, tree_depth=10,
                                 broadcast_cost=5.0, funnel_cost=5.0)
        delta = (simulate_tree(_tiny_trace(), deep).makespan
                 - simulate_tree(_tiny_trace(), near).makespan)
        assert delta == pytest.approx(100.0)  # 10 levels x (5 + 5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TreeMachineConfig(partitions=0)
        with pytest.raises(ValueError):
            TreeMachineConfig(datapath_penalty=0.5)
        with pytest.raises(ValueError):
            TreeMachineConfig(pe_mips=0)


class TestCalibration:
    @pytest.fixture(scope="class")
    def speeds(self):
        traces = [generate_trace(p, seed=42, firings=40) for p in PAPER_SYSTEMS]
        return {
            "dado": [simulate_tree(t, DADO_TREE).wme_changes_per_second for t in traces],
            "nonvon": [simulate_tree(t, NONVON_TREE).wme_changes_per_second for t in traces],
        }

    def test_dado_lands_near_cited_band(self, speeds):
        mean = sum(speeds["dado"]) / len(speeds["dado"])
        assert 150 <= mean <= 260  # cited: 175 (Rete) - 215 (TREAT)

    def test_nonvon_lands_near_cited_number(self, speeds):
        mean = sum(speeds["nonvon"]) / len(speeds["nonvon"])
        assert 1500 <= mean <= 2500  # cited: 2000

    def test_psm_beats_both_by_an_order_of_magnitude(self, speeds):
        psm = measured_speed(firings=40)
        dado = sum(speeds["dado"]) / len(speeds["dado"])
        nonvon = sum(speeds["nonvon"]) / len(speeds["nonvon"])
        assert psm > 20 * dado
        assert psm > 3 * nonvon

    def test_partition_utilization_is_low(self, speeds):
        """The paper's Section 7.5 point (1): the massive machine's
        processors mostly idle because intrinsic parallelism is small."""
        trace = generate_trace(PAPER_SYSTEMS[0], seed=42, firings=40)
        result = simulate_tree(trace, DADO_TREE)
        assert result.partition_utilization < DADO_TREE.partitions * 0.75
