"""Rete network semantics: joins, negation, incremental updates."""

import pytest

from repro.ops5 import Ops5Error, parse_program
from repro.ops5.wme import WME, WorkingMemory, make_wme
from repro.rete import ReteNetwork


def _net(source: str) -> tuple[ReteNetwork, WorkingMemory]:
    net = ReteNetwork()
    for production in parse_program(source).productions:
        net.add_production(production)
    return net, WorkingMemory()


def _add(net, memory, cls, **attrs):
    wme = memory.add(WME(cls, attrs))
    net.add_wme(wme)
    return wme


def _keys(net):
    return net.conflict_set.snapshot()


class TestSingleProduction:
    SRC = "(p find (goal ^want <c>) (block ^color <c>) --> (halt))"

    def test_join_on_shared_variable(self):
        net, memory = _net(self.SRC)
        goal = _add(net, memory, "goal", want="red")
        _add(net, memory, "block", color="blue")
        assert len(net.conflict_set) == 0
        block = _add(net, memory, "block", color="red")
        assert _keys(net) == {("find", (goal.timetag, block.timetag))}

    def test_remove_retracts(self):
        net, memory = _net(self.SRC)
        goal = _add(net, memory, "goal", want="red")
        block = _add(net, memory, "block", color="red")
        assert len(net.conflict_set) == 1
        net.remove_wme(block)
        assert len(net.conflict_set) == 0
        net.remove_wme(goal)
        assert len(net.conflict_set) == 0

    def test_either_arrival_order_works(self):
        net, memory = _net(self.SRC)
        block = _add(net, memory, "block", color="red")
        goal = _add(net, memory, "goal", want="red")
        assert _keys(net) == {("find", (goal.timetag, block.timetag))}

    def test_remove_unknown_wme_rejected(self):
        net, _ = _net(self.SRC)
        stray = make_wme("block", color="red")
        stray.timetag = 99
        with pytest.raises(Ops5Error):
            net.remove_wme(stray)

    def test_bindings_delivered_to_instantiation(self):
        net, memory = _net(self.SRC)
        _add(net, memory, "goal", want="red")
        _add(net, memory, "block", color="red")
        [inst] = net.conflict_set.members()
        assert inst.bindings == {"c": "red"}


class TestCrossProducts:
    def test_no_tests_yields_cross_product(self):
        net, memory = _net("(p all (a) (b) --> (halt))")
        for _ in range(3):
            _add(net, memory, "a")
        for _ in range(2):
            _add(net, memory, "b")
        assert len(net.conflict_set) == 6

    def test_same_class_pairs(self):
        net, memory = _net("(p pair (n ^v <x>) (n ^v { <y> > <x> }) --> (halt))")
        _add(net, memory, "n", v=1)
        _add(net, memory, "n", v=3)
        _add(net, memory, "n", v=2)
        # ordered pairs with y > x: (1,3), (1,2), (2,3)
        assert len(net.conflict_set) == 3


class TestNegation:
    SRC = """
      (p quiet (goal ^want <c>) - (block ^color <c>) --> (halt))
    """

    def test_negation_blocks_and_unblocks(self):
        net, memory = _net(self.SRC)
        _add(net, memory, "goal", want="red")
        assert len(net.conflict_set) == 1
        blocker = _add(net, memory, "block", color="red")
        assert len(net.conflict_set) == 0
        net.remove_wme(blocker)
        assert len(net.conflict_set) == 1

    def test_negation_counts_multiple_blockers(self):
        net, memory = _net(self.SRC)
        _add(net, memory, "goal", want="red")
        b1 = _add(net, memory, "block", color="red")
        b2 = _add(net, memory, "block", color="red")
        net.remove_wme(b1)
        assert len(net.conflict_set) == 0  # b2 still blocks
        net.remove_wme(b2)
        assert len(net.conflict_set) == 1

    def test_unrelated_blocker_ignored(self):
        net, memory = _net(self.SRC)
        _add(net, memory, "goal", want="red")
        _add(net, memory, "block", color="blue")
        assert len(net.conflict_set) == 1

    def test_trailing_negation_with_predicate(self):
        net, memory = _net(
            "(p max (n ^v <x>) - (n ^v > <x>) --> (halt))"
        )
        _add(net, memory, "n", v=1)
        _add(net, memory, "n", v=5)
        _add(net, memory, "n", v=3)
        [inst] = net.conflict_set.members()
        assert inst.bindings["x"] == 5

    def test_negation_then_positive_with_same_name(self):
        # A variable name first used inside a negated CE is local to it;
        # the later positive CE binds it independently.
        net, memory = _net(
            "(p scoped (goal) - (taken ^v <w>) (free ^v <w>) --> (halt))"
        )
        _add(net, memory, "goal")
        _add(net, memory, "free", v=7)
        assert len(net.conflict_set) == 1
        _add(net, memory, "taken", v=99)  # matches the wildcard: blocks
        assert len(net.conflict_set) == 0


class TestIncrementalConsistency:
    def test_add_remove_roundtrip_restores_state(self):
        net, memory = _net(
            "(p three (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"
        )
        a = _add(net, memory, "a", v=1)
        b = _add(net, memory, "b", v=1)
        before = net.state_size()
        c = _add(net, memory, "c", v=1)
        assert len(net.conflict_set) == 1
        net.remove_wme(c)
        assert len(net.conflict_set) == 0
        assert net.state_size() == before

    def test_wme_count_tracked(self):
        net, memory = _net("(p x (a) --> (halt))")
        wme = _add(net, memory, "a")
        assert net.wme_count == 1
        net.remove_wme(wme)
        assert net.wme_count == 0

    def test_stats_record_affected_productions(self):
        net, memory = _net(
            "(p one (a ^v 1) --> (halt)) (p two (a ^v <x>) --> (halt))"
        )
        _add(net, memory, "a", v=1)
        assert net.stats.changes[-1].affected_productions == 2
        _add(net, memory, "a", v=2)
        assert net.stats.changes[-1].affected_productions == 1
        _add(net, memory, "unrelated")
        assert net.stats.changes[-1].affected_productions == 0
