"""Node-level edge cases: direct exercises of the Rete node classes."""

import pytest

from repro.ops5 import Ops5Error, parse_program
from repro.ops5.wme import WME, WorkingMemory
from repro.rete import ReteNetwork, assert_network_consistent
from repro.rete.nodes import DELETE, AlphaMemory, JoinNode, NegativeNode


def _session(source):
    net = ReteNetwork()
    for production in parse_program(source).productions:
        net.add_production(production)
    return net, WorkingMemory()


def _add(net, memory, cls, **attrs):
    wme = memory.add(WME(cls, attrs))
    net.add_wme(wme)
    return wme


class TestJoinNodeInternals:
    def test_eq_and_residual_split(self):
        net, _ = _session(
            "(p x (a ^v <q>) (b ^v <q> ^w > <q>) --> (halt))"
        )
        joins = [
            n for n in net.share_registry.values()
            if isinstance(n, JoinNode) and n.ce_index == 1
        ]
        [join] = joins
        assert len(join.eq_tests) == 1
        assert len(join.residual_tests) == 1
        assert join.eq_tests[0].own_attribute == "v"

    def test_intra_ce_predicate_not_indexed(self):
        # A predicate against a locally bound variable references the
        # candidate WME itself (other_ce == own index): never hashable.
        net, _ = _session("(p x (a) (b ^u <k> ^v > <k>) --> (halt))")
        [join] = [
            n for n in net.share_registry.values()
            if isinstance(n, JoinNode) and n.ce_index == 1
        ]
        assert join.eq_tests == ()

    def test_cross_product_join_has_no_tests(self):
        net, memory = _session("(p x (a) (b) --> (halt))")
        [join] = [
            n for n in net.share_registry.values()
            if isinstance(n, JoinNode) and n.ce_index == 1
        ]
        assert join.tests == ()
        _add(net, memory, "a")
        _add(net, memory, "b")
        assert len(net.conflict_set) == 1


class TestNegativeNodeInternals:
    def test_counts_tracked_per_token(self):
        net, memory = _session(
            "(p x (goal ^want <c>) - (block ^color <c>) --> (halt))"
        )
        _add(net, memory, "goal", want="red")
        _add(net, memory, "goal", want="blue")
        blocker = _add(net, memory, "block", color="red")
        [neg] = [n for n in net.share_registry.values() if isinstance(n, NegativeNode)]
        counts = sorted(count for _t, count in neg.stored.values())
        assert counts == [0, 1]  # blue unblocked, red blocked
        net.remove_wme(blocker)
        counts = sorted(count for _t, count in neg.stored.values())
        assert counts == [0, 0]
        assert_network_consistent(net)

    def test_negation_against_same_amem_as_positive(self):
        # One alpha memory feeds both a join and a negative node of the
        # same production: (a X) with no *other* (a X).
        net, memory = _session(
            "(p unique (item ^v <x>) - (item ^v <x> ^tag dup) --> (halt))"
        )
        _add(net, memory, "item", v=1)
        assert len(net.conflict_set) == 1
        _add(net, memory, "item", v=1, tag="dup")
        # The dup element blocks the v=1 match but also matches the
        # positive CE itself (and isn't blocked by itself? it is: its
        # own tag matches the negation with x=1).
        assert_network_consistent(net)


class TestAlphaMemoryCorruptedState:
    def test_delete_miss_raises_ops5error_with_context(self):
        # A delete reaching a memory that never stored the WME means the
        # network state is corrupted; the node must fail loudly with
        # node/WME context, not leak a bare KeyError.
        net, memory = _session("(p x (block ^color red) --> (halt))")
        [amem] = [
            n for n in net.share_registry.values() if isinstance(n, AlphaMemory)
        ]
        ghost = WME("block", {"color": "red"})
        ghost.timetag = 999
        with pytest.raises(Ops5Error) as excinfo:
            amem.activate(ghost, DELETE)
        message = str(excinfo.value)
        assert f"node {amem.id}" in message
        assert "t999" in message
        assert "block" in message
        assert "corrupted" in message

    def test_stored_wmes_still_delete_cleanly(self):
        net, memory = _session("(p x (block ^color red) --> (halt))")
        wme = _add(net, memory, "block", color="red")
        [amem] = [
            n for n in net.share_registry.values() if isinstance(n, AlphaMemory)
        ]
        assert wme.timetag in amem.items
        net.remove_wme(wme)
        assert wme.timetag not in amem.items
        assert_network_consistent(net)


class TestAlphaMemoryBookkeeping:
    def test_production_names_shrink_on_removal(self):
        net, _ = _session("""
          (p one (block ^color red) --> (halt))
          (p two (block ^color red) --> (halt))
        """)
        [amem] = [n for n in net.share_registry.values() if isinstance(n, AlphaMemory)]
        assert amem.production_names == {"one", "two"}
        net.remove_production("one")
        # The shared memory survives; the name set is advisory and may
        # retain stale names only if nobody prunes -- ours prunes via
        # rebuild on next add; assert at minimum the live name remains.
        assert "two" in amem.production_names

    def test_disjunction_chains_shared_by_value_set(self):
        net, _ = _session("""
          (p one (block ^color << red green >>) --> (halt))
          (p two (block ^color << red green >>) --> (halt))
          (p three (block ^color << red blue >>) --> (halt))
        """)
        memories = [n for n in net.share_registry.values() if isinstance(n, AlphaMemory)]
        assert len(memories) == 2  # {red,green} shared; {red,blue} separate


class TestDetachEdgeCases:
    def test_class_root_survives_until_last_user(self):
        net, _ = _session("""
          (p one (block ^color red) --> (halt))
          (p two (block ^size 3) --> (halt))
        """)
        net.remove_production("one")
        assert "block" in net.class_roots
        net.remove_production("two")
        assert net.class_roots == {}

    def test_matching_still_works_after_sibling_detach(self):
        net, memory = _session("""
          (p long (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))
          (p short (a ^v <x>) (b ^v <x>) --> (halt))
        """)
        net.remove_production("long")
        _add(net, memory, "a", v=1)
        _add(net, memory, "b", v=1)
        _add(net, memory, "c", v=1)  # class root for c is gone: no-op
        assert {key[0] for key in net.conflict_set.snapshot()} == {"short"}
        assert_network_consistent(net)
