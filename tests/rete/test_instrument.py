"""Activation instrumentation: the trace the simulator consumes."""

from repro.ops5 import parse_program
from repro.ops5.wme import WME, WorkingMemory
from repro.rete import ReteNetwork, RecordingListener

SRC = """
(p find (goal ^want <c>) (block ^color <c>) --> (halt))
"""


def _run(events_for):
    listener = RecordingListener()
    net = ReteNetwork(listener)
    for production in parse_program(SRC).productions:
        net.add_production(production)
    memory = WorkingMemory()
    for cls, attrs in events_for:
        wme = memory.add(WME(cls, attrs))
        net.add_wme(wme)
    return listener, net


class TestRecording:
    def test_one_group_per_change(self):
        listener, _ = _run([("goal", {"want": "red"}), ("block", {"color": "red"})])
        assert len(listener.changes) == 2
        kinds = [(kind, cls) for kind, cls, _ in listener.changes]
        assert kinds == [("add", "goal"), ("add", "block")]

    def test_compile_time_population_is_quiet(self):
        listener = RecordingListener()
        net = ReteNetwork(listener)
        memory = WorkingMemory()
        wme = memory.add(WME("block", {"color": "red"}))
        net.add_wme(wme)
        before = len(listener.changes)
        net.add_production(parse_program(SRC).productions[0])
        assert len(listener.changes) == before

    def test_event_forest_structure(self):
        listener, _ = _run([("goal", {"want": "red"}), ("block", {"color": "red"})])
        _, _, events = listener.changes[1]
        by_seq = {e.seq for e in events}
        roots = [e for e in events if e.parent is None]
        assert len(roots) == 1
        assert roots[0].node_kind == "root"
        for event in events:
            if event.parent is not None:
                assert event.parent in by_seq
                assert event.parent < event.seq  # seq is topological

    def test_activation_kinds_cover_the_pipeline(self):
        listener, _ = _run([("goal", {"want": "red"}), ("block", {"color": "red"})])
        _, _, events = listener.changes[1]
        kinds = {e.node_kind for e in events}
        assert {"root", "amem", "join", "bmem", "term"} <= kinds

    def test_terminal_event_names_production(self):
        listener, _ = _run([("goal", {"want": "red"}), ("block", {"color": "red"})])
        _, _, events = listener.changes[1]
        [term] = [e for e in events if e.node_kind == "term"]
        assert term.production == "find"
        assert term.direction == "add"

    def test_join_counters(self):
        listener, _ = _run(
            [("goal", {"want": "red"}), ("goal", {"want": "red"}), ("block", {"color": "red"})]
        )
        _, _, events = listener.changes[2]
        [join] = [e for e in events if e.node_kind == "join"]
        assert join.side == "right"
        assert join.comparisons == 2  # two goal tokens examined
        assert join.outputs == 2

    def test_deletions_mirror_additions(self):
        listener, net = _run([("goal", {"want": "red"}), ("block", {"color": "red"})])
        add_events = listener.changes[1][2]
        wme = next(iter(net.current_wmes()))  # whichever; remove the block
        block = [w for w in net.current_wmes() if w.cls == "block"][0]
        net.remove_wme(block)
        kind, cls, delete_events = listener.changes[-1]
        assert kind == "remove"
        assert {e.node_kind for e in delete_events} == {e.node_kind for e in add_events}
        assert all(e.direction == "delete" for e in delete_events)

    def test_stats_match_event_counts(self):
        listener, net = _run([("goal", {"want": "red"}), ("block", {"color": "red"})])
        record = net.stats.changes[-1]
        _, _, events = listener.changes[-1]
        assert record.node_activations == len(events)
        assert record.comparisons == sum(e.comparisons for e in events)
