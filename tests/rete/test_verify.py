"""The network consistency checker: a deep oracle over internal state."""

from hypothesis import given, settings

from repro.ops5 import parse_program
from repro.ops5.wme import WME, WorkingMemory
from repro.rete import ReteNetwork, assert_network_consistent, check_network

from tests.rete.test_differential import change_scripts, programs


def _loaded(source, items):
    net = ReteNetwork()
    for production in parse_program(source).productions:
        net.add_production(production)
    memory = WorkingMemory()
    wmes = []
    for cls, attrs in items:
        wme = memory.add(WME(cls, attrs))
        net.add_wme(wme)
        wmes.append(wme)
    return net, wmes


class TestChecker:
    def test_clean_network_passes(self):
        net, _ = _loaded(
            "(p find (goal ^want <c>) (block ^color <c>) --> (halt))",
            [("goal", {"want": "red"}), ("block", {"color": "red"})],
        )
        assert check_network(net) == []

    def test_negation_state_audited(self):
        net, wmes = _loaded(
            "(p quiet (goal ^want <c>) - (block ^color <c>) --> (halt))",
            [("goal", {"want": "red"}), ("block", {"color": "red"}),
             ("block", {"color": "red"})],
        )
        assert check_network(net) == []
        net.remove_wme(wmes[1])
        assert check_network(net) == []

    def test_detects_corrupted_alpha_memory(self):
        net, wmes = _loaded(
            "(p find (block ^color red) --> (halt))",
            [("block", {"color": "red"})],
        )
        from repro.rete.nodes import AlphaMemory

        [amem] = [n for n in net.share_registry.values() if isinstance(n, AlphaMemory)]
        del amem.items[wmes[0].timetag]  # sabotage
        problems = check_network(net)
        assert problems and "alpha memory" in problems[0]

    def test_detects_corrupted_beta_memory(self):
        net, _ = _loaded(
            "(p find (a ^v <x>) (b ^v <x>) --> (halt))",
            [("a", {"v": 1}), ("b", {"v": 1})],
        )
        from repro.rete.nodes import BetaMemory

        memories = [
            n for n in net.share_registry.values()
            if isinstance(n, BetaMemory) and n.items
        ]
        memories[0].items.clear()  # sabotage
        assert check_network(net)

    def test_detects_stale_conflict_set(self):
        net, _ = _loaded(
            "(p find (a) --> (halt))",
            [("a", {})],
        )
        for instantiation in list(net.conflict_set):
            net.conflict_set.delete(instantiation)  # sabotage
        problems = check_network(net)
        assert problems and "terminal" in problems[0]

    def test_assert_raises_with_detail(self):
        net, wmes = _loaded("(p find (a) --> (halt))", [("a", {})])
        net.conflict_set.clear()
        import pytest

        with pytest.raises(AssertionError):
            assert_network_consistent(net)


@settings(max_examples=60, deadline=None)
@given(program=programs(), script=change_scripts())
def test_internal_state_always_consistent(program, script):
    """After any add/remove sequence, every memory equals its recomputed
    ground truth -- a much deeper check than conflict-set equality."""
    net = ReteNetwork()
    for production in program:
        net.add_production(production)
    memory = WorkingMemory()
    live = []
    for op in script:
        if op[0] == "add":
            cls, attrs = op[1]
            wme = memory.add(WME(cls, attrs))
            net.add_wme(wme)
            live.append(wme)
        else:
            wme = live.pop(op[1])
            memory.remove(wme)
            net.remove_wme(wme)
        assert_network_consistent(net)
