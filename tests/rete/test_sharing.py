"""Node sharing: identical tests and prefixes compile to shared nodes."""

from repro.ops5 import parse_program
from repro.rete import ReteNetwork, collect_stats
from repro.rete.nodes import AlphaMemory, JoinNode


def _net(source: str) -> ReteNetwork:
    net = ReteNetwork()
    for production in parse_program(source).productions:
        net.add_production(production)
    return net


def _count(net, kind):
    return sum(1 for n in net.share_registry.values() if n.kind == kind)


class TestAlphaSharing:
    def test_identical_ces_share_alpha_memory(self):
        net = _net("""
          (p one (block ^color red) --> (halt))
          (p two (block ^color red) --> (halt))
        """)
        assert _count(net, "amem") == 1
        assert net.nodes_shared > 0

    def test_different_constants_do_not_share_memory(self):
        net = _net("""
          (p one (block ^color red) --> (halt))
          (p two (block ^color blue) --> (halt))
        """)
        assert _count(net, "amem") == 2

    def test_class_root_shared(self):
        net = _net("""
          (p one (block ^color red) --> (halt))
          (p two (block ^size 3) --> (halt))
        """)
        assert len(net.class_roots) == 1

    def test_variables_do_not_split_alpha(self):
        # Variable tests are beta concerns; the alpha chains coincide.
        net = _net("""
          (p one (block ^color <c>) --> (halt))
          (p two (block ^color <d>) --> (halt))
        """)
        assert _count(net, "amem") == 1


class TestBetaSharing:
    def test_identical_prefix_shares_join(self):
        net = _net("""
          (p one (goal ^want <c>) (block ^color <c>) --> (halt))
          (p two (goal ^want <c>) (block ^color <c>) (extra) --> (halt))
        """)
        # The first join (goal x block) exists once.
        joins = [
            n
            for n in net.share_registry.values()
            if isinstance(n, JoinNode) and n.ce_index == 1
        ]
        assert len(joins) == 1
        assert joins[0].refcount == 2

    def test_different_join_tests_not_shared(self):
        net = _net("""
          (p one (goal ^want <c>) (block ^color <c>) --> (halt))
          (p two (goal ^want <c>) (block ^size <c>) --> (halt))
        """)
        joins = [
            n
            for n in net.share_registry.values()
            if isinstance(n, JoinNode) and n.ce_index == 1
        ]
        assert len(joins) == 2

    def test_sharing_ratio_reflects_reuse(self):
        shared = _net("""
          (p one (a ^v 1) (b ^w 2) --> (halt))
          (p two (a ^v 1) (b ^w 2) --> (halt))
        """)
        unshared = _net("""
          (p one (a ^v 1) (b ^w 2) --> (halt))
          (p two (c ^v 1) (d ^w 2) --> (halt))
        """)
        assert collect_stats(shared).sharing_ratio > collect_stats(unshared).sharing_ratio


class TestStatsSnapshot:
    def test_node_census(self):
        net = _net("(p one (a ^v 1) (b) --> (halt))")
        stats = collect_stats(net)
        assert stats.productions == 1
        assert stats.nodes_by_kind["term"] == 1
        assert stats.nodes_by_kind["amem"] == 2
        assert stats.nodes_by_kind["join"] == 2
        assert stats.total_nodes == sum(stats.nodes_by_kind.values())

    def test_state_volume_counts_live_entries(self):
        net = _net("(p one (a ^v <x>) (b ^v <x>) --> (halt))")
        from repro.ops5.wme import WME, WorkingMemory

        memory = WorkingMemory()
        for cls, v in [("a", 1), ("a", 2), ("b", 1)]:
            wme = memory.add(WME(cls, {"v": v}))
            net.add_wme(wme)
        stats = collect_stats(net)
        assert stats.alpha_wmes == 3
        # beta: two tokens for the two a's, plus one full match token.
        assert stats.beta_tokens == 3

    def test_amem_production_names_maintained(self):
        net = _net("""
          (p one (block ^color red) --> (halt))
          (p two (block ^color red) --> (halt))
        """)
        [amem] = [n for n in net.share_registry.values() if isinstance(n, AlphaMemory)]
        assert amem.production_names == {"one", "two"}
