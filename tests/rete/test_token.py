"""Token chains."""

import pytest

from repro.ops5.wme import make_wme
from repro.rete.token import Token


def _wme(tag):
    wme = make_wme("c", v=tag)
    wme.timetag = tag
    return wme


class TestToken:
    def test_empty_token(self):
        empty = Token.empty()
        assert empty.depth == 0
        assert empty.key == ()
        assert empty.wmes() == ()

    def test_root_token_cannot_carry_wme(self):
        with pytest.raises(ValueError):
            Token(None, _wme(1))

    def test_chain_positions(self):
        t0 = Token(Token.empty(), _wme(10))
        t1 = Token(t0, _wme(20))
        assert t1.depth == 2
        assert t1.key == (10, 20)
        assert t1.wme_at(0).timetag == 10
        assert t1.wme_at(1).timetag == 20

    def test_negated_position_is_none(self):
        t0 = Token(Token.empty(), _wme(10))
        t1 = Token(t0, None)  # a negated CE consumed no WME
        t2 = Token(t1, _wme(30))
        assert t2.key == (10, 0, 30)
        assert t2.wme_at(1) is None
        assert [w.timetag for w in t2.positive_wmes()] == [10, 30]

    def test_wme_at_out_of_range(self):
        token = Token(Token.empty(), _wme(1))
        with pytest.raises(IndexError):
            token.wme_at(1)
        with pytest.raises(IndexError):
            token.wme_at(-1)

    def test_iteration_matches_wmes(self):
        t0 = Token(Token.empty(), _wme(1))
        t1 = Token(t0, _wme(2))
        assert list(t1) == list(t1.wmes())

    def test_prefix_sharing(self):
        t0 = Token(Token.empty(), _wme(1))
        a = Token(t0, _wme(2))
        b = Token(t0, _wme(3))
        assert a.parent is b.parent
