"""Differential testing: Rete and TREAT vs. the naive reference matcher.

The naive matcher recomputes the conflict set from first principles on
every change, so it is the semantic oracle.  Hypothesis generates random
programs (joins, predicates, negations, intra-CE repetition) and random
add/remove sequences; after every change all three matchers must hold
identical conflict sets.
"""

from hypothesis import given, settings, strategies as st

from repro.naive import NaiveMatcher
from repro.ops5.condition import (
    ConditionElement,
    ConstantTest,
    Predicate,
    PredicateTest,
    Test,
    VariableTest,
)
from repro.ops5.production import Production
from repro.ops5.wme import WME, WorkingMemory
from repro.rete import ReteNetwork
from repro.treat import TreatMatcher

CLASSES = ["c1", "c2", "c3"]
ATTRIBUTES = ["a", "b"]
SYMBOLS = ["red", "blue"]
NUMBERS = [0, 1, 2]
VARIABLES = ["x", "y"]

values = st.sampled_from(SYMBOLS + NUMBERS)


@st.composite
def condition_elements(draw, index: int, bound: set[str]) -> ConditionElement:
    """One CE; predicates only reference already-bound variables."""
    cls = draw(st.sampled_from(CLASSES))
    negated = index > 0 and draw(st.booleans())
    tests: dict[str, Test] = {}
    local_bound: set[str] = set()
    for attribute in draw(st.lists(st.sampled_from(ATTRIBUTES), unique=True, min_size=1)):
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 0:
            tests[attribute] = ConstantTest(draw(values))
        elif choice == 1:
            name = draw(st.sampled_from(VARIABLES))
            tests[attribute] = VariableTest(name)
            local_bound.add(name)
        elif choice == 2:
            tests[attribute] = PredicateTest(
                draw(st.sampled_from([Predicate.NE, Predicate.GT, Predicate.LE])),
                ConstantTest(draw(st.sampled_from(NUMBERS))),
            )
        else:
            # Predicate on a variable -- only if some variable is usable.
            # Variables bound earlier in *this* CE only count when their
            # attribute sorts before this one (evaluation order).
            usable = sorted(
                bound | {v for v in local_bound if any(
                    a < attribute and isinstance(tests.get(a), VariableTest)
                    and tests[a].name == v for a in tests)}
            )
            if usable:
                tests[attribute] = PredicateTest(
                    draw(st.sampled_from([Predicate.NE, Predicate.LT])),
                    VariableTest(draw(st.sampled_from(usable))),
                )
            else:
                tests[attribute] = ConstantTest(draw(values))
    if not negated:
        bound.update(local_bound)
    return ConditionElement(cls, tests, negated)


@st.composite
def productions(draw, name: str) -> Production:
    ce_count = draw(st.integers(min_value=1, max_value=3))
    bound: set[str] = set()
    conditions = [draw(condition_elements(i, bound)) for i in range(ce_count)]
    if all(ce.negated for ce in conditions):
        conditions[0] = ConditionElement(conditions[0].cls, conditions[0].tests, False)
    return Production(name, conditions, ())


@st.composite
def programs(draw) -> list[Production]:
    count = draw(st.integers(min_value=1, max_value=4))
    return [draw(productions(f"p{i}")) for i in range(count)]


@st.composite
def wme_specs(draw):
    cls = draw(st.sampled_from(CLASSES))
    attrs = {
        attribute: draw(values)
        for attribute in draw(st.lists(st.sampled_from(ATTRIBUTES), unique=True))
    }
    return (cls, attrs)


@st.composite
def change_scripts(draw):
    """A list of operations: ("add", spec) or ("remove", index-of-live)."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        if live and draw(st.booleans()) and draw(st.booleans()):
            ops.append(("remove", draw(st.integers(min_value=0, max_value=live - 1))))
            live -= 1
        else:
            ops.append(("add", draw(wme_specs())))
            live += 1
    return ops


def _drive(matcher, program, script):
    """Apply the script; return the conflict-set snapshots after each op."""
    for production in program:
        matcher.add_production(production)
    memory = WorkingMemory()
    live: list[WME] = []
    snapshots = []
    for op in script:
        if op[0] == "add":
            cls, attrs = op[1]
            wme = memory.add(WME(cls, attrs))
            matcher.add_wme(wme)
            live.append(wme)
        else:
            wme = live.pop(op[1])
            memory.remove(wme)
            matcher.remove_wme(wme)
        snapshots.append(matcher.conflict_set.snapshot())
    return snapshots


@settings(max_examples=120, deadline=None)
@given(program=programs(), script=change_scripts())
def test_rete_matches_naive(program, script):
    naive = _drive(NaiveMatcher(), program, script)
    rete = _drive(ReteNetwork(), program, script)
    assert rete == naive


@settings(max_examples=120, deadline=None)
@given(program=programs(), script=change_scripts())
def test_treat_matches_naive(program, script):
    naive = _drive(NaiveMatcher(), program, script)
    treat = _drive(TreatMatcher(), program, script)
    assert treat == naive


@settings(max_examples=60, deadline=None)
@given(program=programs(), script=change_scripts())
def test_late_production_addition_converges(program, script):
    """Adding productions after the WM is loaded must equal loading first."""
    early = NaiveMatcher()
    late = ReteNetwork()
    for production in program:
        early.add_production(production)
    memory_early, memory_late = WorkingMemory(), WorkingMemory()
    live_early, live_late = [], []
    for op in script:
        for matcher, memory, live in (
            (early, memory_early, live_early),
            (late, memory_late, live_late),
        ):
            if op[0] == "add":
                cls, attrs = op[1]
                wme = memory.add(WME(cls, attrs))
                matcher.add_wme(wme)
                live.append(wme)
            else:
                wme = live.pop(op[1])
                memory.remove(wme)
                matcher.remove_wme(wme)
    for production in program:
        late.add_production(production)
    assert late.conflict_set.snapshot() == early.conflict_set.snapshot()
