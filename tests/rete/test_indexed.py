"""Hash-indexed join memories: identical semantics, less effort."""

from hypothesis import given, settings

from repro.naive import NaiveMatcher
from repro.ops5 import parse_program
from repro.ops5.wme import WME, WorkingMemory
from repro.rete import ReteNetwork

from tests.rete.test_differential import _drive, change_scripts, programs


class TestIndexedSemantics:
    def test_join_results_identical(self):
        src = "(p find (goal ^want <c>) (block ^color <c>) --> (halt))"

        def run(indexed):
            net = ReteNetwork(indexed=indexed)
            for production in parse_program(src).productions:
                net.add_production(production)
            memory = WorkingMemory()
            snaps = []
            for cls, attrs in [
                ("goal", {"want": "red"}),
                ("block", {"color": "red"}),
                ("block", {"color": "blue"}),
                ("block", {"color": "red"}),
            ]:
                wme = memory.add(WME(cls, attrs))
                net.add_wme(wme)
                snaps.append(net.conflict_set.snapshot())
            return snaps

        assert run(True) == run(False)

    def test_deletion_maintains_index(self):
        src = "(p find (a ^v <x>) (b ^v <x>) --> (halt))"
        net = ReteNetwork(indexed=True)
        for production in parse_program(src).productions:
            net.add_production(production)
        memory = WorkingMemory()
        a = memory.add(WME("a", {"v": 1}))
        b = memory.add(WME("b", {"v": 1}))
        net.add_wme(a)
        net.add_wme(b)
        assert len(net.conflict_set) == 1
        net.remove_wme(b)
        assert len(net.conflict_set) == 0
        net.remove_wme(a)
        # Index buckets emptied, not leaked.
        from repro.rete.nodes import JoinNode

        for node in net.share_registry.values():
            if isinstance(node, JoinNode) and node.indexed:
                assert node.left_index == {}
                assert node.right_index == {}

    def test_late_production_initialises_index_from_memory(self):
        net = ReteNetwork(indexed=True)
        memory = WorkingMemory()
        for cls, v in [("a", 1), ("b", 1), ("b", 2)]:
            wme = memory.add(WME(cls, {"v": v}))
            net.add_wme(wme)
        from repro.ops5 import parse_production

        net.add_production(parse_production("(p late (a ^v <x>) (b ^v <x>) --> (halt))"))
        assert len(net.conflict_set) == 1

    def test_residual_predicates_still_checked(self):
        src = "(p ord (n ^v <x>) (n ^v <x> ^w > <x>) --> (halt))"
        net = ReteNetwork(indexed=True)
        for production in parse_program(src).productions:
            net.add_production(production)
        memory = WorkingMemory()
        for v, w in [(1, 5), (1, 0)]:
            wme = memory.add(WME("n", {"v": v, "w": w}))
            net.add_wme(wme)
        # Pairs with matching v: 4 combos; only w > v survives, for
        # each left token whose v == 1: both wmes have v 1; w>1 only wme1.
        keys = net.conflict_set.snapshot()
        assert all(tags[1] == 1 for _, tags in keys)  # second CE is wme 1 (w=5)

    def test_effort_reduced_on_selective_joins(self):
        src = "(p find (a ^v <x>) (b ^v <x>) --> (halt))"

        def comparisons(indexed):
            net = ReteNetwork(indexed=indexed)
            for production in parse_program(src).productions:
                net.add_production(production)
            memory = WorkingMemory()
            for v in range(40):
                net.add_wme(memory.add(WME("a", {"v": v})))
            for v in range(40):
                net.add_wme(memory.add(WME("b", {"v": v})))
            assert len(net.conflict_set) == 40
            return net.stats.total_comparisons

        assert comparisons(True) < comparisons(False) / 5


@settings(max_examples=80, deadline=None)
@given(program=programs(), script=change_scripts())
def test_indexed_network_matches_naive(program, script):
    naive = _drive(NaiveMatcher(), program, script)
    indexed = _drive(ReteNetwork(indexed=True), program, script)
    assert indexed == naive
