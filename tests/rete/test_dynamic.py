"""Dynamic production addition/removal against live working memory."""

import pytest

from repro.ops5 import Ops5Error, parse_production
from repro.ops5.wme import WME, WorkingMemory
from repro.rete import ReteNetwork


def _fill(net, memory, items):
    for cls, attrs in items:
        wme = memory.add(WME(cls, attrs))
        net.add_wme(wme)


class TestAddProduction:
    def test_existing_memory_matched_at_compile(self):
        net, memory = ReteNetwork(), WorkingMemory()
        _fill(net, memory, [("goal", {"want": "red"}), ("block", {"color": "red"})])
        net.add_production(
            parse_production("(p late (goal ^want <c>) (block ^color <c>) --> (halt))")
        )
        assert len(net.conflict_set) == 1

    def test_negations_respected_at_compile(self):
        net, memory = ReteNetwork(), WorkingMemory()
        _fill(net, memory, [("goal", {}), ("block", {"color": "red"})])
        net.add_production(
            parse_production("(p late (goal) - (block ^color red) --> (halt))")
        )
        assert len(net.conflict_set) == 0

    def test_incremental_behaviour_after_late_add(self):
        net, memory = ReteNetwork(), WorkingMemory()
        _fill(net, memory, [("block", {"color": "red"})])
        net.add_production(
            parse_production("(p late (goal ^want <c>) (block ^color <c>) --> (halt))")
        )
        assert len(net.conflict_set) == 0
        goal = memory.add(WME("goal", {"want": "red"}))
        net.add_wme(goal)
        assert len(net.conflict_set) == 1

    def test_shared_prefix_extension(self):
        net, memory = ReteNetwork(), WorkingMemory()
        net.add_production(
            parse_production("(p short (a ^v <x>) (b ^v <x>) --> (halt))")
        )
        _fill(net, memory, [("a", {"v": 1}), ("b", {"v": 1}), ("c", {"v": 1})])
        net.add_production(
            parse_production("(p long (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))")
        )
        keys = {key[0] for key in net.conflict_set.snapshot()}
        assert keys == {"short", "long"}

    def test_duplicate_name_rejected(self):
        net = ReteNetwork()
        net.add_production(parse_production("(p one (a) --> (halt))"))
        with pytest.raises(Ops5Error):
            net.add_production(parse_production("(p one (b) --> (halt))"))


class TestRemoveProduction:
    def test_instantiations_retracted(self):
        net, memory = ReteNetwork(), WorkingMemory()
        net.add_production(parse_production("(p gone (a) --> (halt))"))
        _fill(net, memory, [("a", {})])
        assert len(net.conflict_set) == 1
        net.remove_production("gone")
        assert len(net.conflict_set) == 0
        assert list(net.productions) == []

    def test_shared_nodes_survive_sibling_removal(self):
        net, memory = ReteNetwork(), WorkingMemory()
        net.add_production(parse_production("(p one (a ^v 1) --> (halt))"))
        net.add_production(parse_production("(p two (a ^v 1) --> (halt))"))
        _fill(net, memory, [("a", {"v": 1})])
        net.remove_production("one")
        assert net.conflict_set.snapshot() == {("two", (1,))}
        # The surviving production still matches future changes.
        wme = memory.add(WME("a", {"v": 1}))
        net.add_wme(wme)
        assert len(net.conflict_set) == 2

    def test_unshared_nodes_pruned(self):
        net = ReteNetwork()
        net.add_production(parse_production("(p only (weird ^v 9) --> (halt))"))
        node_count = len(net.share_registry)
        assert node_count > 0
        net.remove_production("only")
        assert len(net.share_registry) == 0
        assert net.class_roots == {}

    def test_removed_production_stops_matching(self):
        net, memory = ReteNetwork(), WorkingMemory()
        net.add_production(parse_production("(p gone (a) --> (halt))"))
        net.remove_production("gone")
        wme = memory.add(WME("a", {}))
        net.add_wme(wme)
        assert len(net.conflict_set) == 0

    def test_unknown_name_rejected(self):
        with pytest.raises(Ops5Error):
            ReteNetwork().remove_production("ghost")

    def test_re_add_after_remove(self):
        net, memory = ReteNetwork(), WorkingMemory()
        production = parse_production("(p cycle (a) --> (halt))")
        net.add_production(production)
        _fill(net, memory, [("a", {})])
        net.remove_production("cycle")
        net.add_production(parse_production("(p cycle (a) --> (halt))"))
        assert len(net.conflict_set) == 1
