"""Codegen planning and alpha semantics of the compiled kernel."""

from repro.kernel.codegen import alpha_items, generate_source, plan_stores
from repro.ops5 import parse_program
from repro.ops5.condition import wme_passes_alpha
from repro.ops5.wme import WME


def _productions(source):
    return parse_program(source).productions


class TestStorePlanning:
    def test_identical_alpha_shapes_share_one_store(self):
        productions = _productions(
            """
            (p a (goal ^want red) (block ^size 2) --> (halt))
            (p b (goal ^want red) --> (halt))
            """
        )
        plans, use = plan_stores(productions)
        # goal^want=red is one shared store; block^size=2 its own.
        assert len(plans) == 2
        assert use[(0, 0)] is use[(1, 0)]

    def test_different_alpha_tests_get_distinct_stores(self):
        productions = _productions(
            """
            (p a (block ^color red) --> (halt))
            (p b (block ^color blue) --> (halt))
            """
        )
        plans, use = plan_stores(productions)
        assert len(plans) == 2
        assert use[(0, 0)] is not use[(1, 0)]

    def test_join_columns_registered_on_both_sides(self):
        productions = _productions(
            "(p find (goal ^want <c>) (block ^color <c>) --> (halt))"
        )
        plans, use = plan_stores(productions)
        assert "want" in use[(0, 0)].columns
        assert "color" in use[(0, 1)].columns


class TestGeneratedSource:
    def test_source_is_deterministic(self):
        productions = _productions(
            """
            (p find (goal ^want <c>) (block ^color <c> ^size > 1) --> (halt))
            (p quiet (goal ^want <c>) - (block ^color <c>) --> (halt))
            """
        )
        assert generate_source(productions) == generate_source(productions)

    def test_source_is_a_single_build_function(self):
        productions = _productions("(p one (goal ^want red) --> (halt))")
        source = generate_source(productions)
        assert "def build(rt):" in source.splitlines()[1]
        compile(source, "<test>", "exec")  # must be valid Python


class TestAlphaSemantics:
    """Fused store predicates must agree with ``wme_passes_alpha``."""

    SRC = """
      (p p1 (item ^color red ^size > 2) --> (halt))
      (p p2 (item ^color << red blue >> ^size <> 3) --> (halt))
      (p p3 (item ^left <x> ^right <x>) --> (halt))
      (p p4 (item ^size < 10) --> (halt))
    """

    CANDIDATES = [
        {"color": "red", "size": 3},
        {"color": "red", "size": 2},
        {"color": "blue", "size": 3},
        {"color": "blue", "size": 4.0},
        {"color": "green", "size": 1},
        {"left": "a", "right": "a"},
        {"left": "a", "right": "b"},
        {"left": 1, "right": 1.0},
        {"size": "big"},  # ordering against a symbol is always False
        {"size": 9.5},
        {},
    ]

    def test_predicates_match_interpreted_alpha(self):
        from repro.kernel.matcher import CompiledMatcher

        productions = _productions(self.SRC)
        matcher = CompiledMatcher()
        for production in productions:
            matcher.add_production(production)
        matcher._ensure_compiled()
        _, use = plan_stores(productions)
        for p_idx, production in enumerate(productions):
            analysis = production.analysis[0]
            # Stores are built in plan-index order, so the plan's index
            # addresses the runtime's store list directly.
            store = matcher.runtime.stores[use[(p_idx, 0)].index]
            for attrs in self.CANDIDATES:
                wme = WME("item", attrs)
                wme.timetag = 1
                expected = wme_passes_alpha(wme, analysis)
                got = store.predicate is None or store.predicate(wme)
                assert got == expected, (production.name, attrs)

    def test_alpha_items_canonical_across_attribute_order(self):
        a = _productions("(p x (item ^color red ^size 2) --> (halt))")
        b = _productions("(p x (item ^size 2 ^color red) --> (halt))")
        assert alpha_items(a[0].analysis[0]) == alpha_items(b[0].analysis[0])
