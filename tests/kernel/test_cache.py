"""Codegen cache behaviour and the intern-table regression.

The satellite contract: compiling the same ruleset twice must hit the
cache (the *same* code object comes back) and must not grow the
process-wide symbol table -- fingerprinting and codegen work on strings,
never ``intern_id``.
"""

import pytest

from repro.kernel import CompiledMatcher, cache_stats, compiled_ruleset
from repro.kernel.cache import clear_cache, ruleset_fingerprint
from repro.ops5 import parse_program
from repro.ops5.symbols import SYMBOLS
from repro.ops5.wme import WME, WorkingMemory

SRC = """
  (p find (goal ^want <c>) (block ^color <c> ^size > 2) --> (halt))
  (p quiet (goal ^want <c>) - (block ^color <c>) --> (halt))
"""

RENAMED = SRC.replace("find", "locate").replace("quiet", "silent")


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCacheReuse:
    def test_recompile_returns_same_code_object(self):
        productions = parse_program(SRC).productions
        first = compiled_ruleset(productions)
        second = compiled_ruleset(parse_program(SRC).productions)
        assert second is first
        assert second.code is first.code
        assert cache_stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_renamed_productions_share_the_code_object(self):
        # Names are bound at build time, not compiled in: a renamed copy
        # of the same LHS shapes is the same kernel.
        a = compiled_ruleset(parse_program(SRC).productions)
        b = compiled_ruleset(parse_program(RENAMED).productions)
        assert b is a

    def test_changed_shape_misses(self):
        compiled_ruleset(parse_program(SRC).productions)
        changed = SRC.replace("^size > 2", "^size > 3")
        compiled_ruleset(parse_program(changed).productions)
        assert cache_stats()["misses"] == 2

    def test_fingerprint_distinguishes_value_types(self):
        # 5, 5.0 and "5" generate different tests, so they must not
        # collide in the cache even though OPS5 compares 5 == 5.0.
        ints = parse_program("(p x (n ^v 5) --> (halt))").productions
        floats = parse_program("(p x (n ^v 5.0) --> (halt))").productions
        fp_int, fp_float = ruleset_fingerprint(ints), ruleset_fingerprint(floats)
        assert fp_int != fp_float


class TestInternTableRegression:
    def test_recompiles_do_not_grow_the_symbol_table(self):
        productions = parse_program(SRC).productions
        compiled_ruleset(productions)  # first compile may be preceded by
        before = len(SYMBOLS)          # parse-time interning; snapshot now
        for _ in range(3):
            compiled_ruleset(parse_program(SRC).productions)
            compiled_ruleset(parse_program(RENAMED).productions)
        assert len(SYMBOLS) == before
        assert cache_stats()["size"] == 1

    def test_matcher_rebuild_does_not_grow_the_symbol_table(self):
        matcher = CompiledMatcher()
        for production in parse_program(SRC).productions:
            matcher.add_production(production)
        memory = WorkingMemory()
        matcher.add_wme(memory.add(WME("goal", {"want": "red"})))
        matcher.add_wme(memory.add(WME("block", {"color": "red", "size": 3})))
        before = len(SYMBOLS)
        # A production edit with WM non-empty forces an immediate rebuild
        # (cache hit + quiet replay); the table must not move.
        late = parse_program("(p late (goal ^want <c>) --> (halt))").productions[0]
        matcher.add_production(late)
        matcher.remove_production("late")
        assert len(SYMBOLS) == before
        assert matcher.kernel_summary()["compiles"] == 3
