"""The kernel state auditor behind ``repro run --verify``."""

from repro.kernel import CompiledMatcher, check_kernel
from repro.ops5 import parse_program
from repro.ops5.wme import WME, WorkingMemory

SRC = """
  (p find (goal ^want <c>) (block ^color <c>) --> (halt))
  (p quiet (goal ^want <c>) - (block ^color <c>) --> (halt))
"""


def _loaded(items):
    matcher = CompiledMatcher()
    for production in parse_program(SRC).productions:
        matcher.add_production(production)
    memory = WorkingMemory()
    wmes = []
    for cls, attrs in items:
        wme = memory.add(WME(cls, attrs))
        matcher.add_wme(wme)
        wmes.append(wme)
    return matcher, wmes


class TestChecker:
    def test_clean_matcher_passes(self):
        matcher, wmes = _loaded([
            ("goal", {"want": "red"}),
            ("block", {"color": "red"}),
            ("block", {"color": "blue"}),
        ])
        assert check_kernel(matcher) == []
        matcher.remove_wme(wmes[1])
        assert check_kernel(matcher) == []

    def test_empty_matcher_passes(self):
        matcher = CompiledMatcher()
        assert check_kernel(matcher) == []

    def test_detects_dropped_store_row(self):
        matcher, wmes = _loaded([("block", {"color": "red"})])
        store = next(
            s for s in matcher.runtime.stores if wmes[0].timetag in s.rows
        )
        del store.rows[wmes[0].timetag]  # sabotage: row gone, columns stay
        problems = check_kernel(matcher)
        assert problems and any("diverge" in p or "missing" in p for p in problems)

    def test_detects_corrupted_column_encoding(self):
        matcher, wmes = _loaded([("block", {"color": "red"})])
        store = next(
            s for s in matcher.runtime.stores if wmes[0].timetag in s.rows
        )
        attr, col = next(iter(store.cols.items()))
        col[wmes[0].timetag] ^= 0xFFFF  # sabotage the encoded value
        problems = check_kernel(matcher)
        assert problems and any("column" in p for p in problems)

    def test_detects_conflict_set_divergence(self):
        matcher, wmes = _loaded([
            ("goal", {"want": "red"}),
            ("block", {"color": "red"}),
        ])
        key = ("find", (wmes[0].timetag, wmes[1].timetag))
        matcher.conflict_set.delete_key(key)  # sabotage
        problems = check_kernel(matcher)
        assert any("conflict set diverges" in p for p in problems)
