"""The shared-kernel registry: build once, attach per session.

The tentpole contract for multi-tenant serve: the N-th matcher built
over an already-compiled ruleset performs **zero** codegen -- no cache
miss, no module exec -- and its setup cost is closure construction plus
an O(working-memory) replay.  Sessions share the code object and build
function but never any mutable match state, and attaching never grows
the process-wide symbol intern table.
"""

import pytest

from repro.kernel import (
    CompiledMatcher,
    cache_stats,
    clear_shared_kernels,
    shared_kernel,
    shared_kernel_stats,
)
from repro.kernel.cache import clear_cache
from repro.ops5 import parse_program
from repro.ops5.conflict import ConflictSet
from repro.ops5.symbols import SYMBOLS
from repro.ops5.wme import WME, WorkingMemory

SRC = """
  (p match (goal ^want <c>) (block ^color <c> ^size > 2) --> (halt))
  (p absent (goal ^want <c>) - (block ^color <c>) --> (halt))
"""

RENAMED = SRC.replace("match", "find").replace("absent", "missing")


@pytest.fixture(autouse=True)
def fresh_registries():
    clear_cache()
    clear_shared_kernels()
    yield
    clear_cache()
    clear_shared_kernels()


def _fresh_productions(src=SRC):
    return parse_program(src).productions


class TestRegistry:
    def test_same_shape_resolves_to_one_kernel(self):
        a = shared_kernel(_fresh_productions())
        b = shared_kernel(_fresh_productions())
        c = shared_kernel(_fresh_productions(RENAMED))
        assert b is a and c is a
        stats = shared_kernel_stats()
        assert stats["kernels"] == 1
        assert stats["execs"] == 1

    def test_different_shapes_get_distinct_kernels(self):
        a = shared_kernel(_fresh_productions())
        b = shared_kernel(_fresh_productions(SRC.replace("> 2", "> 3")))
        assert b is not a
        assert shared_kernel_stats()["kernels"] == 2

    def test_attach_counts(self):
        kernel = shared_kernel(_fresh_productions())
        for _ in range(3):
            kernel.attach(ConflictSet(), _fresh_productions())
        assert kernel.attaches == 3
        assert shared_kernel_stats() == {"kernels": 1, "execs": 1, "attaches": 3}


class TestWarmAttach:
    def test_nth_matcher_performs_zero_codegen(self):
        # Cold first session: one miss, one exec.
        first = CompiledMatcher()
        for p in _fresh_productions():
            first.add_production(p)
        memory = WorkingMemory()
        first.add_wme(memory.add(WME("goal", {"want": "red"})))
        assert cache_stats()["misses"] == 1
        assert shared_kernel_stats()["execs"] == 1

        # Warm sessions: the miss and exec counters must not move.
        for i in range(8):
            matcher = CompiledMatcher()
            for p in _fresh_productions():
                matcher.add_production(p)
            wm = WorkingMemory()
            matcher.add_wme(wm.add(WME("goal", {"want": "red"})))
            matcher.add_wme(wm.add(WME("block", {"color": "red", "size": 3})))
            assert cache_stats()["misses"] == 1
            assert cache_stats()["hits"] == i + 1
            assert shared_kernel_stats()["execs"] == 1
            assert matcher.shared is first.shared

    def test_warm_attach_does_not_grow_the_symbol_table(self):
        seed = CompiledMatcher()
        for p in _fresh_productions():
            seed.add_production(p)
        wm = WorkingMemory()
        seed.add_wme(wm.add(WME("goal", {"want": "red"})))
        before = len(SYMBOLS)
        for _ in range(5):
            matcher = CompiledMatcher()
            # Same parsed productions: nothing left to intern anywhere.
            for p in seed.productions:
                matcher.add_production(p)
            session_wm = WorkingMemory()
            matcher.add_wme(session_wm.add(WME("goal", {"want": "red"})))
        assert len(SYMBOLS) == before

    def test_attach_replays_existing_wm(self):
        kernel = shared_kernel(_fresh_productions())
        wm = WorkingMemory()
        wmes = [
            wm.add(WME("goal", {"want": "red"})),
            wm.add(WME("block", {"color": "red", "size": 3})),
        ]
        cs = ConflictSet()
        runtime = kernel.attach(cs, _fresh_productions(), wmes)
        # Rows, not WMEs: the goal WME lands in both productions' stores.
        assert runtime.state_size() == 3
        assert any(key[0] == "match" for key in cs.snapshot())


class TestSessionIsolation:
    def test_sessions_share_code_but_not_state(self):
        a, b = CompiledMatcher(), CompiledMatcher()
        for matcher in (a, b):
            for p in _fresh_productions():
                matcher.add_production(p)
        wm_a, wm_b = WorkingMemory(), WorkingMemory()
        a.add_wme(wm_a.add(WME("goal", {"want": "red"})))
        a.add_wme(wm_a.add(WME("block", {"color": "red", "size": 3})))
        b.add_wme(wm_b.add(WME("goal", {"want": "blue"})))

        assert a.shared is b.shared
        assert a.runtime is not b.runtime
        # Row counts: a's block WME passes both block stores' predicates.
        assert a.state_size() == 3 and b.state_size() == 1
        # Conflict sets diverge: a matched, b's block is absent.
        assert {k[0] for k in a.conflict_set.snapshot()} == {"match"}
        assert {k[0] for k in b.conflict_set.snapshot()} == {"absent"}
        # Mutating one session leaves the other's stores untouched.
        rows_b = {s.cls: dict(s.rows) for s in b.runtime.stores}
        a.add_wme(wm_a.add(WME("block", {"color": "red", "size": 9})))
        assert {s.cls: dict(s.rows) for s in b.runtime.stores} == rows_b
