"""Compiled-matcher semantics: differential vs Rete, edits, contracts."""

import pytest

from repro.kernel import CompiledMatcher
from repro.ops5 import Ops5Error, parse_program
from repro.ops5.wme import WME, WorkingMemory, make_wme
from repro.rete import ReteNetwork


def _loaded(source):
    compiled, rete = CompiledMatcher(), ReteNetwork()
    for production in parse_program(source).productions:
        compiled.add_production(production)
        rete.add_production(production)
    return compiled, rete, WorkingMemory()


def _differential(source, script):
    """Run *script* (``("add", cls, attrs)`` / ``("remove", index)``) on
    the compiled kernel and the interpreted Rete, comparing conflict-set
    snapshots after **every** change, not just at the end."""
    compiled, rete, memory = _loaded(source)
    wmes = []
    for step, op in enumerate(script):
        if op[0] == "add":
            _, cls, attrs = op
            wme = memory.add(WME(cls, attrs))
            wmes.append(wme)
            compiled.add_wme(wme)
            rete.add_wme(wme)
        else:
            wme = wmes[op[1]]
            compiled.remove_wme(wme)
            rete.remove_wme(wme)
        ours = compiled.conflict_set.snapshot()
        theirs = rete.conflict_set.snapshot()
        assert ours == theirs, (step, op, ours ^ theirs)
    return compiled


JOIN = "(p find (goal ^want <c>) (block ^color <c>) --> (halt))"
NEGATED = "(p quiet (goal ^want <c>) - (block ^color <c>) --> (halt))"
THREE_WAY = """
  (p chain (edge ^a <x> ^b <y>) (edge ^a <y> ^b <z>) (mark ^node <z>)
     --> (halt))
"""


class TestDifferentialVsRete:
    def test_join_every_arrival_order(self):
        _differential(JOIN, [
            ("add", "goal", {"want": "red"}),
            ("add", "block", {"color": "blue"}),
            ("add", "block", {"color": "red"}),
            ("remove", 2),
            ("add", "block", {"color": "red"}),
            ("remove", 0),
        ])
        _differential(JOIN, [
            ("add", "block", {"color": "red"}),
            ("add", "goal", {"want": "red"}),
            ("remove", 1),
        ])

    def test_negation_blocker_transitions(self):
        _differential(NEGATED, [
            ("add", "goal", {"want": "red"}),      # fires (no blocker)
            ("add", "block", {"color": "red"}),    # retracts
            ("add", "block", {"color": "red"}),    # still blocked (count 2)
            ("remove", 1),                         # still blocked (count 1)
            ("remove", 2),                         # fires again
            ("add", "block", {"color": "blue"}),   # irrelevant blocker
        ])

    def test_three_way_join_and_retraction(self):
        _differential(THREE_WAY, [
            ("add", "edge", {"a": "n1", "b": "n2"}),
            ("add", "edge", {"a": "n2", "b": "n3"}),
            ("add", "mark", {"node": "n3"}),
            ("add", "edge", {"a": "n2", "b": "n3"}),  # duplicate pairing
            ("remove", 1),
            ("remove", 0),
        ])

    def test_intra_ce_predicate(self):
        _differential(
            "(p pair (n ^v <x>) (n ^v { <y> > <x> }) --> (halt))",
            [
                ("add", "n", {"v": 1}),
                ("add", "n", {"v": 3}),
                ("add", "n", {"v": 2}),
                ("remove", 1),
            ],
        )

    def test_numeric_symbol_value_edges(self):
        # 1 == 1.0 in OPS5; "1" is a symbol and equals neither.
        source = "(p find (goal ^want <c>) (block ^color <c>) --> (halt))"
        _differential(source, [
            ("add", "goal", {"want": 1}),
            ("add", "block", {"color": 1.0}),   # pairs (values_equal)
            ("add", "block", {"color": "1"}),   # symbol: no pair
            ("add", "goal", {"want": "1"}),     # pairs with the symbol only
            ("remove", 1),
        ])

    def test_bindings_and_keys_identical_to_rete(self):
        compiled, rete, memory = _loaded(JOIN)
        for cls, attrs in [("goal", {"want": "red"}), ("block", {"color": "red"})]:
            wme = memory.add(WME(cls, attrs))
            compiled.add_wme(wme)
            rete.add_wme(wme)
        [ours] = compiled.conflict_set.members()
        [theirs] = rete.conflict_set.members()
        assert ours.key == theirs.key
        assert ours.bindings == theirs.bindings == {"c": "red"}


class TestDynamicRulesetEdits:
    def test_add_production_with_wm_nonempty_folds_existing_wm(self):
        compiled, _, memory = _loaded(JOIN)
        goal = memory.add(WME("goal", {"want": "red"}))
        block = memory.add(WME("block", {"color": "red"}))
        compiled.add_wme(goal)
        compiled.add_wme(block)
        assert len(compiled.conflict_set) == 1
        late = parse_program(
            "(p late (block ^color <c>) --> (halt))"
        ).productions[0]
        compiled.add_production(late)
        keys = compiled.conflict_set.snapshot()
        assert ("late", (block.timetag,)) in keys
        assert ("find", (goal.timetag, block.timetag)) in keys

    def test_remove_production_with_wm_nonempty_drops_instantiations(self):
        compiled, _, memory = _loaded(JOIN)
        compiled.add_wme(memory.add(WME("goal", {"want": "red"})))
        compiled.add_wme(memory.add(WME("block", {"color": "red"})))
        assert len(compiled.conflict_set) == 1
        compiled.remove_production("find")
        assert len(compiled.conflict_set) == 0

    def test_lazy_compile_while_wm_empty(self):
        compiled = CompiledMatcher()
        for production in parse_program(JOIN + NEGATED).productions:
            compiled.add_production(production)
        # No WMEs yet: both edits fold into the single deferred compile.
        assert compiled.kernel_summary()["compiles"] == 0
        compiled.add_wme(WorkingMemory().add(WME("goal", {"want": "red"})))
        assert compiled.kernel_summary()["compiles"] == 1


class TestErrorContracts:
    def test_duplicate_production_rejected(self):
        compiled, _, _ = _loaded(JOIN)
        with pytest.raises(Ops5Error):
            compiled.add_production(parse_program(JOIN).productions[0])

    def test_remove_unknown_production_rejected(self):
        compiled = CompiledMatcher()
        with pytest.raises(Ops5Error):
            compiled.remove_production("ghost")

    def test_remove_never_added_wme_rejected(self):
        compiled, _, _ = _loaded(JOIN)
        stray = make_wme("block", color="red")
        stray.timetag = 99
        with pytest.raises(Ops5Error):
            compiled.remove_wme(stray)


class TestOracleMode:
    def test_bundled_programs_run_clean_under_oracle(self):
        from repro.workloads.programs import hanoi, monkey

        result = hanoi.run(3, matcher=CompiledMatcher(oracle=True))
        assert result.halted and result.fired == 14
        result = monkey.run(matcher=CompiledMatcher(oracle=True))
        assert result.halted

    def test_oracle_reports_divergence(self):
        compiled, _, memory = _loaded(JOIN)
        oracle = CompiledMatcher(oracle=True)
        for production in parse_program(JOIN).productions:
            oracle.add_production(production)
        goal = memory.add(WME("goal", {"want": "red"}))
        oracle.add_wme(goal)
        # Sabotage the kernel's conflict set behind the oracle's back.
        block = memory.add(WME("block", {"color": "red"}))
        oracle.add_wme(block)
        oracle.conflict_set.delete_key(("find", (goal.timetag, block.timetag)))
        with pytest.raises(Ops5Error, match="diverged"):
            oracle.add_wme(memory.add(WME("block", {"color": "blue"})))


class TestEngineIntegration:
    def test_matcher_named_returns_compiled(self):
        from repro.ops5.engine import matcher_named

        assert isinstance(matcher_named("compiled"), CompiledMatcher)

    def test_full_run_matches_rete_outcome(self):
        from repro.workloads.programs import closure

        expected = closure.expected_chain_facts(5)
        system = closure.build(closure.chain(5), matcher=CompiledMatcher())
        system.run(5000)
        assert closure.derived_facts(system) == expected
