"""Seeded chaos over *generated* programs: a fuzzer-produced (ruleset,
stream) pair survives worker crashes bit-identically on both transports.

The program is the generator's output for a fixed seed, shrunk with the
same ddmin pass ``repro fuzz`` applies to counterexamples -- so the case
exercised here is exactly the kind of minimal reproduction a fuzz report
ships.  Marked ``chaos`` like the rest of the fault-injection e2e suite.
"""

import pytest

from repro.faults import seeded_chaos
from repro.parallel import SupervisorConfig, ring_available
from repro.workloads.generator import (
    DEFAULT_PROFILE,
    case_from_seed,
    shrink_case,
)

pytestmark = pytest.mark.chaos

FAST = SupervisorConfig(collect_deadline=0.5, checkpoint_every=4)


def _generated_case():
    """A fixed-seed generated case, shrunk to the smallest sub-case that
    still fires at least one production from its stream's adds."""
    from repro.naive import NaiveMatcher
    from repro.workloads.generator import run_case

    case = case_from_seed(DEFAULT_PROFILE, 14)

    def still_fires(candidate):
        outcome = run_case(candidate, {"naive": NaiveMatcher})
        record = outcome.records.get("naive")
        return record is not None and len(record.fired) > 0

    assert still_fires(case)
    shrunk, _ = shrink_case(case, still_fires)
    return shrunk


def _setup_from(case):
    """Initial memory for a chaos run: the stream's surviving adds."""
    live = {}
    for op in case.stream:
        if op[0] == "add":
            _, slot, cls, attrs = op
            live[slot] = (cls, dict(attrs))
        else:
            live.pop(op[1], None)
    return list(live.values())


@pytest.mark.parametrize("transport", ["pipe", "ring"])
def test_shrunk_generated_program_survives_crash(transport):
    if transport == "ring" and not ring_available():
        pytest.skip("shared-memory ring transport unavailable")
    case = _generated_case()
    report = seeded_chaos(
        list(case.productions),
        _setup_from(case),
        seed=11,
        workers=2,
        crashes=1,
        hangs=0,
        horizon=4,
        supervisor=FAST,
        max_cycles=60,
        transport=transport,
    )
    assert report.identical, report.divergences
    assert report.transport == transport
