"""Checkpointed recovery: state rebuild, supervisor bookkeeping, and a
fast live crash-recovery round (the heavy e2e lives in test_chaos.py).
"""

import pytest

from repro.faults import CRASH, FaultPlan, FaultSpec
from repro.ops5 import parse_program
from repro.parallel import (
    ParallelMatcher,
    ShardSupervisor,
    SupervisorConfig,
    rebuild_state,
    validate_parallel,
)
from repro.parallel import messages
from repro.parallel.worker import ShardState

CLOSURE = """
(p base (parent ^from <x> ^to <y>) - (anc ^from <x> ^to <y>)
   --> (make anc ^from <x> ^to <y>))
(p step (anc ^from <x> ^to <y>) (parent ^from <y> ^to <z>)
        - (anc ^from <x> ^to <z>)
   --> (make anc ^from <x> ^to <z>))
"""

CHAIN = [("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(5)]


def _loaded_state(edges: int = 3) -> tuple[ShardState, list]:
    """A shard state with the closure rules and *edges* parent WMEs,
    plus the op journal that produced it."""
    ops = [
        (messages.ADD_PRODUCTION, p) for p in parse_program(CLOSURE).productions
    ]
    for i in range(edges):
        ops.append(
            (messages.ADD_WME, "parent", {"from": f"n{i}", "to": f"n{i + 1}"}, i + 1)
        )
    state = ShardState()
    state.apply_batch(ops)
    return state, ops


# -- state rebuild ------------------------------------------------------------


def test_rebuild_from_full_journal_matches_original():
    state, journal = _loaded_state()
    clone = rebuild_state(None, journal)
    assert clone.conflict_set.snapshot() == state.conflict_set.snapshot()
    assert set(clone.wmes) == set(state.wmes)


def test_rebuild_from_checkpoint_plus_tail_matches_original():
    state, journal = _loaded_state()
    blob = state.checkpoint()
    tail = [(messages.ADD_WME, "parent", {"from": "n9", "to": "n10"}, 99)]
    state.apply_batch(list(tail))
    clone = rebuild_state(blob, tail)
    assert clone.conflict_set.snapshot() == state.conflict_set.snapshot()


def test_rebuild_drains_replay_output():
    """Replay edits were merged before the failure; a recovered shard
    must not hand them over again."""
    _, journal = _loaded_state()
    clone = rebuild_state(None, journal)
    assert clone.conflict_set.edits == []


def test_rebuilt_state_produces_identical_future_edits():
    state, journal = _loaded_state()
    clone = rebuild_state(None, journal)
    next_op = [(messages.ADD_WME, "parent", {"from": "n3", "to": "n4"}, 50)]
    original_edits, _ = state.apply_batch(list(next_op))
    clone_edits, _ = clone.apply_batch(list(next_op))
    assert clone_edits == original_edits


# -- supervisor bookkeeping ---------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        SupervisorConfig(max_failures=0)
    with pytest.raises(ValueError):
        SupervisorConfig(checkpoint_every=0)
    with pytest.raises(ValueError):
        SupervisorConfig(collect_deadline=-5)
    with pytest.raises(ValueError):
        SupervisorConfig(recovery_deadline=0)
    assert SupervisorConfig(checkpoint_every=None).checkpoint_every is None


def test_next_seq_is_monotonic_per_shard():
    sup = ShardSupervisor(2)
    assert [sup.next_seq(0), sup.next_seq(0), sup.next_seq(1)] == [0, 1, 0]


def test_committed_extends_the_journal():
    sup = ShardSupervisor(1)
    sup.committed(0, [("a",), ("b",)])
    sup.committed(0, [("c",)])
    assert sup.journal_length(0) == 3
    assert sup.recovery_payload(0) == (None, [("a",), ("b",), ("c",)])


def test_reset_op_truncates_journal_and_drops_checkpoint():
    sup = ShardSupervisor(1)
    sup.committed(0, [("a",)])
    sup.store_checkpoint(0, b"blob", 0.0)
    sup.committed(0, [("b",), (messages.RESET,), ("c",)])
    checkpoint, journal = sup.recovery_payload(0)
    assert checkpoint is None
    assert journal == [(messages.RESET,), ("c",)]


def test_checkpoint_cadence():
    sup = ShardSupervisor(1, SupervisorConfig(checkpoint_every=2))
    sup.committed(0, [("a",)])
    assert not sup.wants_checkpoint(0)
    sup.committed(0, [("b",)])
    assert sup.wants_checkpoint(0)
    sup.store_checkpoint(0, b"blob", 0.01)
    assert not sup.wants_checkpoint(0)
    assert sup.journal_length(0) == 0  # journal restarts at the checkpoint
    assert sup.counters["checkpoints"] == 1


def test_checkpointing_disabled_with_none():
    sup = ShardSupervisor(1, SupervisorConfig(checkpoint_every=None))
    for _ in range(10):
        sup.committed(0, [("a",)])
    assert not sup.wants_checkpoint(0)


def test_failure_counts_are_consecutive_not_cumulative():
    sup = ShardSupervisor(1, SupervisorConfig(max_failures=3))
    assert sup.record_failure(0, "crash") == 1
    assert sup.record_failure(0, "hang") == 2
    sup.reset_failures(0)  # a successful batch in between
    assert sup.record_failure(0, "crash") == 1
    assert sup.counters["crashes"] == 2
    assert sup.counters["hangs"] == 1


def test_summary_reports_degraded_shards_and_events():
    from repro.parallel import RecoveryEvent

    sup = ShardSupervisor(2)
    sup.record_failure(1, "crash")
    sup.record_recovery(
        RecoveryEvent(
            shard=1,
            cause="crash",
            action="demoted",
            seq=4,
            replayed_ops=7,
            used_checkpoint=False,
            replay_seconds=0.01,
            total_seconds=0.02,
        )
    )
    summary = sup.summary()
    assert summary["degraded_shards"] == [1]
    assert summary["demotions"] == 1
    assert summary["replayed_ops"] == 7
    assert summary["events"][0]["action"] == "demoted"
    assert sup.demoted[1] and not sup.demoted[0]


# -- live recovery (fast: one worker, one crash) ------------------------------


def test_single_crash_recovers_bit_identically():
    plan = FaultPlan([FaultSpec(kind=CRASH, index=0, at=2)])
    config = SupervisorConfig(collect_deadline=5.0, checkpoint_every=2)
    with ParallelMatcher(workers=1, fault_plan=plan, supervisor=config) as faulted:
        from repro.parallel.validate import run_recorded

        record = run_recorded(CLOSURE, CHAIN, faulted)
        events = faulted.fault_events()
        summary = faulted.fault_summary()
    reference = validate_parallel(CLOSURE, CHAIN, workers=1).records["rete"]
    assert record == reference
    assert [e.cause for e in events] == ["crash"]
    assert events[0].action == "respawned"
    assert summary["crashes"] == 1 and summary["respawns"] == 1
    assert summary["replay_seconds"] > 0


def test_unfired_fault_changes_nothing():
    """A plan whose positions the run never reaches is a no-op."""
    plan = FaultPlan([FaultSpec(kind=CRASH, index=0, at=10_000)])
    with ParallelMatcher(workers=1, fault_plan=plan) as matcher:
        from repro.parallel.validate import run_recorded

        record = run_recorded(CLOSURE, CHAIN, matcher)
        assert matcher.fault_events() == []
    reference = validate_parallel(CLOSURE, CHAIN, workers=1).records["rete"]
    assert record == reference
