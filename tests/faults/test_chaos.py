"""Chaos end-to-end: real worker processes killed, hung, and demoted
mid-run, with the recovered run proven bit-identical to the inline
reference.

Marked ``chaos`` and deselected from tier-1 (``pyproject.toml`` adds
``-m "not chaos"``); CI runs this file with ``-m chaos`` under a hard
timeout and uploads the recovery report artifact.
"""

import os
import signal

import pytest

from repro.faults import (
    CRASH,
    HANG,
    PIPE_DROP,
    SLOW,
    FaultPlan,
    FaultSpec,
    run_chaos,
    seeded_chaos,
)
from repro.ops5 import ProductionSystem
from repro.parallel import ParallelMatcher, SupervisorConfig
from repro.parallel.validate import run_recorded

pytestmark = pytest.mark.chaos

CLOSURE = """
(p base (parent ^from <x> ^to <y>) - (anc ^from <x> ^to <y>)
   --> (make anc ^from <x> ^to <y>))
(p step (anc ^from <x> ^to <y>) (parent ^from <y> ^to <z>)
        - (anc ^from <x> ^to <z>)
   --> (make anc ^from <x> ^to <z>))
"""

CHAIN = [("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(6)]

#: Chaos tests shrink the hang deadline so detection takes milliseconds.
FAST = SupervisorConfig(collect_deadline=0.5, checkpoint_every=4)


def test_crash_plus_hang_mid_run_is_bit_identical():
    """The acceptance scenario: one shard killed (os._exit -- the
    observable behaviour of kill -9), another hung, mid-run.  The run
    completes and every observable matches the inline reference."""
    plan = FaultPlan(
        [
            FaultSpec(kind=CRASH, index=0, at=3),
            FaultSpec(kind=HANG, index=1, at=5),
        ]
    )
    report = run_chaos(CLOSURE, CHAIN, plan, workers=2, supervisor=FAST)
    assert report.identical, report.divergences
    assert report.halted
    causes = sorted(e["cause"] for e in report.recovery_events)
    assert causes == ["crash", "hang"]
    assert all(e["action"] == "respawned" for e in report.recovery_events)
    assert all(e["replay_seconds"] > 0 for e in report.recovery_events)
    assert report.fault_summary["checkpoint_seconds"] > 0


def test_external_sigkill_mid_run_recovers():
    """A genuine ``kill -9`` from outside, not via the fault plan."""
    reference = run_recorded(CLOSURE, CHAIN, ParallelMatcher(workers=0))
    with ParallelMatcher(workers=2, supervisor=FAST) as matcher:
        system = ProductionSystem(CLOSURE, matcher=matcher)
        for cls, attrs in CHAIN:
            system.add(cls, **attrs)
        fired = []
        for _ in range(4):  # run a few cycles, then murder shard 0
            inst = system.step()
            assert inst is not None
            fired.append((inst.production.name, inst.timetags))
        victim = matcher._shards[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5)
        while True:
            inst = system.step()
            if inst is None:
                break
            fired.append((inst.production.name, inst.timetags))
        events = matcher.fault_events()
    assert tuple(fired) == reference.fired
    assert len(events) >= 1
    assert all(e.cause == "crash" for e in events)


def test_pipe_drop_recovers():
    plan = FaultPlan([FaultSpec(kind=PIPE_DROP, index=1, at=2)])
    report = run_chaos(CLOSURE, CHAIN, plan, workers=2, supervisor=FAST)
    assert report.identical, report.divergences
    assert report.recovery_events[0]["cause"] == "crash"


def test_repeated_failures_demote_to_inline_and_run_completes():
    """Graceful degradation: with max_failures=1 the first failure
    demotes, and the demoted (inline) shard finishes the run."""
    plan = FaultPlan([FaultSpec(kind=CRASH, index=0, at=2)])
    config = SupervisorConfig(collect_deadline=0.5, max_failures=1)
    report = run_chaos(CLOSURE, CHAIN, plan, workers=2, supervisor=config)
    assert report.identical, report.divergences
    assert report.recovery_events[0]["action"] == "demoted"
    assert report.fault_summary["degraded_shards"] == [0]


def test_slow_shard_within_deadline_is_not_a_failure():
    """A straggler inside the collect deadline must not trip recovery."""
    plan = FaultPlan([FaultSpec(kind=SLOW, index=0, at=2, seconds=0.05)])
    config = SupervisorConfig(collect_deadline=5.0)
    report = run_chaos(CLOSURE, CHAIN, plan, workers=2, supervisor=config)
    assert report.identical, report.divergences
    assert report.recovery_events == []
    assert report.fault_summary["crashes"] == 0
    assert report.fault_summary["hangs"] == 0


def test_crash_recovery_over_ring_transport_is_bit_identical():
    """The transport acceptance criterion: seeded crash-plus-hang
    recovery must be bit-identical over the shared-memory ring exactly
    as over pickled pipes -- restore replays cross the control pipe,
    steady-state batches cross the ring, and neither path may leak into
    the observables."""
    from repro.parallel import ring_available

    if not ring_available():
        pytest.skip("shared_memory unavailable on this host")
    reports = {
        kind: seeded_chaos(
            CLOSURE,
            CHAIN,
            seed=13,
            workers=2,
            crashes=1,
            hangs=1,
            supervisor=FAST,
            transport=kind,
        )
        for kind in ("ring", "pipe")
    }
    for kind, report in reports.items():
        assert report.identical, (kind, report.divergences)
        assert report.transport == kind
        assert report.recovery_events, kind
    keyed = [
        [(e["shard"], e["seq"], e["cause"], e["action"]) for e in r.recovery_events]
        for r in reports.values()
    ]
    assert keyed[0] == keyed[1]  # same plan, same recovery story


def test_seeded_chaos_is_reproducible():
    """Equal seeds fault the same (shard, seq) slots and recover the
    same way -- the property that makes a chaos failure debuggable."""
    runs = [
        seeded_chaos(CLOSURE, CHAIN, seed=13, workers=2, crashes=2, supervisor=FAST)
        for _ in range(2)
    ]
    keyed = [
        [(e["shard"], e["seq"], e["cause"], e["action"]) for e in r.recovery_events]
        for r in runs
    ]
    assert keyed[0] == keyed[1]
    assert all(r.identical for r in runs)


def test_metrics_snapshot_reports_recovery():
    """The acceptance criterion's observability half: after a faulted
    run, the unified metrics snapshot carries the recovery events with
    nonzero replay and checkpoint timings."""
    from repro.obs import metrics as obs_metrics

    plan = FaultPlan([FaultSpec(kind=CRASH, index=1, at=4)])
    with ParallelMatcher(workers=2, fault_plan=plan, supervisor=FAST) as matcher:
        system = ProductionSystem(CLOSURE, matcher=matcher)
        for cls, attrs in CHAIN:
            system.add(cls, **attrs)
        system.run(max_cycles=200)
        data = obs_metrics.snapshot(system)
    faults = data["faults"]
    assert faults["crashes"] == 1
    assert faults["respawns"] == 1
    assert faults["replay_seconds"] > 0
    assert faults["checkpoint_seconds"] > 0
    assert faults["events"][0]["shard"] == 1
    assert data["parallel"]["degraded_shards"] == []


def test_cli_chaos_command_round_trip(tmp_path):
    """``repro chaos`` exits 0 on a bit-identical recovery and writes
    the JSON report CI uploads."""
    import json

    from repro.cli import main

    out = tmp_path / "chaos.json"
    code = main(
        [
            "chaos",
            "--demo",
            "closure",
            "--workers",
            "2",
            "--seed",
            "7",
            "--crashes",
            "1",
            "--hangs",
            "1",
            "--collect-deadline",
            "0.5",
            "--report-out",
            str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "repro.chaos/1"
    assert report["identical"] is True
    assert report["recovery_events"]


def test_compiled_kernel_joins_the_chaos_comparison():
    """``with_compiled=True`` adds the generated kernel (under its Rete
    oracle) as a third participant: one run proves fault recovery and
    codegen equivalence on the same program."""
    report = seeded_chaos(
        CLOSURE, CHAIN, seed=7, workers=2, crashes=1, supervisor=FAST,
        with_compiled=True,
    )
    assert report.participants == ["inline", "compiled+oracle", "parallel+faults"]
    assert report.identical, report.divergences
    assert report.snapshot()["participants"] == report.participants


def test_cli_chaos_with_compiled_flag(tmp_path):
    import json

    from repro.cli import main

    out = tmp_path / "chaos.json"
    code = main(
        [
            "chaos", "--demo", "closure", "--workers", "2", "--seed", "7",
            "--crashes", "1", "--collect-deadline", "0.5",
            "--with-compiled", "--report-out", str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert "compiled+oracle" in report["participants"]
    assert report["identical"] is True
