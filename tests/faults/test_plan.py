"""FaultPlan/FaultSpec: addressing, determinism, serialisation."""

import pickle

import pytest

from repro.faults import (
    CRASH,
    HANG,
    SESSION,
    SHARD,
    SLOW,
    FaultPlan,
    FaultSpec,
)


class TestFaultSpec:
    def test_defaults_are_a_shard_crash_at_batch_zero(self):
        spec = FaultSpec(kind=CRASH)
        assert spec.site == SHARD
        assert spec.at == 0
        assert spec.index is None

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=CRASH, site="disk")

    def test_rejects_kind_invalid_for_site(self):
        # Sessions cannot crash-inject (the process is the server).
        with pytest.raises(ValueError):
            FaultSpec(kind=CRASH, site=SESSION)
        # Shards have no structured-error site.
        with pytest.raises(ValueError):
            FaultSpec(kind="error", site=SHARD)

    def test_rejects_negative_position(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=CRASH, at=-1)


class TestFaultPlanConsultation:
    def test_matches_exact_shard_and_seq(self):
        plan = FaultPlan([FaultSpec(kind=CRASH, index=1, at=3)])
        assert plan.shard_fault(1, 3) is not None
        assert plan.shard_fault(0, 3) is None
        assert plan.shard_fault(1, 2) is None

    def test_index_none_matches_every_shard(self):
        plan = FaultPlan([FaultSpec(kind=HANG, index=None, at=2)])
        assert plan.shard_fault(0, 2) is not None
        assert plan.shard_fault(7, 2) is not None

    def test_seq_none_never_fires(self):
        """Recovery re-dispatches carry seq=None: faults are one-shot."""
        plan = FaultPlan([FaultSpec(kind=CRASH, index=0, at=0)])
        assert plan.shard_fault(0, None) is None

    def test_session_faults_address_request_ordinals(self):
        plan = FaultPlan([FaultSpec(kind="error", site=SESSION, at=5)])
        assert plan.session_fault(5) is not None
        assert plan.session_fault(4) is None
        # Session specs are invisible to shards and vice versa.
        assert plan.shard_fault(0, 5) is None

    def test_consultation_does_not_mutate(self):
        plan = FaultPlan([FaultSpec(kind=CRASH, index=0, at=1)])
        assert plan.shard_fault(0, 1) is not None
        assert plan.shard_fault(0, 1) is not None  # still there

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan([FaultSpec(kind=CRASH)])


class TestSeededPlans:
    def test_same_seed_same_plan(self):
        a = FaultPlan.seeded(11, shards=4, crashes=2, hangs=1)
        b = FaultPlan.seeded(11, shards=4, crashes=2, hangs=1)
        assert a.specs == b.specs

    def test_different_seeds_differ(self):
        a = FaultPlan.seeded(1, shards=4, horizon=64, crashes=3)
        b = FaultPlan.seeded(2, shards=4, horizon=64, crashes=3)
        assert a.specs != b.specs

    def test_no_two_faults_share_a_slot(self):
        plan = FaultPlan.seeded(3, shards=2, horizon=8, crashes=4, hangs=4)
        slots = [(s.index, s.at) for s in plan.specs]
        assert len(slots) == len(set(slots)) == 8

    def test_refuses_more_faults_than_slots(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, shards=1, horizon=2, crashes=3)

    def test_slow_faults_carry_the_latency(self):
        plan = FaultPlan.seeded(5, shards=2, slows=2, slow_seconds=0.25)
        slows = [s for s in plan.specs if s.kind == SLOW]
        assert len(slows) == 2
        assert all(s.seconds == 0.25 for s in slows)


class TestSerialisation:
    def test_snapshot_round_trip(self):
        plan = FaultPlan.seeded(9, shards=3, crashes=2, hangs=1, slows=1)
        clone = FaultPlan.from_rows(plan.snapshot())
        assert clone.specs == plan.specs

    def test_plans_pickle(self):
        """Plans cross the fork boundary into worker processes."""
        plan = FaultPlan.seeded(4, shards=2, crashes=1)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
