"""Refraction-memory garbage collection on long runs."""

from repro.ops5 import ProductionSystem

COUNTER = """
(p count-down
  (counter ^n { <n> > 0 })
  -->
  (modify 1 ^n (compute <n> - 1)))

(p done
  (counter ^n 0)
  -->
  (remove 1)
  (halt))
"""


class TestRefractionGC:
    def test_long_run_keeps_refraction_memory_bounded(self):
        ps = ProductionSystem(COUNTER)
        ps.add("counter", n=3000)
        result = ps.run()
        assert result.fired == 3001
        # Without pruning the set would hold 3001 keys; every fired
        # instantiation's WME died on the next modify, so almost all
        # are collectable.
        assert len(ps._fired_keys) < 1100

    def test_refraction_still_enforced_after_gc(self):
        # A production whose match survives its own firing: it must not
        # refire even after several GC passes triggered by other rules.
        # (No halt action: the run ends at quiescence, after `once` got
        # its chance to fire -- and to illegally refire.)
        ps = ProductionSystem("""
          (p count-down
            (counter ^n { <n> > 0 })
            -->
            (modify 1 ^n (compute <n> - 1)))
          (p done (counter ^n 0) --> (remove 1))
          (p once (marker) --> (write saw-marker))
        """)
        ps.add("marker")
        ps.add("counter", n=2000)
        result = ps.run()
        assert result.output.count("saw-marker") == 1
        assert result.halt_reason == "no satisfied production"

    def test_gc_threshold_adapts(self):
        ps = ProductionSystem(COUNTER)
        ps.add("counter", n=1500)
        ps.run()
        # The threshold never drops below the floor.
        assert ps._refraction_gc_threshold >= 512
