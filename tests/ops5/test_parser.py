"""The OPS5 parser and tokenizer."""

import pytest

from repro.ops5 import (
    ConjunctiveTest,
    ConstantTest,
    DisjunctiveTest,
    ParseError,
    Predicate,
    PredicateTest,
    VariableTest,
    parse_production,
    parse_program,
    parse_wme_specs,
)
from repro.ops5.actions import Bind, Halt, Make, Modify, Remove, Write
from repro.ops5.parser import tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("(p x (c ^a <v>) --> (halt))")]
        assert kinds == [
            "lparen", "symbol", "symbol", "lparen", "symbol", "attr", "var",
            "rparen", "arrow", "lparen", "symbol", "rparen", "rparen",
        ]

    def test_predicates_vs_variables(self):
        kinds = {t.text: t.kind for t in tokenize("<= <> <=> < > = <x>")}
        assert kinds["<="] == "pred"
        assert kinds["<>"] == "pred"
        assert kinds["<=>"] == "pred"
        assert kinds["<x>"] == "var"

    def test_disjunction_brackets(self):
        kinds = [t.kind for t in tokenize("<< red green >>")]
        assert kinds == ["ldisj", "symbol", "symbol", "rdisj"]

    def test_numbers(self):
        tokens = tokenize("12 -3 4.5")
        assert [t.kind for t in tokens] == ["number"] * 3

    def test_comments_skipped(self):
        tokens = tokenize("a ; this is a comment\n b")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [(t.line, t.column) for t in tokens] == [(1, 1), (2, 1), (3, 3)]

    def test_symbols_with_hyphens(self):
        [token] = tokenize("find-colored-blk")
        assert token.kind == "symbol"

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as info:
            tokenize("(p x \x01)")
        assert "line 1" in str(info.value)


class TestProductionParsing:
    def test_paper_example(self):
        production = parse_production("""
          (p find-colored-blk
            (goal ^type find-blk ^color <c>)
            (block ^id <i> ^color <c> ^selected no)
            -->
            (modify 2 ^selected yes))
        """)
        assert production.name == "find-colored-blk"
        assert len(production.conditions) == 2
        goal = production.conditions[0]
        assert goal.cls == "goal"
        assert goal.tests["type"] == ConstantTest("find-blk")
        assert goal.tests["color"] == VariableTest("c")
        [action] = production.actions
        assert isinstance(action, Modify)

    def test_negated_condition(self):
        production = parse_production(
            "(p x (a) - (b ^v 1) --> (halt))"
        )
        assert not production.conditions[0].negated
        assert production.conditions[1].negated

    def test_conjunctive_and_disjunctive(self):
        production = parse_production(
            "(p x (a ^n { <v> > 2 } ^c << red blue >>) --> (halt))"
        )
        tests = production.conditions[0].tests
        assert isinstance(tests["n"], ConjunctiveTest)
        assert tests["c"] == DisjunctiveTest(("red", "blue"))

    def test_predicate_operand_forms(self):
        production = parse_production(
            "(p x (a ^n <v>) (b ^m > <v> ^k <> 5) --> (halt))"
        )
        tests = production.conditions[1].tests
        assert tests["m"] == PredicateTest(Predicate.GT, VariableTest("v"))
        assert tests["k"] == PredicateTest(Predicate.NE, ConstantTest(5))

    def test_eq_constant_collapses_to_constant(self):
        production = parse_production("(p x (a ^n = 5) --> (halt))")
        assert production.conditions[0].tests["n"] == ConstantTest(5)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p x (a ^n 1 ^n 2) --> (halt))")

    def test_rhs_actions(self):
        production = parse_production("""
          (p x (a ^v <v>)
            -->
            (make b ^w <v>)
            (remove 1)
            (write saw <v>)
            (bind <t> (compute <v> + 1))
            (make c ^n <t>)
            (halt))
        """)
        kinds = [type(a) for a in production.actions]
        assert kinds == [Make, Remove, Write, Bind, Make, Halt]

    def test_remove_expands_multiple_indices(self):
        production = parse_production("(p x (a) (b) --> (remove 1 2))")
        assert [a.ce_index for a in production.actions] == [1, 2]

    def test_unknown_action(self):
        with pytest.raises(ParseError):
            parse_production("(p x (a) --> (frobnicate))")

    def test_compute_nesting(self):
        production = parse_production(
            "(p x (a ^v <v>) --> (make b ^w (compute <v> * 2 + 1)))"
        )
        make = production.actions[0]
        expr = make.attributes[0][1]
        assert expr.evaluate({"v": 3}) == 7  # (3*2)+1 left-to-right


class TestProgramParsing:
    def test_literalize_recorded_and_enforced(self):
        program = parse_program("""
          (literalize goal type color)
          (p x (goal ^type find) --> (halt))
        """)
        assert program.literalizations["goal"] == ("type", "color")
        with pytest.raises(ParseError):
            parse_program("""
              (literalize goal type)
              (p x (goal ^colour red) --> (halt))
            """)

    def test_undeclared_classes_are_free_form(self):
        program = parse_program("(p x (anything ^whatever 1) --> (halt))")
        assert len(program.productions) == 1

    def test_production_named_lookup(self):
        program = parse_program("(p one (a) --> (halt)) (p two (b) --> (halt))")
        assert program.production_named("two").name == "two"
        with pytest.raises(KeyError):
            program.production_named("three")

    def test_parse_production_requires_exactly_one(self):
        with pytest.raises(ParseError):
            parse_production("(p one (a) --> (halt)) (p two (b) --> (halt))")

    def test_top_level_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(q something)")


class TestWmeSpecs:
    def test_parse_wme_specs(self):
        specs = parse_wme_specs("(goal ^type find ^n 3) (block)")
        assert specs == [("goal", {"type": "find", "n": 3}), ("block", {})]

    def test_values_must_be_constants(self):
        with pytest.raises(ParseError):
            parse_wme_specs("(goal ^type <v>)")
