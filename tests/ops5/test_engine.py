"""The recognize--act engine."""

import pytest

from repro.ops5 import (
    DuplicateProductionError,
    EngineListener,
    ExecutionError,
    ProductionSystem,
    parse_program,
)
from repro.naive import NaiveMatcher
from repro.rete import ReteNetwork


COUNTER = """
(p count-down
  (counter ^n { <n> > 0 })
  -->
  (modify 1 ^n (compute <n> - 1))
  (write tick <n>))

(p done
  (counter ^n 0)
  -->
  (remove 1)
  (halt))
"""


@pytest.fixture(params=["rete", "naive"])
def matcher(request):
    return ReteNetwork() if request.param == "rete" else NaiveMatcher()


class TestRunLoop:
    def test_counts_down_and_halts(self, matcher):
        ps = ProductionSystem(COUNTER, matcher=matcher)
        ps.add("counter", n=3)
        result = ps.run()
        assert result.fired == 4
        assert result.halted and result.halt_reason == "halt action"
        assert result.output == ["tick 3", "tick 2", "tick 1"]
        assert len(ps.memory) == 0

    def test_halts_when_nothing_satisfied(self, matcher):
        ps = ProductionSystem(COUNTER, matcher=matcher)
        result = ps.run()
        assert result.fired == 0
        assert result.halt_reason == "no satisfied production"

    def test_cycle_limit(self, matcher):
        ps = ProductionSystem(COUNTER, matcher=matcher)
        ps.add("counter", n=100)
        result = ps.run(max_cycles=5)
        assert result.fired == 5
        assert not result.halted
        assert result.halt_reason == "cycle limit"

    def test_step_returns_fired_instantiation(self):
        ps = ProductionSystem(COUNTER)
        ps.add("counter", n=1)
        fired = ps.step()
        assert fired.production.name == "count-down"
        assert ps.step().production.name == "done"
        assert ps.step() is None

    def test_refraction_prevents_refiring(self):
        # A production whose RHS does not invalidate its own match would
        # loop forever without refraction.
        ps = ProductionSystem("(p noisy (thing) --> (write hi))")
        ps.add("thing")
        result = ps.run(max_cycles=10)
        assert result.fired == 1
        assert result.output == ["hi"]


class TestModifySemantics:
    def test_modify_assigns_fresh_timetag(self):
        ps = ProductionSystem(
            "(p bump (c ^n 1) --> (modify 1 ^n 2))"
        )
        wme = ps.add("c", n=1)
        ps.run()
        [survivor] = ps.memory.snapshot()
        assert survivor.get("n") == 2
        assert survivor.timetag > wme.timetag

    def test_modify_preserves_unmentioned_attributes(self):
        ps = ProductionSystem("(p bump (c ^n 1) --> (modify 1 ^n 2))")
        ps.add("c", n=1, keep="me")
        ps.run()
        [survivor] = ps.memory.snapshot()
        assert survivor.get("keep") == "me"

    def test_modify_counts_as_remove_plus_add(self):
        ps = ProductionSystem("(p bump (c ^n 1) --> (modify 1 ^n 2))")
        ps.add("c", n=1)
        result = ps.run()
        [cycle] = result.cycles
        assert (cycle.adds, cycle.removes) == (1, 1)
        assert result.mean_changes_per_firing == 2.0

    def test_modify_after_remove_fails(self):
        ps = ProductionSystem(
            "(p bad (c) --> (remove 1) (modify 1 ^n 5))"
        )
        ps.add("c")
        with pytest.raises(ExecutionError):
            ps.run()

    def test_second_modify_sees_first(self):
        ps = ProductionSystem(
            "(p twice (c ^n <n>) --> (modify 1 ^n 5) (modify 1 ^m 6))"
        )
        ps.add("c", n=1)
        ps.run(1)
        [survivor] = ps.memory.snapshot()
        assert survivor.get("n") == 5
        assert survivor.get("m") == 6


class TestProgramManagement:
    def test_duplicate_production_rejected(self):
        ps = ProductionSystem("(p one (a) --> (halt))")
        with pytest.raises(DuplicateProductionError):
            ps.add_production(parse_program("(p one (b) --> (halt))").productions[0])

    def test_add_production_matches_existing_memory(self):
        ps = ProductionSystem()
        ps.add("c", n=1)
        ps.add_production(parse_program("(p now (c ^n 1) --> (halt))").productions[0])
        assert len(ps.conflict_set) == 1

    def test_remove_production(self):
        ps = ProductionSystem("(p gone (c) --> (halt))")
        ps.add("c")
        assert len(ps.conflict_set) == 1
        ps.remove_production("gone")
        assert len(ps.conflict_set) == 0

    def test_load_memory(self):
        ps = ProductionSystem()
        wmes = ps.load_memory([("a", {"x": 1}), ("b", {})])
        assert [w.cls for w in wmes] == ["a", "b"]
        assert len(ps.memory) == 2


class TestListener:
    def test_hooks_fire_in_order(self):
        events = []

        class Recorder(EngineListener):
            def on_cycle(self, cycle, fired):
                events.append(("cycle", cycle, fired.production.name))

            def on_change(self, cycle, kind, wme):
                events.append(("change", cycle, kind, wme.cls))

            def on_halt(self, cycle, reason):
                events.append(("halt", reason))

        ps = ProductionSystem(COUNTER, listener=Recorder())
        ps.add("counter", n=1)
        ps.run()
        assert events[0] == ("change", 0, "add", "counter")
        assert ("cycle", 1, "count-down") in events
        assert events[-1] == ("halt", "halt action")

    def test_strategies_selectable_by_name(self):
        ps = ProductionSystem(COUNTER, strategy="mea")
        ps.add("counter", n=1)
        assert ps.run().fired == 2


class TestReset:
    def test_reset_allows_a_fresh_run_on_the_same_network(self):
        ps = ProductionSystem(COUNTER)
        ps.add("counter", n=2)
        first = ps.run()
        assert first.fired == 3
        ps.reset()
        assert len(ps.memory) == 0
        assert not ps.halted
        ps.add("counter", n=4)
        second = ps.run()
        assert second.fired == 5
        assert second.output == ["tick 4", "tick 3", "tick 2", "tick 1"]

    def test_timetags_not_reused_across_resets(self):
        ps = ProductionSystem(COUNTER)
        ps.add("counter", n=1)
        ps.run()
        ps.reset()
        wme = ps.add("counter", n=1)
        assert wme.timetag > 2  # earlier run consumed tags

    def test_refraction_cleared_by_reset(self):
        ps = ProductionSystem("(p once (thing) --> (write hi))")
        ps.add("thing")
        assert ps.run().output == ["hi"]
        ps.reset()
        ps.add("thing")
        assert ps.run().output == ["hi"]  # fires again: new instantiation

    def test_reset_keeps_productions(self):
        ps = ProductionSystem(COUNTER)
        ps.reset()
        assert ps.matcher.production_names() == {"count-down", "done"}
