"""The conflict set and the LEX/MEA strategies."""

import pytest

from repro.ops5 import (
    ConflictSet,
    LexStrategy,
    MeaStrategy,
    Ops5Error,
    Production,
    strategy_named,
)
from repro.ops5.condition import ConditionElement, ConstantTest, VariableTest
from repro.ops5.production import Instantiation
from repro.ops5.wme import make_wme


def _production(name: str, ces: int = 1, extra_tests: int = 0) -> Production:
    conditions = []
    for i in range(ces):
        tests = {"v": VariableTest(f"x{i}")}
        for j in range(extra_tests):
            tests[f"t{j}"] = ConstantTest("nil")
        conditions.append(ConditionElement("c", tests))
    return Production(name, conditions, ())


def _wme(timetag: int):
    wme = make_wme("c", v=1)
    wme.timetag = timetag
    return wme


def _inst(production: Production, *timetags: int) -> Instantiation:
    return Instantiation(production, tuple(_wme(t) for t in timetags))


class TestConflictSet:
    def test_insert_and_delete(self):
        cs = ConflictSet()
        inst = _inst(_production("p"), 1)
        cs.insert(inst)
        assert inst in cs and len(cs) == 1
        cs.delete(inst)
        assert len(cs) == 0
        assert (cs.total_inserts, cs.total_deletes) == (1, 1)

    def test_double_insert_rejected(self):
        cs = ConflictSet()
        production = _production("p")
        cs.insert(_inst(production, 1))
        with pytest.raises(Ops5Error):
            cs.insert(_inst(production, 1))

    def test_delete_absent_rejected(self):
        cs = ConflictSet()
        with pytest.raises(Ops5Error):
            cs.delete(_inst(_production("p"), 1))

    def test_snapshot_is_frozen_keys(self):
        cs = ConflictSet()
        inst = _inst(_production("p"), 3)
        cs.insert(inst)
        snap = cs.snapshot()
        assert snap == frozenset({("p", (3,))})


class TestLexOrdering:
    def test_recency_dominates(self):
        production = _production("p", ces=2)
        older = _inst(production, 1, 2)
        newer = _inst(production, 1, 3)
        chosen = LexStrategy().select([older, newer], lambda key: False)
        assert chosen == newer

    def test_recency_compares_sorted_descending(self):
        production = _production("p", ces=2)
        a = _inst(production, 5, 1)  # recency (5, 1)
        b = _inst(production, 4, 3)  # recency (4, 3)
        assert LexStrategy().select([a, b], lambda key: False) == a

    def test_longer_wins_on_prefix_tie(self):
        short = _inst(_production("p2", ces=1), 5)
        long = _inst(_production("p3", ces=2), 5, 3)
        assert LexStrategy().select([short, long], lambda key: False) == long

    def test_specificity_breaks_recency_ties(self):
        plain = _production("plain")
        specific = _production("specific", extra_tests=2)
        a = _inst(plain, 7)
        b = _inst(specific, 7)
        assert LexStrategy().select([a, b], lambda key: False) == b

    def test_refraction_excludes_fired(self):
        production = _production("p")
        inst = _inst(production, 9)
        fired = {inst.key}
        assert LexStrategy().select([inst], fired.__contains__) is None

    def test_order_lists_best_first(self):
        production = _production("p", ces=1)
        instantiations = [_inst(production, t) for t in (2, 5, 3)]
        ordered = LexStrategy().order(instantiations)
        assert [i.timetags[0] for i in ordered] == [5, 3, 2]


class TestMeaOrdering:
    def test_first_ce_recency_first(self):
        production = _production("p", ces=2)
        # LEX would pick a (recency (9, 1) > (5, 4)); MEA looks at the
        # first CE's timetag: 4 < 5, so b wins under MEA.
        a = _inst(production, 1, 9)
        b = _inst(production, 5, 4)
        assert LexStrategy().select([a, b], lambda key: False) == a
        assert MeaStrategy().select([a, b], lambda key: False) == b

    def test_falls_back_to_lex(self):
        production = _production("p", ces=2)
        a = _inst(production, 5, 2)
        b = _inst(production, 5, 3)
        assert MeaStrategy().select([a, b], lambda key: False) == b


class TestStrategyLookup:
    def test_names(self):
        assert isinstance(strategy_named("lex"), LexStrategy)
        assert isinstance(strategy_named("MEA"), MeaStrategy)

    def test_unknown(self):
        with pytest.raises(Ops5Error):
            strategy_named("random")
