"""The conflict set and the LEX/MEA strategies."""

import pytest

from repro.ops5 import (
    ConflictSet,
    LexStrategy,
    MeaStrategy,
    Ops5Error,
    Production,
    strategy_named,
)
from repro.ops5.condition import ConditionElement, ConstantTest, VariableTest
from repro.ops5.production import Instantiation
from repro.ops5.wme import make_wme


def _production(name: str, ces: int = 1, extra_tests: int = 0) -> Production:
    conditions = []
    for i in range(ces):
        tests = {"v": VariableTest(f"x{i}")}
        for j in range(extra_tests):
            tests[f"t{j}"] = ConstantTest("nil")
        conditions.append(ConditionElement("c", tests))
    return Production(name, conditions, ())


def _wme(timetag: int):
    wme = make_wme("c", v=1)
    wme.timetag = timetag
    return wme


def _inst(production: Production, *timetags: int) -> Instantiation:
    return Instantiation(production, tuple(_wme(t) for t in timetags))


class TestConflictSet:
    def test_insert_and_delete(self):
        cs = ConflictSet()
        inst = _inst(_production("p"), 1)
        cs.insert(inst)
        assert inst in cs and len(cs) == 1
        cs.delete(inst)
        assert len(cs) == 0
        assert (cs.total_inserts, cs.total_deletes) == (1, 1)

    def test_double_insert_rejected(self):
        cs = ConflictSet()
        production = _production("p")
        cs.insert(_inst(production, 1))
        with pytest.raises(Ops5Error):
            cs.insert(_inst(production, 1))

    def test_delete_absent_rejected(self):
        cs = ConflictSet()
        with pytest.raises(Ops5Error):
            cs.delete(_inst(_production("p"), 1))

    def test_snapshot_is_frozen_keys(self):
        cs = ConflictSet()
        inst = _inst(_production("p"), 3)
        cs.insert(inst)
        snap = cs.snapshot()
        assert snap == frozenset({("p", (3,))})

    def test_snapshot_keys_drive_delete_key_round_trip(self):
        # The parallel executor retracts by bare key from a shard's edit
        # stream; a snapshot taken before must replay back to empty.
        cs = ConflictSet()
        production = _production("p", ces=2)
        for tags in ((1, 2), (1, 3), (4, 2)):
            cs.insert(_inst(production, *tags))
        keys = cs.snapshot()
        assert len(keys) == 3
        for key in keys:
            assert cs.get(key) is not None
            cs.delete_key(key)
        assert len(cs) == 0
        assert cs.total_deletes == 3
        assert cs.snapshot() == frozenset()

    def test_snapshot_is_immutable_to_later_edits(self):
        cs = ConflictSet()
        inst = _inst(_production("p"), 1)
        cs.insert(inst)
        before = cs.snapshot()
        cs.delete_key(inst.key)
        assert before == frozenset({inst.key})  # unchanged by the delete

    def test_delete_key_absent_raises_with_key(self):
        cs = ConflictSet()
        with pytest.raises(Ops5Error, match="absent key"):
            cs.delete_key(("ghost", (1,)))

    def test_reinsert_after_delete_key_is_legal(self):
        cs = ConflictSet()
        production = _production("p")
        inst = _inst(production, 7)
        cs.insert(inst)
        cs.delete_key(inst.key)
        cs.insert(_inst(production, 7))  # same identity, fresh entry
        assert len(cs) == 1
        assert (cs.total_inserts, cs.total_deletes) == (2, 1)


class TestLexOrdering:
    def test_recency_dominates(self):
        production = _production("p", ces=2)
        older = _inst(production, 1, 2)
        newer = _inst(production, 1, 3)
        chosen = LexStrategy().select([older, newer], lambda key: False)
        assert chosen == newer

    def test_recency_compares_sorted_descending(self):
        production = _production("p", ces=2)
        a = _inst(production, 5, 1)  # recency (5, 1)
        b = _inst(production, 4, 3)  # recency (4, 3)
        assert LexStrategy().select([a, b], lambda key: False) == a

    def test_longer_wins_on_prefix_tie(self):
        short = _inst(_production("p2", ces=1), 5)
        long = _inst(_production("p3", ces=2), 5, 3)
        assert LexStrategy().select([short, long], lambda key: False) == long

    def test_specificity_breaks_recency_ties(self):
        plain = _production("plain")
        specific = _production("specific", extra_tests=2)
        a = _inst(plain, 7)
        b = _inst(specific, 7)
        assert LexStrategy().select([a, b], lambda key: False) == b

    def test_refraction_excludes_fired(self):
        production = _production("p")
        inst = _inst(production, 9)
        fired = {inst.key}
        assert LexStrategy().select([inst], fired.__contains__) is None

    def test_order_lists_best_first(self):
        production = _production("p", ces=1)
        instantiations = [_inst(production, t) for t in (2, 5, 3)]
        ordered = LexStrategy().order(instantiations)
        assert [i.timetags[0] for i in ordered] == [5, 3, 2]


class TestMeaOrdering:
    def test_first_ce_recency_first(self):
        production = _production("p", ces=2)
        # LEX would pick a (recency (9, 1) > (5, 4)); MEA looks at the
        # first CE's timetag: 4 < 5, so b wins under MEA.
        a = _inst(production, 1, 9)
        b = _inst(production, 5, 4)
        assert LexStrategy().select([a, b], lambda key: False) == a
        assert MeaStrategy().select([a, b], lambda key: False) == b

    def test_falls_back_to_lex(self):
        production = _production("p", ces=2)
        a = _inst(production, 5, 2)
        b = _inst(production, 5, 3)
        assert MeaStrategy().select([a, b], lambda key: False) == b


class TestMeaFirstCeIsAlwaysPositive:
    """MEA's focus element: ``timetags[0]`` is sound because a leading
    negated CE is rejected at parse time (for every strategy), and
    negated CEs elsewhere bind no WME so they never shift position 0."""

    def test_leading_negated_ce_rejected_at_parse_time(self):
        from repro.ops5 import ValidationError, parse_program

        with pytest.raises(ValidationError, match="first condition element"):
            parse_program("(p bad -(goal ^done yes) (a) --> (halt))")

    def test_mid_lhs_negation_does_not_shift_the_focus(self):
        from repro.ops5 import ProductionSystem

        program = """
        (p focus (goal ^id <g>) -(blocked ^id <g>) (item ^id <g>)
           --> (write picked <g>) (remove 1))
        """
        system = ProductionSystem(program, strategy="mea")
        # goal 2 is older than goal 1 by first-CE recency.
        system.add("goal", id="b")
        system.add("item", id="b")
        system.add("goal", id="a")
        system.add("item", id="a")
        system.run(1)
        # MEA keys on the goal (first CE) timetag: the newest goal wins,
        # with the negated CE contributing nothing to the key.
        assert system.output == ["picked a"]



class TestStrategyLookup:
    def test_names(self):
        assert isinstance(strategy_named("lex"), LexStrategy)
        assert isinstance(strategy_named("MEA"), MeaStrategy)

    def test_unknown(self):
        with pytest.raises(Ops5Error):
            strategy_named("random")
