"""Behavioural differences between LEX and MEA on real goal structures."""

from repro.ops5 import ProductionSystem

# Two goals; each goal's work takes two steps.  MEA keys on the first
# CE (the goal), so it finishes one goal before starting the other;
# LEX chases raw recency, interleaving with the freshest data.
SRC = """
(p step-one
  (goal ^id <g> ^phase one)
  -->
  (modify 1 ^phase two)
  (make note ^goal <g> ^step one))

(p step-two
  (goal ^id <g> ^phase two)
  -->
  (modify 1 ^phase done)
  (make note ^goal <g> ^step two))

(p finished
  (goal ^phase done)
  - (goal ^phase one)
  - (goal ^phase two)
  -->
  (halt))
"""


def _steps(strategy):
    ps = ProductionSystem(SRC, strategy=strategy)
    ps.add("goal", id="g1", phase="one")
    ps.add("goal", id="g2", phase="one")
    ps.run(20)
    notes = ps.memory.of_class("note")
    return [(w.get("goal"), w.get("step")) for w in sorted(notes, key=lambda w: w.timetag)]


class TestMeaVsLex:
    def test_mea_is_goal_directed(self):
        # MEA keys on the goal element: having touched g2 (most recent
        # goal), it drives g2 to completion before returning to g1.
        steps = _steps("mea")
        assert steps[0][0] == "g2" and steps[1][0] == "g2"
        assert steps[2][0] == "g1" and steps[3][0] == "g1"

    def test_both_reach_the_same_fixpoint(self):
        lex = _steps("lex")
        mea = _steps("mea")
        assert sorted(lex) == sorted(mea)

    def test_lex_prefers_recency(self):
        # Under LEX the first firing also picks g2 (newer), and the
        # modify keeps g2 the most recent match, so LEX happens to
        # agree here -- the guarantee we rely on elsewhere is only that
        # runs are deterministic.
        first = _steps("lex")
        second = _steps("lex")
        assert first == second


class TestRefractionAcrossStrategies:
    SRC = "(p loop (tick) --> (write t))"

    def test_no_infinite_refires_either_way(self):
        for strategy in ("lex", "mea"):
            ps = ProductionSystem(self.SRC, strategy=strategy)
            ps.add("tick")
            assert ps.run(10).fired == 1
