"""Condition-element tests and LHS analysis."""

import pytest

from repro.ops5 import (
    ConditionElement,
    ConjunctiveTest,
    ConstantTest,
    DisjunctiveTest,
    Predicate,
    PredicateTest,
    ValidationError,
    VariableTest,
    analyze_lhs,
    make_wme,
    wme_passes_alpha,
)


class TestPredicates:
    def test_equality_is_numeric_aware(self):
        assert Predicate.EQ.apply(1, 1.0)
        assert not Predicate.EQ.apply(1, 2)

    def test_inequality(self):
        assert Predicate.NE.apply("a", "b")
        assert not Predicate.NE.apply(3, 3)

    def test_ordering_needs_numbers(self):
        assert Predicate.LT.apply(1, 2)
        assert Predicate.GE.apply(2, 2)
        assert not Predicate.GT.apply("b", "a")  # symbols never ordered

    def test_same_type(self):
        assert Predicate.SAME_TYPE.apply(1, 99)
        assert Predicate.SAME_TYPE.apply("x", "y")
        assert not Predicate.SAME_TYPE.apply(1, "y")


class TestElementaryTests:
    def test_constant(self):
        assert ConstantTest("red").evaluate("red", {}) == {}
        assert ConstantTest("red").evaluate("blue", {}) is None

    def test_variable_binds_then_checks(self):
        test = VariableTest("x")
        bindings = test.evaluate(5, {})
        assert bindings == {"x": 5}
        assert test.evaluate(5, bindings) == {"x": 5}
        assert test.evaluate(6, bindings) is None

    def test_variable_does_not_mutate_input(self):
        start = {}
        VariableTest("x").evaluate(1, start)
        assert start == {}

    def test_predicate_with_constant(self):
        test = PredicateTest(Predicate.GT, ConstantTest(5))
        assert test.evaluate(6, {}) == {}
        assert test.evaluate(5, {}) is None

    def test_predicate_with_bound_variable(self):
        test = PredicateTest(Predicate.NE, VariableTest("x"))
        assert test.evaluate("b", {"x": "a"}) == {"x": "a"}
        assert test.evaluate("a", {"x": "a"}) is None

    def test_predicate_with_unbound_variable_fails(self):
        test = PredicateTest(Predicate.NE, VariableTest("x"))
        assert test.evaluate("a", {}) is None

    def test_conjunction(self):
        test = ConjunctiveTest(
            (VariableTest("x"), PredicateTest(Predicate.GT, ConstantTest(2)))
        )
        assert test.evaluate(3, {}) == {"x": 3}
        assert test.evaluate(1, {}) is None

    def test_disjunction(self):
        test = DisjunctiveTest(("red", "green"))
        assert test.evaluate("green", {}) == {}
        assert test.evaluate("blue", {}) is None


class TestConditionElementMatch:
    def test_class_must_match(self):
        ce = ConditionElement("block", {})
        assert ce.match(make_wme("goal"), {}) is None
        assert ce.match(make_wme("block"), {}) == {}

    def test_missing_attribute_reads_nil(self):
        ce = ConditionElement("block", {"color": ConstantTest("nil")})
        assert ce.match(make_wme("block"), {}) == {}
        assert ce.match(make_wme("block", color="red"), {}) is None

    def test_binding_flows_between_attributes(self):
        ce = ConditionElement(
            "pair", {"a": VariableTest("x"), "b": VariableTest("x")}
        )
        assert ce.match(make_wme("pair", a=1, b=1), {}) == {"x": 1}
        assert ce.match(make_wme("pair", a=1, b=2), {}) is None

    def test_sorted_attribute_order_for_predicates(self):
        # 'a' sorts before 'b': the variable binds at ^a, predicate at ^b.
        ce = ConditionElement(
            "pair",
            {"a": VariableTest("x"), "b": PredicateTest(Predicate.GT, VariableTest("x"))},
        )
        assert ce.match(make_wme("pair", a=1, b=2), {}) == {"x": 1}
        assert ce.match(make_wme("pair", a=2, b=1), {}) is None

    def test_specificity_counts_class_and_tests(self):
        ce = ConditionElement(
            "block",
            {"color": ConstantTest("red"),
             "size": ConjunctiveTest((VariableTest("s"), PredicateTest(Predicate.GT, ConstantTest(1))))},
        )
        assert ce.specificity() == 4  # class + color + 2 conjuncts


class TestAnalyzeLhs:
    def test_rejects_empty_lhs(self):
        with pytest.raises(ValidationError):
            analyze_lhs([])

    def test_rejects_negated_first(self):
        with pytest.raises(ValidationError):
            analyze_lhs([ConditionElement("x", {}, negated=True)])

    def test_constant_tests_are_alpha(self):
        [analysis] = analyze_lhs([ConditionElement("b", {"c": ConstantTest("red")})])
        assert analysis.alpha_tests == (("c", ConstantTest("red")),)
        assert analysis.join_tests == ()

    def test_intra_ce_variable_repetition(self):
        [analysis] = analyze_lhs(
            [ConditionElement("b", {"a": VariableTest("x"), "b": VariableTest("x")})]
        )
        assert analysis.intra_tests == (("a", "b"),)
        assert analysis.binders == {"x": "a"}

    def test_cross_ce_variable_becomes_join(self):
        first = ConditionElement("goal", {"want": VariableTest("c")})
        second = ConditionElement("block", {"color": VariableTest("c")})
        _, analysis = analyze_lhs([first, second])
        assert len(analysis.join_tests) == 1
        join = analysis.join_tests[0]
        assert join.own_attribute == "color"
        assert join.predicate is Predicate.EQ
        assert (join.other_ce, join.other_attribute) == (0, "want")

    def test_predicate_on_unbound_variable_rejected(self):
        ce = ConditionElement(
            "b", {"size": PredicateTest(Predicate.GT, VariableTest("n"))}
        )
        with pytest.raises(ValidationError):
            analyze_lhs([ce])

    def test_predicate_against_earlier_ce(self):
        first = ConditionElement("n", {"v": VariableTest("x")})
        second = ConditionElement(
            "n", {"v": PredicateTest(Predicate.GT, VariableTest("x"))}
        )
        _, analysis = analyze_lhs([first, second])
        [join] = analysis.join_tests
        assert join.predicate is Predicate.GT
        assert join.other_ce == 0

    def test_negated_ce_local_variable_is_wildcard(self):
        first = ConditionElement("goal", {})
        neg = ConditionElement("b", {"v": VariableTest("w")}, negated=True)
        last = ConditionElement("c", {"v": VariableTest("w")})
        analyses = analyze_lhs([first, neg, last])
        # The negated CE's binding must not leak: the last CE's 'w' is a
        # fresh first binding, not a join against the negated CE.
        assert analyses[2].join_tests == ()
        assert analyses[2].binders == {"w": "v"}

    def test_negated_ce_references_earlier_binding(self):
        first = ConditionElement("goal", {"want": VariableTest("c")})
        neg = ConditionElement("b", {"color": VariableTest("c")}, negated=True)
        analyses = analyze_lhs([first, neg])
        [join] = analyses[1].join_tests
        assert join.other_ce == 0


class TestAlphaSemantics:
    def test_wme_passes_alpha_checks_class_constants_intra(self):
        ce = ConditionElement(
            "b",
            {"c": ConstantTest("red"), "x": VariableTest("v"), "y": VariableTest("v")},
        )
        [analysis] = analyze_lhs([ce])
        assert wme_passes_alpha(make_wme("b", c="red", x=1, y=1), analysis)
        assert not wme_passes_alpha(make_wme("b", c="red", x=1, y=2), analysis)
        assert not wme_passes_alpha(make_wme("b", c="blue", x=1, y=1), analysis)
        assert not wme_passes_alpha(make_wme("z", c="red", x=1, y=1), analysis)

    def test_variables_do_not_constrain_alpha(self):
        ce = ConditionElement("b", {"x": VariableTest("v")})
        [analysis] = analyze_lhs([ce])
        assert wme_passes_alpha(make_wme("b"), analysis)  # nil binds fine
