"""The watch (tracing) facility."""

import io

import pytest

from repro.ops5 import (
    CHANGES,
    CompositeListener,
    FIRINGS,
    ProductionSystem,
    SILENT,
    WatchListener,
)

SRC = """
(p bump (c ^n 1) --> (modify 1 ^n 2))
(p stop (c ^n 2) --> (remove 1) (halt))
"""


def _run(level):
    stream = io.StringIO()
    ps = ProductionSystem(SRC, listener=WatchListener(level, stream))
    ps.add("c", n=1)
    ps.run()
    return stream.getvalue()


class TestWatchLevels:
    def test_silent(self):
        assert _run(SILENT) == ""

    def test_firings(self):
        out = _run(FIRINGS)
        assert "1. bump" in out
        assert "2. stop" in out
        assert "halted after 2 cycles" in out
        assert "=>" not in out  # no change lines at level 1

    def test_changes(self):
        out = _run(CHANGES)
        assert "1. bump" in out
        assert "=> (c ^n 2)" in out
        assert "<= (c ^n 1)" in out

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            WatchListener(7)

    def test_firing_line_shows_timetags(self):
        out = _run(FIRINGS)
        assert "[1]" in out  # bump matched the first WME


class TestCompositeListener:
    def test_fans_out_in_order(self):
        calls = []

        class Probe(WatchListener):
            def __init__(self, tag):
                super().__init__(SILENT, io.StringIO())
                self.tag = tag

            def on_cycle(self, cycle, fired):
                calls.append((self.tag, cycle))

        ps = ProductionSystem(
            SRC, listener=CompositeListener([Probe("a"), Probe("b")])
        )
        ps.add("c", n=1)
        ps.run()
        assert calls[:2] == [("a", 1), ("b", 1)]

    def test_combines_watch_and_capture(self):
        from repro.rete import ReteNetwork
        from repro.trace import TraceCapture

        stream = io.StringIO()
        capture = TraceCapture()
        listener = CompositeListener([WatchListener(FIRINGS, stream), capture])
        net = ReteNetwork(listener=capture)
        ps = ProductionSystem(SRC, matcher=net, listener=listener)
        ps.add("c", n=1)
        ps.run()
        trace = capture.finalize("watched", net)
        assert "1. bump" in stream.getvalue()
        assert trace.total_changes == 3  # modify (remove+add) + final remove
