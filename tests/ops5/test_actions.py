"""RHS actions and value expressions."""

import pytest

from repro.ops5 import ExecutionError
from repro.ops5.actions import (
    Bind,
    Compute,
    Constant,
    Make,
    Modify,
    Remove,
    VariableRef,
    Write,
    actions_are_valid,
)


class TestExpressions:
    def test_constant(self):
        assert Constant(5).evaluate({}) == 5

    def test_variable_ref(self):
        assert VariableRef("x").evaluate({"x": "red"}) == "red"

    def test_unbound_variable_raises(self):
        with pytest.raises(ExecutionError):
            VariableRef("x").evaluate({})

    def test_compute_left_to_right(self):
        # OPS5 compute has no precedence: 2 + 3 * 4 = (2+3)*4 = 20.
        expr = Compute(
            (Constant(2), Constant(3), Constant(4)), ("+", "*")
        )
        assert expr.evaluate({}) == 20

    def test_compute_with_variables(self):
        expr = Compute((VariableRef("n"), Constant(1)), ("-",))
        assert expr.evaluate({"n": 5}) == 4

    def test_compute_modulus_spellings(self):
        assert Compute((Constant(7), Constant(3)), ("mod",)).evaluate({}) == 1

    def test_compute_normalises_whole_floats(self):
        result = Compute((Constant(5.0), Constant(1)), ("+",)).evaluate({})
        assert result == 6
        assert isinstance(result, int)

    def test_compute_on_symbol_raises(self):
        expr = Compute((Constant("red"), Constant(1)), ("+",))
        with pytest.raises(ExecutionError):
            expr.evaluate({})

    def test_compute_division_by_zero(self):
        expr = Compute((Constant(1), Constant(0)), ("//",))
        with pytest.raises(ExecutionError):
            expr.evaluate({})

    def test_compute_unknown_operator_rejected_at_build(self):
        with pytest.raises(ExecutionError):
            Compute((Constant(1), Constant(2)), ("**",))

    def test_compute_arity_checked(self):
        with pytest.raises(ExecutionError):
            Compute((Constant(1),), ("+",))


class TestActions:
    def test_make_builds_wme(self):
        action = Make("block", (("color", VariableRef("c")), ("size", Constant(2))))
        wme = action.build({"c": "red"})
        assert wme.cls == "block"
        assert wme.get("color") == "red"
        assert wme.get("size") == 2

    def test_modify_updates(self):
        action = Modify(2, (("n", Compute((VariableRef("n"), Constant(1)), ("+",))),))
        assert action.updates({"n": 3}) == {"n": 4}
        assert action.ce_references() == [2]

    def test_write_renders(self):
        action = Write((Constant("hello"), VariableRef("x")))
        assert action.render({"x": 42}) == "hello 42"

    def test_variables_collected(self):
        action = Make("b", (("v", VariableRef("x")), ("w", VariableRef("y"))))
        assert action.variables() == ["x", "y"]
        assert Bind("z", VariableRef("q")).variables() == ["q"]


class TestActionValidation:
    def test_out_of_range_reference(self):
        problems = actions_are_valid([Remove(3)], [False, False])
        assert problems and "3" in problems[0]

    def test_negated_reference(self):
        problems = actions_are_valid([Remove(2)], [False, True])
        assert problems and "negated" in problems[0]

    def test_valid_reference(self):
        assert actions_are_valid([Remove(1), Modify(2, ())], [False, False]) == []
