"""Edge-case coverage for the parser's error paths.

Each test pins one diagnostic: the error type, and enough of the message
that a regression to a generic "syntax error" (or to silent acceptance)
fails loudly.
"""

import pytest

from repro.ops5 import (
    DuplicateProductionError,
    ExecutionError,
    ParseError,
    ProductionSystem,
    ValidationError,
    parse_program,
)


# -- truncated input ----------------------------------------------------------


def test_unterminated_lhs_reports_end_of_input():
    with pytest.raises(ParseError, match="unexpected end of input"):
        parse_program("(p broken (goal ^want x)")


def test_unterminated_production_body():
    with pytest.raises(ParseError, match="unexpected end of input"):
        parse_program("(p broken (goal ^want x) -->")


def test_missing_arrow_is_rejected():
    # Without -->, the action list is read as more LHS and fails there.
    with pytest.raises(ParseError):
        parse_program("(p broken (goal ^want x) (make done))")


# -- duplicate production names ----------------------------------------------


def test_duplicate_production_names_raise():
    source = """
    (p same (a ^v 1) --> (halt))
    (p same (b ^v 2) --> (halt))
    """
    with pytest.raises(DuplicateProductionError, match="same"):
        ProductionSystem(source)


def test_duplicate_name_added_later_raises_too():
    system = ProductionSystem("(p same (a ^v 1) --> (halt))")
    from repro.ops5 import parse_production

    with pytest.raises(DuplicateProductionError):
        system.add_production(parse_production("(p same (b ^v 2) --> (halt))"))


# -- malformed modify / remove -------------------------------------------------


def test_modify_with_non_numeric_index():
    with pytest.raises(ParseError, match="expected number"):
        parse_program("(p m (goal ^want x) --> (modify q ^want y))")


def test_modify_index_zero_is_out_of_range():
    with pytest.raises(ValidationError, match="condition element 0"):
        parse_program("(p m (goal ^want x) --> (modify 0 ^want y))")


def test_remove_index_beyond_lhs():
    with pytest.raises(ValidationError, match="only 1"):
        parse_program("(p m (goal ^want x) --> (remove 2))")


# -- malformed condition elements ---------------------------------------------


def test_empty_conjunctive_test():
    with pytest.raises(ParseError, match="empty conjunctive"):
        parse_program("(p m (goal ^want { }) --> (halt))")


def test_empty_disjunctive_test():
    with pytest.raises(ParseError, match="empty disjunctive"):
        parse_program("(p m (goal ^want << >>) --> (halt))")


def test_attribute_tested_twice_in_one_ce():
    with pytest.raises(ParseError, match="tested twice"):
        parse_program("(p m (goal ^want x ^want y) --> (halt))")


def test_all_negated_lhs_is_invalid():
    with pytest.raises(ValidationError, match="first condition element"):
        parse_program("(p m - (goal ^want x) --> (halt))")


# -- unknown actions and undeclared attributes --------------------------------


def test_unknown_action_name():
    with pytest.raises(ParseError, match="unknown action"):
        parse_program("(p m (goal ^want x) --> (frobnicate))")


def test_literalized_class_rejects_undeclared_attribute():
    system = ProductionSystem(
        "(literalize goal want)\n(p m (goal ^want x) --> (halt))"
    )
    with pytest.raises(ExecutionError, match="undeclared attribute"):
        system.add("goal", other=1)


def test_parse_error_carries_position():
    try:
        parse_program("(p m (goal ^want { }) --> (halt))")
    except ParseError as error:
        assert error.line == 1
        assert error.column > 0
    else:  # pragma: no cover - the parse must fail
        pytest.fail("expected a ParseError")
