"""Parser robustness: junk in, clean errors out.

The parser is a public entry point fed by user files; whatever it gets,
it must either parse or raise Ops5Error subtypes -- never an
AttributeError/IndexError/RecursionError leaking from the internals.
"""

from hypothesis import given, settings, strategies as st

from repro.ops5 import Ops5Error, parse_program, parse_wme_specs
from repro.ops5.parser import tokenize

#: Fragments biased toward OPS5-looking text, so the fuzz reaches deep
#: into the grammar rather than dying at the first character.
fragments = st.sampled_from([
    "(", ")", "{", "}", "<<", ">>", "-->", "p", "literalize", "make",
    "remove", "modify", "write", "bind", "halt", "compute",
    "^attr", "^color", "<x>", "<y>", "<>", "<=", ">=", "<=>", "=",
    "goal", "block", "red", "12", "-3", "4.5", "-", "+", "*", " ", "\n",
    "; comment\n",
])


@st.composite
def junk_sources(draw):
    return " ".join(draw(st.lists(fragments, min_size=0, max_size=40)))


@settings(max_examples=120, deadline=None)
@given(source=junk_sources())
def test_parse_program_fails_cleanly(source):
    try:
        parse_program(source)
    except Ops5Error:
        pass  # ParseError / ValidationError etc. are the contract


@settings(max_examples=80, deadline=None)
@given(source=junk_sources())
def test_parse_wme_specs_fails_cleanly(source):
    try:
        parse_wme_specs(source)
    except Ops5Error:
        pass


@settings(max_examples=80, deadline=None)
@given(text=st.text(max_size=200))
def test_tokenizer_total_over_arbitrary_text(text):
    """Any unicode text either tokenizes or raises ParseError."""
    try:
        tokenize(text)
    except Ops5Error:
        pass


@settings(max_examples=60, deadline=None)
@given(source=junk_sources())
def test_error_positions_are_sane(source):
    from repro.ops5 import ParseError

    try:
        parse_program(source)
    except ParseError as error:
        assert error.line >= 0
        assert error.column >= 0
    except Ops5Error:
        pass
