"""Working memory elements and the working memory."""

import pytest

from repro.ops5 import NIL, WME, WorkingMemory, WorkingMemoryError, make_wme
from repro.ops5.wme import is_number, same_type, values_equal


class TestValueHelpers:
    def test_numbers_are_numeric(self):
        assert is_number(3)
        assert is_number(-2.5)

    def test_symbols_are_not_numeric(self):
        assert not is_number("red")
        assert not is_number("3")

    def test_booleans_are_rejected(self):
        assert not is_number(True)
        assert not is_number(False)

    def test_same_type_numeric_vs_symbolic(self):
        assert same_type(1, 2.5)
        assert same_type("a", "b")
        assert not same_type(1, "a")

    def test_values_equal_numeric_coercion(self):
        assert values_equal(1, 1.0)
        assert not values_equal(1, "1")
        assert values_equal("red", "red")
        assert not values_equal("red", "blue")


class TestWME:
    def test_attributes_default_to_nil(self):
        wme = make_wme("block", color="red")
        assert wme.get("color") == "red"
        assert wme.get("weight") == NIL

    def test_explicit_nil_is_normalised_away(self):
        wme = WME("block", {"color": NIL})
        assert wme.get("color") == NIL
        assert "color" not in wme.attributes

    def test_identity_not_content_equality(self):
        a = make_wme("block", color="red")
        b = make_wme("block", color="red")
        assert a != b
        assert a.content_key() == b.content_key()

    def test_with_updates_preserves_unmentioned(self):
        wme = make_wme("block", color="red", size=3)
        updated = wme.with_updates({"color": "blue"})
        assert updated.get("color") == "blue"
        assert updated.get("size") == 3
        assert updated.timetag == 0

    def test_with_updates_nil_clears(self):
        wme = make_wme("block", color="red")
        updated = wme.with_updates({"color": NIL})
        assert updated.get("color") == NIL

    def test_empty_class_rejected(self):
        with pytest.raises(WorkingMemoryError):
            WME("", {})

    def test_repr_mentions_class_and_attrs(self):
        wme = make_wme("block", color="red")
        assert "block" in repr(wme)
        assert "^color red" in repr(wme)


class TestWorkingMemory:
    def test_add_assigns_increasing_timetags(self):
        memory = WorkingMemory()
        a = memory.add(make_wme("x"))
        b = memory.add(make_wme("y"))
        assert (a.timetag, b.timetag) == (1, 2)
        assert memory.next_timetag == 3

    def test_double_add_rejected(self):
        memory = WorkingMemory()
        wme = memory.add(make_wme("x"))
        with pytest.raises(WorkingMemoryError):
            memory.add(wme)

    def test_remove_and_membership(self):
        memory = WorkingMemory()
        wme = memory.add(make_wme("x"))
        assert wme in memory
        memory.remove(wme)
        assert wme not in memory
        assert len(memory) == 0

    def test_remove_absent_raises(self):
        memory = WorkingMemory()
        with pytest.raises(WorkingMemoryError):
            memory.remove(make_wme("x"))

    def test_timetags_never_reused(self):
        memory = WorkingMemory()
        wme = memory.add(make_wme("x"))
        memory.remove(wme)
        other = memory.add(make_wme("y"))
        assert other.timetag == 2

    def test_by_timetag(self):
        memory = WorkingMemory()
        wme = memory.add(make_wme("x"))
        assert memory.by_timetag(wme.timetag) is wme
        with pytest.raises(WorkingMemoryError):
            memory.by_timetag(99)

    def test_of_class_and_snapshot_order(self):
        memory = WorkingMemory()
        a = memory.add(make_wme("x"))
        b = memory.add(make_wme("y"))
        c = memory.add(make_wme("x"))
        assert memory.of_class("x") == [a, c]
        assert memory.snapshot() == [a, b, c]
