"""Literalize declarations: attribute checking on working memory."""

import pytest

from repro.ops5 import ExecutionError, ProductionSystem

SRC = """
(literalize goal type color)
(p go (goal ^type find) --> (halt))
"""


class TestElementChecking:
    def test_declared_attributes_accepted(self):
        ps = ProductionSystem(SRC)
        ps.add("goal", type="find", color="red")
        assert len(ps.memory) == 1

    def test_undeclared_attribute_rejected(self):
        ps = ProductionSystem(SRC)
        with pytest.raises(ExecutionError) as info:
            ps.add("goal", type="find", colour="red")
        assert "colour" in str(info.value)

    def test_undeclared_classes_are_free_form(self):
        ps = ProductionSystem(SRC)
        ps.add("anything", whatever=1)
        assert len(ps.memory) == 1

    def test_rhs_make_checked_too(self):
        ps = ProductionSystem("""
          (literalize goal type)
          (p bad (trigger) --> (make goal ^typo x))
        """)
        ps.add("trigger")
        with pytest.raises(ExecutionError):
            ps.run(1)

    def test_rejected_wme_not_in_memory(self):
        ps = ProductionSystem(SRC)
        with pytest.raises(ExecutionError):
            ps.add("goal", nope=1)
        assert len(ps.memory) == 0
        assert ps.memory.next_timetag == 1  # no timetag burned

    def test_programs_without_literalize_unchecked(self):
        ps = ProductionSystem("(p go (a) --> (halt))")
        ps.add("a", anything="goes")
        assert ps.run(1).fired == 1
