"""Unparser round-trips: parse(unparse(x)) == x, property-tested."""

from hypothesis import given, settings, strategies as st

from repro.ops5 import (
    parse_production,
    parse_program,
    unparse_condition,
    unparse_production,
    unparse_program,
    unparse_test,
)
from repro.ops5.condition import (
    ConditionElement,
    ConjunctiveTest,
    ConstantTest,
    DisjunctiveTest,
    Predicate,
    PredicateTest,
    VariableTest,
)
from repro.ops5.actions import (
    Compute,
    Constant,
    Halt,
    Make,
    VariableRef,
    Write,
)
from repro.ops5.production import Production

symbols = st.sampled_from(["red", "blue", "find-blk", "a-b", "x1"])
numbers = st.one_of(
    st.integers(min_value=-99, max_value=99),
    st.sampled_from([1.5, 4.25, -2.5]),
)
values = st.one_of(symbols, numbers)
variable_names = st.sampled_from(["x", "y", "zed", "long-name"])
attributes = st.sampled_from(["color", "size", "v", "w"])

constant_tests = st.builds(ConstantTest, values)
variable_tests = st.builds(VariableTest, variable_names)
predicate_tests = st.builds(
    PredicateTest,
    st.sampled_from([Predicate.NE, Predicate.LT, Predicate.GE, Predicate.SAME_TYPE]),
    st.one_of(constant_tests, variable_tests),
)
simple_tests = st.one_of(constant_tests, variable_tests, predicate_tests)
tests = st.one_of(
    simple_tests,
    st.builds(ConjunctiveTest, st.tuples(variable_tests, predicate_tests)),
    st.builds(DisjunctiveTest, st.lists(values, min_size=1, max_size=3).map(tuple)),
)


@st.composite
def condition_elements(draw):
    cls = draw(symbols)
    ce_tests = {
        attribute: draw(tests)
        for attribute in draw(st.lists(attributes, unique=True, max_size=3))
    }
    return ConditionElement(cls, ce_tests, negated=draw(st.booleans()))


# RHS expressions may only reference <x>: the anchor CE binds exactly
# that variable, keeping generated productions valid.
expressions = st.one_of(
    st.builds(Constant, values),
    st.builds(VariableRef, st.just("x")),
    st.builds(
        Compute,
        st.tuples(st.builds(Constant, numbers), st.builds(Constant, numbers)),
        st.tuples(st.sampled_from(["+", "-", "*"])),
    ),
)

actions = st.one_of(
    st.builds(
        Make, symbols,
        st.lists(st.tuples(attributes, expressions), max_size=2, unique_by=lambda t: t[0]).map(tuple),
    ),
    st.builds(Write, st.lists(expressions, min_size=1, max_size=3).map(tuple)),
    st.just(Halt()),
)


class TestRoundTripUnits:
    @settings(max_examples=150, deadline=None)
    @given(test=tests)
    def test_tests_roundtrip(self, test):
        source = f"(p x (c ^v {unparse_test(test)}) --> (halt))"
        try:
            production = parse_production(source)
        except Exception:
            # Predicate tests on unbound variables are structurally
            # renderable but semantically invalid; skip those.
            production = None
        if production is not None:
            assert production.conditions[0].tests["v"] == test

    @settings(max_examples=100, deadline=None)
    @given(ce=condition_elements())
    def test_condition_elements_roundtrip(self, ce):
        # Wrap in a production with a positive first CE so negation is legal.
        source = f"(p x (anchor) {unparse_condition(ce)} --> (halt))"
        try:
            production = parse_production(source)
        except Exception:
            return  # unbound-predicate CEs are rejected by validation
        assert production.conditions[1] == ce


class TestRoundTripProductions:
    @settings(max_examples=100, deadline=None)
    @given(
        name=st.sampled_from(["p0", "rule-a", "z9"]),
        action_list=st.lists(actions, min_size=1, max_size=3),
    )
    def test_simple_productions_roundtrip(self, name, action_list):
        production = Production(
            name, (ConditionElement("anchor", {"v": VariableTest("x")}),),
            tuple(action_list),
        )
        text = unparse_production(production)
        parsed = parse_production(text)
        assert parsed.name == production.name
        assert parsed.conditions == production.conditions
        assert parsed.actions == production.actions

    def test_full_featured_production(self):
        production = parse_production("""
          (p full
            (goal ^type << build check >> ^n { <n> > 0 })
            (part ^size <= <n> ^state <> broken)
            - (veto ^n <n>)
            -->
            (bind <m> (compute <n> + 1))
            (make part ^size <m>)
            (modify 2 ^state used)
            (write made <m>)
            (remove 1)
            (halt))
        """)
        reparsed = parse_production(unparse_production(production))
        assert reparsed.conditions == production.conditions
        assert reparsed.actions == production.actions

    def test_program_with_literalize(self):
        program = parse_program("""
          (literalize goal type n)
          (p one (goal ^type a) --> (halt))
          (p two (goal ^n 1) --> (halt))
        """)
        reparsed = parse_program(unparse_program(program))
        assert reparsed.literalizations == program.literalizations
        assert [p.name for p in reparsed.productions] == ["one", "two"]
        assert reparsed.productions[0].conditions == program.productions[0].conditions


class TestUnparseValue:
    """Lexability hardening: every rendered constant reads back as itself."""

    @settings(max_examples=150, deadline=None)
    @given(
        value=st.one_of(
            st.integers(min_value=-(10**12), max_value=10**12),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.sampled_from(["red", "a-b", "x1", "p*q", "a.b"]),
        )
    )
    def test_rendered_constants_relex(self, value):
        from repro.ops5.unparse import unparse_value

        text = unparse_value(value)
        production = parse_production(f"(p x (c ^v {text}) --> (halt))")
        parsed = production.conditions[0].tests["v"].value
        assert parsed == value
        assert type(parsed) is type(value)

    def test_exponent_floats_render_fixed_point(self):
        from repro.ops5.unparse import unparse_value

        assert unparse_value(1e-05) == "0.00001"
        assert float(unparse_value(5e20)) == 5e20

    def test_unlexable_values_rejected(self):
        import pytest

        from repro.ops5.unparse import unparse_value

        for bad in (float("inf"), float("nan"), "has space", "12", "-3.5", "(x"):
            with pytest.raises(ValueError):
                unparse_value(bad)


class TestGeneratedPrograms:
    """Generator-driven round trips: parse(unparse(p)) == p for fuzz cases."""

    def test_seeded_cases_roundtrip(self):
        from repro.workloads.generator import (
            DEFAULT_PROFILE,
            case_from_seed,
            roundtrip_problems,
        )

        for seed in range(60):
            case = case_from_seed(DEFAULT_PROFILE, seed)
            assert roundtrip_problems(case) == [], seed

    def test_system_profiles_roundtrip(self):
        from repro.workloads.generator import (
            GENERATOR_PROFILES,
            case_from_seed,
            roundtrip_problems,
        )

        for name, profile in GENERATOR_PROFILES.items():
            for seed in range(10):
                case = case_from_seed(profile, seed)
                assert roundtrip_problems(case) == [], (name, seed)


class TestRealPrograms:
    def test_bundled_programs_roundtrip(self):
        from repro.workloads.programs import ALL_PROGRAMS

        for name, module in ALL_PROGRAMS.items():
            program = parse_program(module.PROGRAM)
            reparsed = parse_program(unparse_program(program))
            assert len(reparsed.productions) == len(program.productions)
            for original, again in zip(program.productions, reparsed.productions):
                assert original.conditions == again.conditions, name
                assert original.actions == again.actions, name
