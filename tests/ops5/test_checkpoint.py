"""Engine state export/restore: the session-migration payload.

Contract: exporting mid-run and restoring onto a fresh engine with the
same program must continue the firing sequence bit-identically -- WMEs
keep their original timetags (recency ordering), refraction memory
survives (nothing re-fires), and the blob is JSON-round-trippable and
matcher-independent.
"""

import json

import pytest

from repro.ops5 import parse_program
from repro.ops5.engine import ProductionSystem
from repro.ops5.errors import ExecutionError, WorkingMemoryError
from repro.ops5.wme import WME, WorkingMemory

CHAIN = """
  (p advance (step ^at <n>) (link ^src <n> ^dst <m>)
     --> (modify 1 ^at <m>) (write step <m>))
  (p finish (step ^at done) --> (write finished) (halt))
"""


def _build(matcher="rete"):
    system = ProductionSystem(parse_program(CHAIN), matcher=matcher)
    system.add("step", at=0)
    for i in range(6):
        system.add("link", src=i, dst=i + 1 if i < 5 else "done")
    return system


def _trace(system):
    return [(c.production, c.timetags) for c in system.cycles]


class TestAdopt:
    def test_adopt_preserves_timetag_and_advances_counter(self):
        memory = WorkingMemory()
        wme = WME("goal", {"want": "red"})
        wme.timetag = 7
        memory.adopt(wme)
        assert memory.by_timetag(7) is wme
        assert memory.next_timetag == 8
        assert memory.add(WME("goal", {})).timetag == 8

    def test_adopt_rejects_untagged_and_duplicate_tags(self):
        memory = WorkingMemory()
        with pytest.raises(WorkingMemoryError):
            memory.adopt(WME("goal", {}))
        first = WME("goal", {})
        first.timetag = 3
        memory.adopt(first)
        clash = WME("goal", {})
        clash.timetag = 3
        with pytest.raises(WorkingMemoryError):
            memory.adopt(clash)

    def test_reserve_timetags_never_rewinds(self):
        memory = WorkingMemory()
        memory.reserve_timetags(10)
        assert memory.next_timetag == 10
        memory.reserve_timetags(4)
        assert memory.next_timetag == 10


class TestExportRestore:
    @pytest.mark.parametrize("matcher", ["rete", "compiled"])
    def test_midrun_restore_continues_bit_identically(self, matcher):
        reference = _build(matcher)
        reference.run()
        assert reference.output[-1] == "finished"

        source = _build(matcher)
        source.run(max_cycles=3)
        prefix = _trace(source)
        state = json.loads(json.dumps(source.export_state()))

        target = ProductionSystem(parse_program(CHAIN), matcher=matcher)
        target.restore_state(state)
        source.run()
        target.run()

        # Cycle *records* are summaries and are not exported; the firing
        # sequence from the checkpoint onward must match exactly.
        assert _trace(target) == _trace(source)[len(prefix):]
        assert prefix + _trace(target) == _trace(reference)
        assert target.output == source.output == reference.output
        assert [w.timetag for w in target.memory.snapshot()] == [
            w.timetag for w in source.memory.snapshot()
        ]

    def test_restore_across_matcher_backends(self):
        source = _build("rete")
        source.run(max_cycles=2)
        prefix = len(_trace(source))
        state = source.export_state()
        target = ProductionSystem(parse_program(CHAIN), matcher="compiled")
        target.restore_state(state)
        source.run()
        target.run()
        assert _trace(target) == _trace(source)[prefix:]
        assert target.output == source.output

    def test_refraction_survives_restore(self):
        # A production that fires once and leaves its WMEs in place:
        # without restored refraction keys it would fire again.
        source = ProductionSystem("(p once (spark) --> (write lit))")
        source.add("spark")
        source.run()
        assert source.output == ["lit"]
        target = ProductionSystem("(p once (spark) --> (write lit))")
        target.restore_state(source.export_state())
        target.resume()
        result = target.run()
        assert result.fired == 0
        assert target.output == ["lit"]

    def test_restored_counters_and_halt_state(self):
        source = _build()
        source.run()
        state = source.export_state()
        target = ProductionSystem(parse_program(CHAIN))
        target.restore_state(state)
        assert target.halted and target.cycle == source.cycle
        assert target.total_firings == source.total_firings
        # Change counters restart at the replay: engine and matcher must
        # agree on the stream they both saw (obs consistency invariant).
        assert target.total_wme_changes == len(state["wmes"])
        assert target.matcher.peek_stats().total_changes == len(state["wmes"])
        assert target.memory.next_timetag == source.memory.next_timetag

    def test_restore_refuses_nonempty_memory_and_bad_schema(self):
        source = _build()
        state = source.export_state()
        occupied = _build()
        with pytest.raises(ExecutionError):
            occupied.restore_state(state)
        fresh = ProductionSystem(parse_program(CHAIN))
        with pytest.raises(ExecutionError):
            fresh.restore_state({"schema": "bogus/9"})
