"""Property tests tying CE matching to its compiler-oriented analysis."""

from hypothesis import given, settings, strategies as st

from repro.ops5 import analyze_lhs, wme_passes_alpha
from repro.ops5.condition import (
    ConditionElement,
    ConjunctiveTest,
    ConstantTest,
    DisjunctiveTest,
    Predicate,
    PredicateTest,
    VariableTest,
)
from repro.ops5.wme import WME

values = st.one_of(
    st.sampled_from(["red", "blue", "nil"]),
    st.integers(min_value=-3, max_value=3),
)
attributes = st.sampled_from(["a", "b", "c"])

alpha_only_tests = st.one_of(
    st.builds(ConstantTest, values),
    st.builds(
        PredicateTest,
        st.sampled_from([Predicate.NE, Predicate.LT, Predicate.GE]),
        st.builds(ConstantTest, values),
    ),
    st.builds(DisjunctiveTest, st.lists(values, min_size=1, max_size=3).map(tuple)),
    st.builds(VariableTest, st.sampled_from(["x", "y"])),
)


@st.composite
def condition_elements(draw):
    tests = {
        attribute: draw(alpha_only_tests)
        for attribute in draw(st.lists(attributes, unique=True, max_size=3))
    }
    return ConditionElement(draw(st.sampled_from(["c1", "c2"])), tests)


@st.composite
def wme_specs(draw):
    attrs = {
        attribute: draw(values)
        for attribute in draw(st.lists(attributes, unique=True, max_size=3))
    }
    return WME(draw(st.sampled_from(["c1", "c2"])), attrs)


@settings(max_examples=250, deadline=None)
@given(ce=condition_elements(), wme=wme_specs())
def test_match_implies_alpha_pass(ce, wme):
    """A full CE match must imply passing the alpha classification --
    the contract the Rete builder relies on (alpha memories never miss
    a WME a join would need)."""
    [analysis] = analyze_lhs([ce])
    if ce.match(wme, {}) is not None:
        assert wme_passes_alpha(wme, analysis)


@settings(max_examples=250, deadline=None)
@given(ce=condition_elements(), wme=wme_specs())
def test_alpha_pass_implies_match_for_variable_free_ces(ce, wme):
    """With no cross-CE state, alpha semantics should be *exactly* the
    CE's single-WME semantics (variables bind freely)."""
    [analysis] = analyze_lhs([ce])
    if not analysis.join_tests:
        assert (ce.match(wme, {}) is not None) == wme_passes_alpha(wme, analysis)


@settings(max_examples=150, deadline=None)
@given(ce=condition_elements())
def test_every_test_is_classified(ce):
    """analyze_lhs must not drop tests: every elementary test lands in
    alpha_tests, intra_tests, binders, or join_tests."""
    [analysis] = analyze_lhs([ce])
    elementary = 0
    for test in ce.tests.values():
        elementary += (
            len(test.tests) if isinstance(test, ConjunctiveTest) else 1
        )
    classified = (
        len(analysis.alpha_tests)
        + len(analysis.intra_tests)
        + len(analysis.binders)
        + len(analysis.join_tests)
    )
    # Repeated variables split one occurrence into a binder and the
    # rest into intra tests, so classified counts never undershoot.
    assert classified >= elementary - 0


@settings(max_examples=150, deadline=None)
@given(ce=condition_elements(), wme=wme_specs())
def test_match_is_deterministic_and_pure(ce, wme):
    bindings: dict = {}
    first = ce.match(wme, bindings)
    second = ce.match(wme, bindings)
    assert first == second
    assert bindings == {}  # never mutated
