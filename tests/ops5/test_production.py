"""Production validation and instantiation identity."""

import pytest

from repro.ops5 import (
    ConditionElement,
    Production,
    ValidationError,
    VariableTest,
    parse_production,
)
from repro.ops5.actions import Make, Remove, VariableRef
from repro.ops5.production import Instantiation
from repro.ops5.wme import make_wme


def _ce(cls="c", **tests):
    return ConditionElement(cls, {k: VariableTest(v) for k, v in tests.items()})


class TestValidation:
    def test_needs_a_name(self):
        with pytest.raises(ValidationError):
            Production("", (_ce(),), ())

    def test_negated_first_rejected(self):
        with pytest.raises(ValidationError):
            Production("p", (ConditionElement("c", {}, negated=True),), ())

    def test_rhs_variable_must_be_bound(self):
        action = Make("out", (("v", VariableRef("nope")),))
        with pytest.raises(ValidationError) as info:
            Production("p", (_ce(v="x"),), (action,))
        assert "nope" in str(info.value)

    def test_bind_introduces_rhs_variable(self):
        production = parse_production(
            "(p x (a ^v <v>) --> (bind <t> (compute <v> + 1)) (make b ^w <t>))"
        )
        assert production.name == "x"

    def test_bind_order_matters(self):
        with pytest.raises(ValidationError):
            parse_production(
                "(p x (a ^v <v>) --> (make b ^w <t>) (bind <t> 1))"
            )

    def test_negated_ce_variable_not_available_to_rhs(self):
        with pytest.raises(ValidationError):
            parse_production("(p x (a) - (b ^v <w>) --> (make c ^u <w>))")

    def test_action_reference_to_negated_ce(self):
        with pytest.raises(ValidationError):
            Production("p", (_ce(), ConditionElement("c", {}, negated=True)), (Remove(2),))


class TestPositions:
    def test_positive_indices_skip_negated(self):
        production = parse_production(
            "(p x (a) - (b) (c) --> (remove 3))"
        )
        assert production.positive_indices == (0, 2)
        assert production.ce_position_of(3) == 1

    def test_specificity_sums_ces(self):
        production = parse_production("(p x (a ^q 1 ^r <v>) (b) --> (halt))")
        assert production.specificity == 3 + 1

    def test_equality_and_hash_by_name(self):
        a = parse_production("(p same (a) --> (halt))")
        b = parse_production("(p same (b ^x 1) --> (halt))")
        assert a == b
        assert hash(a) == hash(b)


class TestInstantiation:
    def _wme(self, tag):
        wme = make_wme("c")
        wme.timetag = tag
        return wme

    def test_identity_by_production_and_timetags(self):
        production = parse_production("(p x (c) (c) --> (halt))")
        a = Instantiation(production, (self._wme(1), self._wme(2)), {"v": 1})
        b = Instantiation(production, (self._wme(1), self._wme(2)), {"v": 99})
        assert a == b
        assert hash(a) == hash(b)
        assert a.key == ("x", (1, 2))

    def test_recency_key_sorted_descending(self):
        production = parse_production("(p x (c) (c) --> (halt))")
        inst = Instantiation(production, (self._wme(2), self._wme(7)))
        assert inst.recency_key == (7, 2)

    def test_distinct_timetags_differ(self):
        production = parse_production("(p x (c) --> (halt))")
        assert Instantiation(production, (self._wme(1),)) != Instantiation(
            production, (self._wme(2),)
        )
