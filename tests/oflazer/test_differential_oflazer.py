"""Differential testing: the all-combinations matcher vs the naive oracle.

Reuses the random-program strategies of the Rete differential suite.
"""

from hypothesis import given, settings

from repro.naive import NaiveMatcher
from repro.oflazer import CombinationMatcher

from tests.rete.test_differential import _drive, change_scripts, programs


@settings(max_examples=100, deadline=None)
@given(program=programs(), script=change_scripts())
def test_combination_matcher_matches_naive(program, script):
    naive = _drive(NaiveMatcher(), program, script)
    combination = _drive(CombinationMatcher(), program, script)
    assert combination == naive
