"""The all-combinations (Oflazer) matcher."""


from repro.oflazer import CombinationMatcher
from repro.ops5 import parse_production, parse_program
from repro.ops5.wme import WME, WorkingMemory


class _Session:
    def __init__(self, source: str):
        self.matcher = CombinationMatcher()
        for production in parse_program(source).productions:
            self.matcher.add_production(production)
        self.memory = WorkingMemory()

    def add(self, cls, **attrs):
        wme = self.memory.add(WME(cls, attrs))
        self.matcher.add_wme(wme)
        return wme

    def remove(self, wme):
        self.memory.remove(wme)
        self.matcher.remove_wme(wme)

    @property
    def keys(self):
        return self.matcher.conflict_set.snapshot()


class TestBasics:
    def test_join(self):
        s = _Session("(p find (goal ^want <c>) (block ^color <c>) --> (halt))")
        goal = s.add("goal", want="red")
        block = s.add("block", color="red")
        assert s.keys == {("find", (goal.timetag, block.timetag))}
        s.remove(block)
        assert s.keys == set()

    def test_stores_all_combinations(self):
        s = _Session("(p three (a ^v <x>) (b) (c ^v <x>) --> (halt))")
        s.add("a", v=1)
        s.add("b")
        s.add("c", v=1)
        state = s.matcher._states["three"]
        # Subsets present: {0},{1},{2},{0,1},{0,2},{1,2},{0,1,2}.
        populated = {frozenset(k) for k, v in state.store.items() if v}
        assert populated == {
            frozenset(s) for s in [{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}]
        }

    def test_rete_skips_combinations_this_stores(self):
        """The {0,2} pair (a,c skipping b) is exactly what Rete never
        stores -- the schemes' defining difference."""
        s = _Session("(p three (a ^v <x>) (b) (c ^v <x>) --> (halt))")
        s.add("a", v=1)
        s.add("c", v=1)
        state = s.matcher._states["three"]
        assert len(state.store.get(frozenset({0, 2}), {})) == 1
        assert s.keys == set()  # no b yet

    def test_predicate_deferred_until_binder_present(self):
        s = _Session("(p ord (a ^v <x>) (b ^w > <x>) --> (halt))")
        b = s.add("b", w=5)  # predicate operand <x> unbound: stored leniently
        state = s.matcher._states["ord"]
        assert len(state.store[frozenset({1})]) == 1
        s.add("a", v=3)
        assert len(s.keys) == 1  # 5 > 3 holds
        s.add("a", v=9)
        assert len(s.keys) == 1  # 5 > 9 fails: combination rejected

    def test_same_wme_at_two_positions(self):
        s = _Session("(p twin (n ^v <x>) (n ^w <y>) --> (halt))")
        w = s.add("n", v=1, w=2)
        assert s.keys == {("twin", (w.timetag, w.timetag))}

    def test_deletion_drops_all_containing_partials(self):
        s = _Session("(p pair (a ^v <x>) (b ^v <x>) --> (halt))")
        a = s.add("a", v=1)
        s.add("b", v=1)
        s.remove(a)
        state = s.matcher._states["pair"]
        assert all(
            not partial.contains_wme(a.timetag)
            for partials in state.store.values()
            for partial in partials.values()
        )
        assert s.keys == set()


class TestNegation:
    SRC = "(p quiet (goal ^want <c>) - (block ^color <c>) --> (halt))"

    def test_block_and_unblock(self):
        s = _Session(self.SRC)
        s.add("goal", want="red")
        assert len(s.keys) == 1
        blocker = s.add("block", color="red")
        assert s.keys == set()
        s.remove(blocker)
        assert len(s.keys) == 1

    def test_blocked_fulls_stay_stored(self):
        s = _Session(self.SRC)
        s.add("goal", want="red")
        s.add("block", color="red")
        state = s.matcher._states["quiet"]
        assert len(state.store[frozenset({0})]) == 1  # stored though blocked

    def test_scoped_negation_names(self):
        s = _Session("(p scoped (goal) - (taken ^v <w>) (free ^v <w>) --> (halt))")
        s.add("goal")
        s.add("free", v=7)
        assert len(s.keys) == 1
        s.add("taken", v=99)
        assert s.keys == set()


class TestProductionManagement:
    def test_late_addition_matches_memory(self):
        matcher = CombinationMatcher()
        memory = WorkingMemory()
        for cls, attrs in [("a", {"v": 1}), ("b", {"v": 1})]:
            wme = memory.add(WME(cls, attrs))
            matcher.add_wme(wme)
        matcher.add_production(
            parse_production("(p late (a ^v <x>) (b ^v <x>) --> (halt))")
        )
        assert len(matcher.conflict_set) == 1

    def test_removal_retracts(self):
        s = _Session("(p gone (a) --> (halt))")
        s.add("a")
        s.matcher.remove_production("gone")
        assert s.keys == set()
        assert list(s.matcher.productions) == []


class TestStateVolume:
    def test_exceeds_rete_on_wide_lhs(self):
        """The Section 3.2 blow-up, measured on live matchers."""
        from repro.rete import ReteNetwork

        source = "(p wide (a) (b) (c) --> (halt))"
        combo, rete = _Session(source), None
        net = ReteNetwork()
        net.add_production(parse_production(source))
        memory = WorkingMemory()
        for cls in ("a", "b", "c"):
            for _ in range(3):
                wme = memory.add(WME(cls, {}))
                combo.matcher.add_wme(wme)
                net.add_wme(wme)
        combo_state = combo.matcher.state_size()
        rete_state = net.state_size()
        combo_total = combo_state["alpha_wmes"] + combo_state["beta_tokens"]
        rete_total = rete_state["alpha_wmes"] + rete_state["beta_tokens"]
        # Rete: 9 alpha + (3 + 9 + 27) beta = 48; combinations add the
        # {a,c} and {b,c} cross products Rete skips.
        assert combo_total > rete_total

    def test_stats_track_effort(self):
        s = _Session("(p pair (a ^v <x>) (b ^v <x>) --> (halt))")
        s.add("a", v=1)
        assert s.matcher.stats.changes[-1].affected_productions == 1
        assert s.matcher.stats.total_tokens_built >= 1


class TestExponentialGrowth:
    def test_state_grows_with_lhs_width(self):
        """The paper's concern (1): the all-combinations state explodes
        with LHS width, where Rete's prefix state grows linearly in the
        number of memories."""
        from repro.rete import ReteNetwork
        from repro.ops5 import parse_production
        from repro.ops5.wme import WME, WorkingMemory

        def state_total(width, per_class=3):
            classes = " ".join(f"(c{i})" for i in range(width))
            source = f"(p wide {classes} --> (halt))"
            combo = CombinationMatcher()
            combo.add_production(parse_production(source))
            memory = WorkingMemory()
            for i in range(width):
                for _ in range(per_class):
                    wme = memory.add(WME(f"c{i}", {}))
                    combo.add_wme(wme)
            sizes = combo.state_size()
            return sizes["alpha_wmes"] + sizes["beta_tokens"]

        # (1+3)^w - 1 - ... : each CE contributes (3 choose assignments
        # + absent) options; totals for widths 2, 3, 4 with 3 WMEs each:
        assert state_total(2) == 3 + 3 + 9          # singles + pairs
        assert state_total(3) == 9 + 27 + 27        # +triples
        assert state_total(4) == 12 + 54 + 108 + 81

    def test_mid_run_production_removal_keeps_lockstep(self):
        from repro.naive import NaiveMatcher
        from repro.ops5 import parse_production
        from repro.ops5.wme import WME, WorkingMemory

        combo, naive = CombinationMatcher(), NaiveMatcher()
        for matcher in (combo, naive):
            matcher.add_production(parse_production("(p a (x ^v <k>) (y ^v <k>) --> (halt))"))
            matcher.add_production(parse_production("(p b (x) --> (halt))"))
        memory = WorkingMemory()
        for cls, attrs in [("x", {"v": 1}), ("y", {"v": 1}), ("x", {"v": 2})]:
            wme = memory.add(WME(cls, attrs))
            combo.add_wme(wme)
            naive.add_wme(wme)
        combo.remove_production("a")
        naive.remove_production("a")
        assert combo.conflict_set.snapshot() == naive.conflict_set.snapshot()
        wme = memory.add(WME("y", {"v": 2}))
        combo.add_wme(wme)
        naive.add_wme(wme)
        assert combo.conflict_set.snapshot() == naive.conflict_set.snapshot()
