"""TREAT's condition-ordering heuristics."""

from repro.ops5 import parse_production
from repro.treat.seed import hard_dependencies, order_positions


def _analyses(source):
    return parse_production(source).analysis


class TestHardDependencies:
    def test_equality_joins_create_no_dependency(self):
        analyses = _analyses("(p x (a ^v <x>) (b ^v <x>) --> (halt))")
        assert hard_dependencies(analyses) == {0: set(), 1: set()}

    def test_predicate_joins_depend_on_binder(self):
        analyses = _analyses("(p x (a ^v <x>) (b ^v > <x>) --> (halt))")
        assert hard_dependencies(analyses) == {0: set(), 1: {0}}

    def test_negated_ces_excluded(self):
        analyses = _analyses("(p x (a ^v <x>) - (b ^v > <x>) --> (halt))")
        assert hard_dependencies(analyses) == {0: set()}

    def test_intra_ce_predicate_is_self_satisfied(self):
        analyses = _analyses("(p x (a ^u <x> ^v > <x>) --> (halt))")
        assert hard_dependencies(analyses) == {0: set()}


class TestOrderPositions:
    def test_prefers_small_candidate_sets(self):
        analyses = _analyses("(p x (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))")
        sizes = {0: 10, 1: 1, 2: 5}
        order = order_positions(analyses, sizes.__getitem__)
        assert order == [1, 2, 0]

    def test_dependencies_override_size(self):
        analyses = _analyses("(p x (a ^v <x>) (b ^v > <x>) --> (halt))")
        sizes = {0: 100, 1: 1}
        order = order_positions(analyses, sizes.__getitem__)
        assert order == [0, 1]  # 1 must wait for its binder despite size

    def test_ties_break_by_index(self):
        analyses = _analyses("(p x (a) (b) --> (halt))")
        order = order_positions(analyses, lambda i: 3)
        assert order == [0, 1]

    def test_all_positions_present_exactly_once(self):
        analyses = _analyses(
            "(p x (a ^v <x>) - (n) (b ^v > <x>) (c ^w <y>) --> (halt))"
        )
        order = order_positions(analyses, lambda i: i)
        assert sorted(order) == [0, 2, 3]  # positives only
