"""TREAT matcher semantics and state accounting."""

from repro.ops5 import parse_production, parse_program
from repro.ops5.wme import WME, WorkingMemory
from repro.treat import TreatMatcher


def _matcher(source: str) -> TreatMatcher:
    matcher = TreatMatcher()
    for production in parse_program(source).productions:
        matcher.add_production(production)
    return matcher


class _Session:
    def __init__(self, source: str):
        self.matcher = _matcher(source)
        self.memory = WorkingMemory()

    def add(self, cls, **attrs):
        wme = self.memory.add(WME(cls, attrs))
        self.matcher.add_wme(wme)
        return wme

    def remove(self, wme):
        self.memory.remove(wme)
        self.matcher.remove_wme(wme)

    @property
    def keys(self):
        return self.matcher.conflict_set.snapshot()


class TestBasics:
    def test_join_and_retract(self):
        s = _Session("(p find (goal ^want <c>) (block ^color <c>) --> (halt))")
        goal = s.add("goal", want="red")
        block = s.add("block", color="red")
        assert s.keys == {("find", (goal.timetag, block.timetag))}
        s.remove(block)
        assert s.keys == set()

    def test_deletion_is_cheap_scan(self):
        s = _Session("(p find (a) (b) --> (halt))")
        a = s.add("a")
        b = s.add("b")
        before = s.matcher.stats.total_comparisons
        s.remove(a)
        # Removal only scans the conflict set + negation bookkeeping; no
        # join recomputation happens for a production with no negations.
        assert s.matcher.stats.total_comparisons == before
        assert s.keys == set()

    def test_duplicate_suppression_same_wme_two_positions(self):
        # One WME matching both CEs: the pair (w, w) must appear once.
        s = _Session("(p twin (n ^v <x>) (n ^w <y>) --> (halt))")
        w = s.add("n", v=1, w=2)
        assert s.keys == {("twin", (w.timetag, w.timetag))}

    def test_bindings_captured(self):
        s = _Session("(p find (goal ^want <c>) (block ^color <c>) --> (halt))")
        s.add("goal", want="red")
        s.add("block", color="red")
        [inst] = s.matcher.conflict_set.members()
        assert inst.bindings["c"] == "red"


class TestNegation:
    SRC = "(p quiet (goal ^want <c>) - (block ^color <c>) --> (halt))"

    def test_block_on_add(self):
        s = _Session(self.SRC)
        s.add("goal", want="red")
        assert len(s.keys) == 1
        s.add("block", color="red")
        assert s.keys == set()

    def test_unblock_on_remove(self):
        s = _Session(self.SRC)
        s.add("goal", want="red")
        blocker = s.add("block", color="red")
        other = s.add("block", color="red")
        s.remove(blocker)
        assert s.keys == set()  # second blocker remains
        s.remove(other)
        assert len(s.keys) == 1

    def test_negation_scoping_of_reused_names(self):
        s = _Session("(p scoped (goal) - (taken ^v <w>) (free ^v <w>) --> (halt))")
        s.add("goal")
        s.add("free", v=7)
        assert len(s.keys) == 1
        s.add("taken", v=99)
        assert s.keys == set()


class TestProductionManagement:
    def test_add_production_against_live_memory(self):
        matcher = TreatMatcher()
        memory = WorkingMemory()
        wme = memory.add(WME("a", {}))
        matcher.add_wme(wme)
        matcher.add_production(parse_production("(p late (a) --> (halt))"))
        assert matcher.conflict_set.snapshot() == {("late", (wme.timetag,))}

    def test_remove_production_retracts_and_frees_memories(self):
        matcher = _matcher("(p only (weird ^v 9) --> (halt))")
        assert matcher._amem  # has alpha memories
        matcher.remove_production("only")
        assert matcher._amem == {}
        assert len(matcher.conflict_set) == 0

    def test_shared_alpha_memory_survives(self):
        matcher = _matcher("""
          (p one (a ^v 1) --> (halt))
          (p two (a ^v 1) --> (halt))
        """)
        assert len(matcher._amem) == 1
        matcher.remove_production("one")
        assert len(matcher._amem) == 1


class TestStateAccounting:
    def test_alpha_only_state(self):
        s = _Session("(p find (a ^v <x>) (b ^v <x>) --> (halt))")
        s.add("a", v=1)
        s.add("b", v=1)
        sizes = s.matcher.state_size()
        assert sizes["beta_tokens"] == 0
        assert sizes["alpha_wmes"] == 2

    def test_affected_production_stats(self):
        s = _Session("""
          (p one (a ^v 1) --> (halt))
          (p two (a ^v <x>) --> (halt))
        """)
        s.add("a", v=1)
        assert s.matcher.stats.changes[-1].affected_productions == 2
        s.add("a", v=2)
        assert s.matcher.stats.changes[-1].affected_productions == 1
