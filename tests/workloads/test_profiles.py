"""Calibration math: profile stats vs the paper's Section 6 numbers.

Three layers are checked against the published anchors:

1. the six :class:`SystemProfile` knob sets themselves (fleet means and
   per-system orderings match what the paper states or implies);
2. the fuzzing profiles :func:`profile_for_system` derives from them
   (relative structure preserved);
3. the emitted system-class programs, whose *measured*
   affected-productions-per-task-change must track each profile's
   ``affected_mean``.
"""

import pytest

from repro.workloads.generator import GENERATOR_PROFILES, profile_for_system
from repro.workloads.profiles import (
    ILOG,
    PAPER_AFFECTED_PER_CHANGE,
    PAPER_FIRINGS_PER_SECOND,
    PAPER_SERIAL_COST_C1,
    PAPER_SYSTEMS,
    PAPER_WME_CHANGES_PER_SECOND,
    R1_SOAR,
    expected_trace_changes,
    fleet_mean,
    implied_changes_per_firing,
    profile_named,
)
from repro.workloads.programs import SYSTEM_PROGRAMS


class TestFleetAnchors:
    def test_changes_per_firing_matches_section6_rates(self):
        # 9400 wme-changes/sec over 3800 firings/sec implies ~2.47
        # changes per firing; the calibrated fleet mean sits within 5%.
        implied = implied_changes_per_firing()
        assert implied == pytest.approx(
            PAPER_WME_CHANGES_PER_SECOND / PAPER_FIRINGS_PER_SECOND
        )
        assert fleet_mean("changes_per_firing") == pytest.approx(implied, rel=0.05)

    def test_affected_mean_matches_section4_anchor(self):
        # ~30 affected productions per change overall, with large
        # per-system variation -- the fleet mean lands within 25% and
        # every system stays inside the published spread.
        assert fleet_mean("affected_mean") == pytest.approx(
            PAPER_AFFECTED_PER_CHANGE, rel=0.25
        )
        for profile in PAPER_SYSTEMS:
            assert 10.0 <= profile.affected_mean <= 40.0, profile.name

    def test_serial_cost_anchor_is_published_value(self):
        assert PAPER_SERIAL_COST_C1 == 1800

    def test_system_orderings_match_figure_6_1(self):
        # R1-Soar tops both activity measures; ILOG bottoms both --
        # consistent with R1-Soar's highest and ILOG's lowest plateau.
        by_affected = max(PAPER_SYSTEMS, key=lambda p: p.affected_mean)
        assert by_affected is R1_SOAR
        assert min(PAPER_SYSTEMS, key=lambda p: p.affected_mean) is ILOG
        assert max(PAPER_SYSTEMS, key=lambda p: p.changes_per_firing) is R1_SOAR
        assert min(PAPER_SYSTEMS, key=lambda p: p.changes_per_firing) is ILOG
        # Serial bias runs the other way: ILOG is the most serial
        # system, R1-Soar the least.
        assert max(PAPER_SYSTEMS, key=lambda p: p.heavy_serial_bias) is ILOG
        assert min(PAPER_SYSTEMS, key=lambda p: p.heavy_serial_bias) is R1_SOAR

    def test_heavy_task_knobs_span_published_bands(self):
        # The variance argument (Sections 4 and 8): a small fraction of
        # affected productions carries multi-activation work.
        for profile in PAPER_SYSTEMS:
            assert 0.05 <= profile.heavy_fraction <= 0.15, profile.name
            assert 3.0 <= profile.heavy_fanout <= 7.0, profile.name
            assert 2 <= profile.heavy_depth <= 3, profile.name

    def test_expected_trace_changes_closed_form(self):
        profile = profile_named("vt")
        assert expected_trace_changes(profile) == round(
            profile.firings * profile.changes_per_firing
        )
        assert expected_trace_changes(R1_SOAR) > expected_trace_changes(ILOG)


class TestDerivedGeneratorProfiles:
    def test_one_fuzzing_profile_per_system(self):
        assert {p.name for p in PAPER_SYSTEMS} <= set(GENERATOR_PROFILES)

    def test_scaling_preserves_relative_structure(self):
        r1 = profile_for_system(R1_SOAR)
        ilog = profile_for_system(ILOG)
        # More productions -> larger fuzzed rulesets.
        assert r1.max_rules > ilog.max_rules
        # Heavier fan-out -> more variable join reuse.
        assert r1.join_rate > ilog.join_rate
        # Deeper serial chains -> more CEs and more negation.
        assert ilog.max_ces >= r1.max_ces
        assert ilog.negation_rate > r1.negation_rate
        # More changes per firing -> longer streams and bigger RHS.
        assert r1.max_stream > ilog.max_stream
        assert r1.max_makes >= ilog.max_makes

    def test_derived_profiles_are_registered(self):
        for profile in PAPER_SYSTEMS:
            assert GENERATOR_PROFILES[profile.name] == profile_for_system(profile)


class TestEmittedProgramCalibration:
    @pytest.mark.parametrize("name", sorted(SYSTEM_PROGRAMS), ids=str)
    def test_measured_affected_tracks_profile(self, name):
        # Run the committed system-class program and measure what the
        # matcher actually saw: productions affected per task change
        # must track the profile's calibrated affected_mean.
        module = SYSTEM_PROGRAMS[name]
        system = module.build()
        result = system.run(module.EMITTED.max_cycles)
        assert result.halted and result.halt_reason == "halt action"
        task_counts = [
            change.affected_productions
            for change in system.matcher.stats.changes
            if change.wme_class == "task"
        ]
        assert task_counts, "no task changes recorded"
        measured = sum(task_counts) / len(task_counts)
        assert measured == pytest.approx(module.PROFILE.affected_mean, rel=0.15)

    @pytest.mark.parametrize("name", sorted(SYSTEM_PROGRAMS), ids=str)
    def test_rule_count_scales_with_structure(self, name):
        module = SYSTEM_PROGRAMS[name]
        emitted = module.EMITTED
        # stages * (branches + 1) stage rules, one done + one halt rule,
        # plus the distractors that tune the alpha-affected load.
        assert emitted.rule_count == (
            emitted.stages * (emitted.branches + 1) + 2 + emitted.distractors
        )
        assert module.expected_firings() == emitted.expected_firings()
