"""The property-based OPS5 program generator and its differential harness.

Tier-1 keeps the fixed-seed slices (determinism, validity, a small
differential smoke run over every serial backend plus the inline
parallel executor, and the injected-bug acceptance test).  The
open-ended hypothesis campaigns are marked ``fuzz`` and run in CI's
dedicated fuzz job.
"""

import json

import pytest
from hypothesis import given, settings

from repro.kernel import CompiledMatcher
from repro.naive import NaiveMatcher
from repro.oflazer import CombinationMatcher
from repro.ops5.production import Production
from repro.parallel import ParallelMatcher
from repro.rete import ReteNetwork
from repro.treat import TreatMatcher
from repro.workloads.generator import (
    DEFAULT_PROFILE,
    FUZZ_PROFILES,
    GENERATOR_PROFILES,
    MatcherFleet,
    case_from_seed,
    emit_system_program,
    fuzz,
    fuzz_cases,
    roundtrip_problems,
    run_case,
    shrink_case,
)
from repro.workloads.profiles import PAPER_SYSTEMS

SERIAL_BACKENDS = {
    "naive": NaiveMatcher,
    "treat": TreatMatcher,
    "rete": ReteNetwork,
    "rete-indexed": lambda: ReteNetwork(indexed=True),
    "oflazer": CombinationMatcher,
    "compiled": CompiledMatcher,
}


class BuggyMatcher(NaiveMatcher):
    """Deliberately broken: drops removals of class ``c1`` (a classic
    stale-token bug), so differential fuzzing must catch it."""

    def remove_wme(self, wme):
        if wme.cls == "c1":
            return
        super().remove_wme(wme)


class TestGeneration:
    def test_same_seed_same_case(self):
        a = case_from_seed(DEFAULT_PROFILE, 7)
        b = case_from_seed(DEFAULT_PROFILE, 7)
        assert a == b
        assert a.source() == b.source()

    def test_different_seeds_differ(self):
        cases = {case_from_seed(DEFAULT_PROFILE, seed).source() for seed in range(20)}
        assert len(cases) > 15

    def test_cases_respect_profile_bounds(self):
        profile = DEFAULT_PROFILE
        for seed in range(40):
            case = case_from_seed(profile, seed)
            assert case.profile == profile.name
            assert profile.min_rules <= len(case.productions) <= profile.max_rules
            assert profile.min_stream <= len(case.stream) <= profile.max_stream
            for production in case.productions:
                assert isinstance(production, Production)
                assert len(production.conditions) <= profile.max_ces

    def test_generated_attributes_are_declared(self):
        # Literalize declarations must cover every attribute the stream
        # touches, or the engine rejects insertions at runtime.
        for seed in range(30):
            case = case_from_seed(DEFAULT_PROFILE, seed)
            declared = case.literalizations
            for op in case.stream:
                if op[0] == "add":
                    _, _, cls, attrs = op
                    assert set(attrs) <= set(declared[cls]), seed

    def test_every_profile_generates(self):
        for name, profile in FUZZ_PROFILES.items():
            case = case_from_seed(profile, 1)
            assert case.productions, name
            assert roundtrip_problems(case) == [], name


class TestSmokeDifferential:
    """Tier-1 slice: fixed seeds, serial backends + inline parallel."""

    def test_fixed_seeds_agree(self):
        backends = dict(SERIAL_BACKENDS)
        with ParallelMatcher(workers=0) as inline:

            def pooled():
                inline.clear()
                return inline

            backends["parallel-inline"] = pooled
            for seed in range(12):
                outcome = run_case(case_from_seed(DEFAULT_PROFILE, seed), backends)
                assert outcome.ok, (seed, outcome.divergences())

    def test_system_profile_seeds_agree(self):
        for profile in (GENERATOR_PROFILES["r1-soar"], GENERATOR_PROFILES["ilog"]):
            for seed in range(4):
                outcome = run_case(case_from_seed(profile, seed), SERIAL_BACKENDS)
                assert outcome.ok, (profile.name, seed, outcome.divergences())


class TestInjectedBug:
    """Acceptance criterion: a deliberately broken matcher is caught and
    shrunk to a minimal (ruleset, stream) reproduction."""

    def test_fuzz_catches_and_shrinks(self):
        report = fuzz(
            seed=0,
            budget=30.0,
            iterations=10,
            backends={"naive": NaiveMatcher, "buggy": BuggyMatcher},
        )
        assert not report.ok
        counter = report.counterexamples[0]
        assert counter.kind == "mismatch"
        assert len(counter.shrunk.productions) <= 2
        assert len(counter.shrunk.stream) <= 3
        # The shrunk pair still reproduces the divergence.
        replay = run_case(
            counter.shrunk, {"naive": NaiveMatcher, "buggy": BuggyMatcher}
        )
        assert not replay.ok and replay.kind == "mismatch"
        # And the report is JSON-serializable (the CI artifact).
        snapshot = json.loads(json.dumps(report.snapshot()))
        assert snapshot["schema"] == "repro.fuzz/1"
        assert snapshot["mismatches"] == len(report.counterexamples)

    def test_shrinker_preserves_failure(self):
        backends = {"naive": NaiveMatcher, "buggy": BuggyMatcher}

        def failing(case):
            return not run_case(case, backends).ok

        case = case_from_seed(DEFAULT_PROFILE, 8)
        assert failing(case)
        shrunk, attempts = shrink_case(case, failing)
        assert failing(shrunk)
        assert len(shrunk.productions) <= len(case.productions)
        assert len(shrunk.stream) <= len(case.stream)


class TestEmittedSystems:
    def test_all_six_emit_deterministically(self):
        for profile in PAPER_SYSTEMS:
            a = emit_system_program(profile)
            b = emit_system_program(profile)
            assert a.source == b.source
            assert a.setup == b.setup

    def test_emitted_programs_agree_across_backends(self):
        # The smallest system-class program, full serial differential.
        emitted = emit_system_program(
            min(PAPER_SYSTEMS, key=lambda p: p.affected_mean), lanes=2
        )
        from repro.parallel import compare_backends

        report = compare_backends(
            emitted.source,
            emitted.setup,
            dict(SERIAL_BACKENDS),
            max_cycles=emitted.max_cycles,
        )
        assert report.agree, report.divergences()


@pytest.mark.fuzz
class TestHypothesisFuzz:
    """Open-ended campaigns: hypothesis drives generation and shrinking."""

    @pytest.fixture(scope="class")
    def fleet(self):
        with MatcherFleet(workers=2) as fleet:
            yield fleet

    @settings(max_examples=60, deadline=None, database=None)
    @given(case=fuzz_cases(DEFAULT_PROFILE))
    def test_default_profile_agrees(self, fleet, case):
        assert roundtrip_problems(case) == []
        outcome = run_case(case, fleet.backends())
        assert outcome.ok, outcome.divergences()

    @settings(max_examples=15, deadline=None, database=None)
    @given(case=fuzz_cases(GENERATOR_PROFILES["r1-soar"]))
    def test_r1_soar_profile_agrees(self, fleet, case):
        outcome = run_case(case, fleet.backends())
        assert outcome.ok, outcome.divergences()

    @settings(max_examples=15, deadline=None, database=None)
    @given(case=fuzz_cases(GENERATOR_PROFILES["ilog"]))
    def test_ilog_profile_agrees(self, fleet, case):
        outcome = run_case(case, fleet.backends())
        assert outcome.ok, outcome.divergences()
