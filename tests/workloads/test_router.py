"""The rule-based maze router."""

from collections import deque

import pytest

from repro.naive import NaiveMatcher
from repro.rete import ReteNetwork
from repro.treat import TreatMatcher
from repro.workloads.programs import router

DEFAULT_OBSTACLES = ((1, 1), (1, 2), (2, 1), (3, 3), (4, 2))


def _route_is_connected(cells, source, target):
    """BFS inside the route set: source must reach target."""
    cell_set = set(cells)
    assert source in cell_set and target in cell_set
    seen = {source}
    queue = deque([source])
    while queue:
        x, y = queue.popleft()
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nxt = (x + dx, y + dy)
            if nxt in cell_set and nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return target in seen


class TestRouting:
    def test_default_net_routes(self):
        system = router.build()
        result = system.run(3000)
        assert result.halted and result.halt_reason == "halt action"
        assert result.output[-1] == "route complete"

    def test_route_is_valid(self):
        system = router.build()
        result = system.run(3000)
        cells = router.route_cells(system)
        assert _route_is_connected(cells, (0, 0), (5, 5))
        assert not set(cells) & set(DEFAULT_OBSTACLES)
        # Reported distance matches the route size (distance + 1 cells).
        distance = int(result.output[0].split()[-1])
        assert len(cells) == distance + 1

    def test_route_at_least_lee_distance(self):
        # Recency-driven (depth-first) expansion gives valid but not
        # necessarily minimal labels.
        system = router.build()
        result = system.run(3000)
        distance = int(result.output[0].split()[-1])
        minimum = router.lee_distance(6, 6, (0, 0), (5, 5), DEFAULT_OBSTACLES)
        assert distance >= minimum

    def test_unroutable_net_halts_quietly(self):
        walled = [(1, y) for y in range(6)]  # a full wall
        system = router.build(obstacles=walled)
        result = system.run(3000)
        assert result.halt_reason == "no satisfied production"
        assert "route complete" not in result.output

    def test_adjacent_source_target(self):
        system = router.build(source=(0, 0), target=(0, 1), obstacles=())
        result = system.run(3000)
        assert result.output[0] == "reached target at distance 1"

    def test_obstacle_validation(self):
        with pytest.raises(ValueError):
            router.setup(source=(1, 1))

    def test_lee_distance_reference(self):
        assert router.lee_distance(3, 3, (0, 0), (2, 2), ()) == 4
        assert router.lee_distance(3, 1, (0, 0), (2, 0), ((1, 0),)) is None


class TestRouterAcrossMatchers:
    @pytest.mark.parametrize("matcher_cls", [ReteNetwork, TreatMatcher, NaiveMatcher])
    def test_same_route_every_matcher(self, matcher_cls):
        reference = router.build()
        reference.run(3000)
        system = router.build(matcher=matcher_cls())
        system.run(3000)
        assert sorted(router.route_cells(system)) == sorted(
            router.route_cells(reference)
        )
