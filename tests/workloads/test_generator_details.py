"""Synthetic-generator internals: distributions and structure."""


from repro.workloads.profiles import SystemProfile
from repro.workloads.synthetic import SyntheticGenerator, generate_trace


def _profile(**overrides):
    defaults = dict(name="probe", program_productions=60)
    defaults.update(overrides)
    return SystemProfile(**defaults)


class TestGeometric:
    def test_mean_tracks_parameter(self):
        generator = SyntheticGenerator(_profile(), seed=0)
        samples = [generator._geometric(5.0) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 4.0 <= mean <= 6.0

    def test_minimum_is_one(self):
        generator = SyntheticGenerator(_profile(), seed=0)
        assert all(generator._geometric(1.0) == 1 for _ in range(50))
        assert min(generator._geometric(30.0) for _ in range(500)) >= 1

    def test_tail_is_bounded(self):
        generator = SyntheticGenerator(_profile(), seed=0)
        assert max(generator._geometric(4.0) for _ in range(5000)) <= 32


class TestChangeStructure:
    def test_every_change_has_one_root(self):
        trace = generate_trace(_profile(), seed=1, firings=10)
        for change in trace.iter_changes():
            roots = [t for t in change.tasks if t.kind == "root"]
            assert len(roots) == 1
            assert roots[0].index == 0

    def test_amem_tasks_depend_on_root(self):
        trace = generate_trace(_profile(), seed=1, firings=5)
        for change in trace.iter_changes():
            for task in change.tasks:
                if task.kind == "amem":
                    assert task.deps == (0,)

    def test_heavy_fraction_zero_gives_flat_costs(self):
        trace = generate_trace(_profile(heavy_fraction=0.0), seed=1, firings=20)
        join_costs = [
            t.cost for c in trace.iter_changes() for t in c.tasks if t.kind == "join"
        ]
        assert max(join_costs) < 50  # all light joins

    def test_heavy_fraction_one_raises_costs(self):
        light = generate_trace(_profile(heavy_fraction=0.0), seed=1, firings=20)
        heavy = generate_trace(_profile(heavy_fraction=1.0), seed=1, firings=20)
        assert (
            heavy.serial_cost / heavy.total_changes
            > 2 * light.serial_cost / light.total_changes
        )

    def test_node_identities_recur_across_changes(self):
        trace = generate_trace(_profile(), seed=1, firings=30)
        seen: dict[int, int] = {}
        for change in trace.iter_changes():
            for task in change.tasks:
                seen[task.node_id] = seen.get(task.node_id, 0) + 1
        # Many nodes are activated repeatedly -- the lock model has work.
        assert sum(1 for count in seen.values() if count >= 3) > 10

    def test_firings_override(self):
        trace = generate_trace(_profile(firings=50), seed=1, firings=7)
        assert len(trace.firings) == 7

    def test_alpha_sharing_groups_productions(self):
        trace = generate_trace(_profile(alpha_sharing=5.0), seed=1, firings=10)
        multi = [
            t
            for c in trace.iter_changes()
            for t in c.tasks
            if t.kind == "amem" and len(t.productions) > 1
        ]
        assert multi  # shared alpha memories exist
