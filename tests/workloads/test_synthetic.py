"""Synthetic workload generation: calibration and determinism."""

import pytest

from repro.psim import MachineConfig, simulate
from repro.workloads import PAPER_SYSTEMS, SystemProfile, generate_trace, profile_named


class TestDeterminism:
    def test_same_seed_same_trace(self):
        profile = PAPER_SYSTEMS[0]
        a = generate_trace(profile, seed=1, firings=10)
        b = generate_trace(profile, seed=1, firings=10)
        assert a.total_tasks == b.total_tasks
        assert a.serial_cost == b.serial_cost
        first_a = a.firings[0].changes[0].tasks
        first_b = b.firings[0].changes[0].tasks
        assert first_a == first_b

    def test_different_seeds_differ(self):
        profile = PAPER_SYSTEMS[0]
        a = generate_trace(profile, seed=1, firings=10)
        b = generate_trace(profile, seed=2, firings=10)
        assert a.serial_cost != b.serial_cost

    def test_systems_differ_from_each_other(self):
        costs = {
            profile.name: generate_trace(profile, seed=1, firings=10).serial_cost
            for profile in PAPER_SYSTEMS
        }
        assert len(set(costs.values())) == len(costs)


class TestCalibration:
    @pytest.mark.parametrize("profile", PAPER_SYSTEMS, ids=lambda p: p.name)
    def test_trace_validates(self, profile):
        generate_trace(profile, seed=3, firings=20).validate()

    @pytest.mark.parametrize("profile", PAPER_SYSTEMS, ids=lambda p: p.name)
    def test_affected_mean_tracks_profile(self, profile):
        trace = generate_trace(profile, seed=3, firings=60)
        measured = trace.mean_affected_productions()
        assert 0.5 * profile.affected_mean <= measured <= 1.5 * profile.affected_mean

    @pytest.mark.parametrize("profile", PAPER_SYSTEMS, ids=lambda p: p.name)
    def test_changes_per_firing_tracks_profile(self, profile):
        trace = generate_trace(profile, seed=3, firings=120)
        measured = trace.mean_changes_per_firing()
        assert 0.6 * profile.changes_per_firing <= measured <= 1.5 * profile.changes_per_firing

    def test_serial_cost_near_c1(self):
        """Across the six systems, the serial per-change cost sits in the
        right order of magnitude around the paper's c1 = 1800."""
        costs = [
            generate_trace(p, seed=42, firings=60).serial_cost
            / generate_trace(p, seed=42, firings=60).total_changes
            for p in PAPER_SYSTEMS
        ]
        mean = sum(costs) / len(costs)
        assert 1200 <= mean <= 2800

    def test_task_sizes_in_paper_band(self):
        """Two-input activations average 50-100 instructions (Section 4)
        -- allow slack for the cheap memory tasks."""
        trace = generate_trace(PAPER_SYSTEMS[0], seed=5, firings=20)
        join_costs = [
            t.cost
            for c in trace.iter_changes()
            for t in c.tasks
            if t.kind == "join"
        ]
        mean = sum(join_costs) / len(join_costs)
        assert 30 <= mean <= 110

    def test_every_beta_task_attributed(self):
        trace = generate_trace(PAPER_SYSTEMS[0], seed=5, firings=5)
        for change in trace.iter_changes():
            for task in change.tasks:
                if task.kind in ("join", "bmem", "term", "amem"):
                    assert task.productions


class TestProfiles:
    def test_lookup(self):
        assert profile_named("ilog").name == "ilog"
        with pytest.raises(KeyError):
            profile_named("xcon")

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemProfile(name="bad", firings=0)
        with pytest.raises(ValueError):
            SystemProfile(name="bad", heavy_fraction=2.0)
        with pytest.raises(ValueError):
            SystemProfile(name="bad", changes_per_firing=0.5)


class TestFigureShape:
    def test_ilog_is_least_parallel_r1_most(self):
        config = MachineConfig(processors=32)
        concurrency = {}
        for name in ("ilog", "r1-soar"):
            trace = generate_trace(profile_named(name), seed=42, firings=40)
            concurrency[name] = simulate(trace, config).concurrency
        assert concurrency["ilog"] < concurrency["r1-soar"]

    def test_saturation_by_64_processors(self):
        trace = generate_trace(profile_named("vt"), seed=42, firings=40)
        at_32 = simulate(trace, MachineConfig(processors=32)).true_speedup
        at_64 = simulate(trace, MachineConfig(processors=64)).true_speedup
        assert at_64 <= at_32 * 1.25  # diminishing returns past 32
