"""The real OPS5 programs: correctness of the domain behaviour."""

import pytest

from repro.naive import NaiveMatcher
from repro.oflazer import CombinationMatcher
from repro.rete import ReteNetwork
from repro.treat import TreatMatcher
from repro.workloads.programs import blocks, closure, eight_puzzle, hanoi, monkey


class TestHanoi:
    @pytest.mark.parametrize("disks", [1, 2, 3, 4, 5])
    def test_optimal_move_count(self, disks):
        result = hanoi.run(disks)
        moves = [line for line in result.output if line.startswith("move")]
        assert len(moves) == hanoi.expected_moves(disks)
        assert result.halted and result.halt_reason == "halt action"

    def test_moves_are_legal(self):
        """Replay the move log: never place a disk on a smaller one."""
        result = hanoi.run(4)
        pegs = {1: [4, 3, 2, 1], 2: [], 3: []}
        for line in result.output:
            if not line.startswith("move"):
                continue
            _, size, source, target = line.split()
            size, source, target = int(size), int(source), int(target)
            assert pegs[source] and pegs[source][-1] == size
            assert not pegs[target] or pegs[target][-1] > size
            pegs[target].append(pegs[source].pop())
        assert pegs[3] == [4, 3, 2, 1]

    def test_goals_cleaned_up(self):
        system = hanoi.build(3)
        system.run()
        assert system.memory.of_class("goal") == []


class TestBlocks:
    def test_default_scenario_reaches_goal(self):
        system = blocks.build()
        result = system.run(max_cycles=200)
        assert result.halted
        on = {
            (wme.get("top"), wme.get("bottom")) for wme in system.memory.of_class("on")
        }
        assert ("e", "b") in on
        assert ("c", "e") in on
        assert ("d", "c") in on

    def test_clearing_rule_used(self):
        result = blocks.run()
        assert any(line.startswith("cleared") for line in result.output)

    def test_custom_goals(self):
        system = blocks.build()
        assert system.run(max_cycles=200).halted


class TestMonkey:
    def test_story_order(self):
        result = monkey.run()
        assert result.output == [
            "monkey walks to window",
            "monkey pushes ladder to center",
            "monkey climbs",
            "monkey grabs bananas",
            "burp",
        ]
        assert result.fired == 5


class TestEightPuzzle:
    def test_easy_instance_solves(self):
        result = eight_puzzle.run(eight_puzzle.EASY)
        assert result.output[-1] == "solved"
        assert result.fired == 3

    def test_medium_instance_solves(self):
        result = eight_puzzle.run(eight_puzzle.MEDIUM)
        assert result.output[-1] == "solved"

    def test_solved_board_halts_immediately(self):
        solved = (1, 2, 3, 4, 5, 6, 7, 8, 0)
        result = eight_puzzle.run(solved)
        assert result.fired == 1
        assert result.output == ["solved"]

    def test_board_validated(self):
        with pytest.raises(ValueError):
            eight_puzzle.setup((1, 1, 2, 3, 4, 5, 6, 7, 8))

    def test_exploratory_variant_runs_bounded(self):
        system = eight_puzzle.build((2, 1, 3, 4, 5, 6, 7, 8, 0), exploratory=True)
        result = system.run(max_cycles=20)
        assert result.fired <= 20


class TestClosure:
    @pytest.mark.parametrize("length", [1, 3, 6])
    def test_chain_fact_count(self, length):
        system = closure.build(closure.chain(length))
        system.run(5000)
        assert closure.derived_facts(system) == closure.expected_chain_facts(length)

    def test_tree_fact_count(self):
        system = closure.build(closure.tree(3, 2))
        system.run(5000)
        # ancestors = sum over levels of nodes * depth: 2*1 + 4*2 + 8*3.
        assert closure.derived_facts(system) == 34

    def test_halts_at_fixpoint(self):
        system = closure.build(closure.chain(4))
        result = system.run(5000)
        assert result.halted
        assert result.halt_reason == "no satisfied production"


MATCHERS = [ReteNetwork, TreatMatcher, NaiveMatcher, CombinationMatcher]


class TestMatcherAgreementOnPrograms:
    """Every program behaves identically under all three matchers."""

    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    def test_hanoi(self, matcher_cls):
        result = hanoi.run(3, matcher=matcher_cls())
        moves = [line for line in result.output if line.startswith("move")]
        assert len(moves) == 7

    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    def test_monkey(self, matcher_cls):
        assert monkey.run(matcher=matcher_cls()).fired == 5

    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    def test_blocks(self, matcher_cls):
        reference = blocks.run().output
        assert blocks.build(matcher=matcher_cls()).run(200).output == reference

    @pytest.mark.parametrize("matcher_cls", MATCHERS)
    def test_closure(self, matcher_cls):
        system = closure.build(closure.chain(4), matcher=matcher_cls())
        system.run(5000)
        assert closure.derived_facts(system) == 10
