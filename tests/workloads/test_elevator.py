"""The elevator controller: SCAN policy correctness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.naive import NaiveMatcher
from repro.oflazer import CombinationMatcher
from repro.rete import ReteNetwork
from repro.treat import TreatMatcher
from repro.workloads.programs import elevator


class TestPolicy:
    def test_default_run_serves_in_scan_order(self):
        result = elevator.run()
        assert elevator.served_floors(result) == [2, 4, 7]
        assert result.output[-1] == "resting"

    def test_sweep_up_then_down(self):
        result = elevator.run(start=5, calls=(3, 8, 1))
        # SCAN: finish the upward sweep (8), then serve downward (3, 1).
        assert elevator.served_floors(result) == [8, 3, 1]

    def test_movement_is_one_floor_per_cycle(self):
        result = elevator.run(start=1, calls=(4,))
        visited = elevator.floors_visited(result)
        assert visited == [2, 3, 4]
        for here, there in zip(visited, visited[1:]):
            assert abs(there - here) == 1

    def test_call_at_current_floor_served_immediately(self):
        result = elevator.run(start=3, calls=(3,))
        assert result.output[0] == "serve 3"

    def test_parks_at_ground_when_idle(self):
        result = elevator.run(start=1, calls=(5,))
        assert result.output[-1] == "resting"
        # After serving floor 5 the lift walks back down to 1 silently:
        # total firings = 4 up + 1 serve + 4 park + 1 rest.
        assert result.fired == 10

    def test_no_calls_rests_immediately(self):
        result = elevator.run(start=1, calls=())
        assert result.fired == 1
        assert result.output == ["resting"]

    def test_duplicate_calls_served_once_each(self):
        result = elevator.run(start=1, calls=(3, 3))
        assert elevator.served_floors(result) == [3, 3]


class TestAcrossMatchers:
    @pytest.mark.parametrize(
        "matcher_cls", [ReteNetwork, TreatMatcher, NaiveMatcher, CombinationMatcher]
    )
    def test_identical_behaviour(self, matcher_cls):
        reference = elevator.run(start=2, calls=(6, 1, 4)).output
        result = elevator.run(start=2, calls=(6, 1, 4), matcher=matcher_cls())
        assert result.output == reference


class TestPolicyProperties:
    """Hypothesis: every call pattern is fully served, then the lift rests."""

    @settings(max_examples=60, deadline=None)
    @given(
        start=st.integers(min_value=1, max_value=9),
        calls=st.lists(st.integers(min_value=1, max_value=9), max_size=6),
    )
    def test_all_calls_served_and_lift_rests(self, start, calls):
        result = elevator.run(start=start, calls=tuple(calls))
        assert result.halted and result.halt_reason == "halt action"
        assert result.output[-1] == "resting"
        assert sorted(elevator.served_floors(result)) == sorted(calls)

    @settings(max_examples=40, deadline=None)
    @given(
        start=st.integers(min_value=1, max_value=9),
        calls=st.lists(st.integers(min_value=1, max_value=9), min_size=1,
                       max_size=5),
    )
    def test_movement_is_always_single_floor(self, start, calls):
        result = elevator.run(start=start, calls=tuple(calls))
        here = start
        for floor in elevator.floors_visited(result):
            assert abs(floor - here) == 1
            here = floor
