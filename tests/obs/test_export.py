"""Exporters: JSONL round-trips and Chrome trace-event structure."""

import json

from repro.obs import (
    Event,
    chrome_trace,
    event_to_chrome,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.recorder import PH_COMPLETE, PH_INSTANT


def _events():
    return [
        Event(name="select", cat="engine", ph=PH_COMPLETE, ts=1500, dur=2500),
        Event(
            name="wm:add",
            cat="wm",
            ph=PH_INSTANT,
            ts=5000,
            tid=0,
            args={"wme_class": "goal", "timetag": 3},
        ),
        Event(name="shard-batch", cat="parallel", ph=PH_COMPLETE, ts=0, dur=1000, tid=2),
    ]


class TestChromeConversion:
    def test_nanoseconds_become_microseconds(self):
        row = event_to_chrome(_events()[0])
        assert row["ts"] == 1.5
        assert row["dur"] == 2.5

    def test_instants_are_thread_scoped_without_duration(self):
        row = event_to_chrome(_events()[1])
        assert row["ph"] == "i"
        assert row["s"] == "t"
        assert "dur" not in row
        assert row["args"] == {"wme_class": "goal", "timetag": 3}

    def test_empty_category_defaults(self):
        row = event_to_chrome(Event(name="x", cat="", ph=PH_INSTANT, ts=0))
        assert row["cat"] == "repro"

    def test_trace_document_shape(self):
        doc = chrome_trace(_events(), thread_names={0: "engine", 2: "shard 1"})
        assert doc["displayTimeUnit"] == "ms"
        rows = doc["traceEvents"]
        meta = [r for r in rows if r["ph"] == "M"]
        names = {
            r["tid"]: r["args"]["name"] for r in meta if r["name"] == "thread_name"
        }
        assert names == {0: "engine", 2: "shard 1"}
        assert any(r["name"] == "process_name" for r in meta)
        sort_rows = [r for r in meta if r["name"] == "thread_sort_index"]
        assert {r["args"]["sort_index"] for r in sort_rows} == {0, 2}
        # All data rows share one pid -- one process timeline.
        assert len({r["pid"] for r in rows}) == 1

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        rows = write_chrome_trace(_events(), path, thread_names={0: "engine"})
        with open(path) as handle:
            doc = json.load(handle)
        assert len(doc["traceEvents"]) == rows
        assert rows == len(_events()) + 3  # process + thread name + sort index


class TestJsonl:
    def test_round_trip_preserves_every_field(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = _events()
        assert write_jsonl(events, path) == len(events)
        back = read_jsonl(path)
        assert back == events

    def test_blank_lines_tolerated(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        write_jsonl(_events()[:1], path)
        with open(path, "a") as handle:
            handle.write("\n")
        assert len(read_jsonl(path)) == 1
