"""The recorder threaded through the live layers.

Engine cycles, Rete activations, parallel shard batches, and serve
requests all land on one Recorder timeline; these tests pin the event
vocabulary each layer emits and the counters the spans must agree with.
"""

from repro.obs import Recorder, snapshot
from repro.ops5 import ProductionSystem
from repro.parallel import ParallelMatcher
from repro.rete import RecorderListener, ReteNetwork
from repro.serve.session import Session, SessionManager
from repro.workloads.programs import hanoi

COUNTDOWN = """
(p step (count ^n { <x> > 0 }) --> (modify 1 ^n (compute <x> - 1)))
(p done (count ^n 0) --> (halt))
"""


def by_cat(recorder, cat):
    return [e for e in recorder.events if e.cat == cat]


class TestEngineSpans:
    def test_wm_instants_match_engine_counter(self):
        recorder = Recorder()
        system = hanoi.build(3, recorder=recorder)
        system.run()
        wm_events = by_cat(recorder, "wm")
        assert len(wm_events) == system.total_wme_changes
        kinds = {e.name for e in wm_events}
        assert kinds == {"wm:add", "wm:remove"}

    def test_select_and_fire_spans_per_cycle(self):
        recorder = Recorder()
        system = ProductionSystem(COUNTDOWN, recorder=recorder)
        system.add("count", n=3)
        system.run()
        engine_events = by_cat(recorder, "engine")
        selects = [e for e in engine_events if e.name == "select"]
        fires = [e for e in engine_events if e.name == "fire"]
        # One select + one fire span per executed cycle (a halt action
        # ends the run, so no trailing empty resolution here).
        assert len(fires) == system.cycle == 4
        assert len(selects) == system.cycle
        assert fires[0].args["production"] == "step"
        assert fires[-1].args["production"] == "done"
        assert [e.args["cycle"] for e in fires] == [1, 2, 3, 4]

    def test_disabled_recorder_leaves_counters_working(self):
        system = ProductionSystem(COUNTDOWN)
        system.add("count", n=2)
        system.run()
        assert system.total_firings == 3
        # 1 initial add + two modify firings at 2 changes each.
        assert system.total_wme_changes == 5

    def test_total_counters_survive_reset(self):
        system = ProductionSystem(COUNTDOWN)
        system.add("count", n=1)
        system.run()
        fired, changed = system.total_firings, system.total_wme_changes
        assert fired > 0 and changed > 0
        system.reset()
        assert system.cycle == 0
        assert system.total_firings == fired  # lifetime, never reset


class TestReteActivationSpans:
    def test_activations_become_timed_spans(self):
        recorder = Recorder()
        net = ReteNetwork(listener=RecorderListener(recorder))
        system = hanoi.build(3, matcher=net, recorder=recorder)
        system.run()
        rete_events = by_cat(recorder, "rete")
        changes = [e for e in rete_events if e.name.startswith("change:")]
        activations = [e for e in rete_events if "#" in e.name]
        assert len(changes) == system.total_wme_changes
        assert activations, "node activations must produce spans"
        kinds = {e.name.split("#")[0] for e in activations}
        assert "root" in kinds and ("join" in kinds or "amem" in kinds)
        assert all(e.dur >= 0 for e in activations)
        assert all("seq" in e.args and "comparisons" in e.args for e in activations)

    def test_span_comparisons_sum_to_match_stats(self):
        recorder = Recorder()
        net = ReteNetwork(listener=RecorderListener(recorder))
        system = hanoi.build(3, matcher=net, recorder=recorder)
        system.run()
        spans = [e for e in by_cat(recorder, "rete") if "#" in e.name]
        assert (
            sum(e.args["comparisons"] for e in spans)
            == net.stats.total_comparisons
        )

    def test_untimed_listener_leaves_events_unstamped(self):
        net = ReteNetwork()  # default listener: wants_timing is False
        assert net._activation_clock is None


class TestParallelSpans:
    def test_shard_batches_and_flushes_recorded(self):
        recorder = Recorder()
        with ParallelMatcher(workers=0, recorder=recorder) as matcher:
            system = hanoi.build(3, matcher=matcher, recorder=recorder)
            system.run()
        parallel_events = by_cat(recorder, "parallel")
        flushes = [e for e in parallel_events if e.name == "flush"]
        batches = [e for e in parallel_events if e.name == "shard-batch"]
        assert flushes and batches
        assert all(e.tid == 0 for e in flushes)
        assert all(e.tid == 1 + e.args["shard"] for e in batches)
        assert all(e.args["ops"] > 0 for e in batches)
        # Shard work happens inside the enclosing flush window.
        assert sum(b.dur for b in batches) <= sum(f.dur for f in flushes)

    def test_parallel_run_snapshot_consistent_with_engine(self):
        recorder = Recorder()
        with ParallelMatcher(workers=0, recorder=recorder) as matcher:
            system = hanoi.build(3, matcher=matcher, recorder=recorder)
            system.run()
            matcher.flush()
            data = snapshot(system, recorder=recorder)
        assert data["engine"]["wme_changes"] == data["match"]["wme_changes"]
        assert data["recorder"]["events"] == len(recorder.events)


class TestServeSpans:
    def test_request_spans_and_metrics_in_describe(self):
        recorder = Recorder()
        session = Session("t", program=COUNTDOWN, recorder=recorder)
        try:
            session.perform({"op": "assert", "wmes": [["count", {"n": 2}]]})
            session.perform({"op": "run"})
            described = session.describe()
        finally:
            session.close_resources()
        serve_events = by_cat(recorder, "serve")
        assert [e.name for e in serve_events] == ["request:assert", "request:run"]
        assert all(e.args["session"] == "t" for e in serve_events)
        metrics = described["metrics"]
        assert metrics["engine"]["firings"] == described["firings"] == 3
        assert metrics["engine"]["wme_changes"] == metrics["match"]["wme_changes"]

    def test_manager_threads_recorder_and_stamps_schema(self):
        recorder = Recorder()
        manager = SessionManager(recorder=recorder)
        session = manager.create(program=COUNTDOWN)
        try:
            assert session.recorder is recorder
            rollup = manager.stats()
        finally:
            session.close_resources()
        assert rollup["schema"] == "repro.metrics/1"
        assert set(rollup) == {"schema", "sessions", "tenants", "totals"}
