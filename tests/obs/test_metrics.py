"""The unified metrics snapshot and its cross-section consistency."""

from repro.obs import SCHEMA, consistency_problems, snapshot
from repro.obs.recorder import Recorder
from repro.ops5 import ProductionSystem
from repro.parallel import ParallelMatcher
from repro.serve.stats import Telemetry
from repro.workloads.programs import hanoi

PROGRAM = """
(p step (count ^n <x>) --> (modify 1 ^n (compute <x> - 1)))
"""


class TestSnapshotSections:
    def test_rete_engine_snapshot(self):
        system = hanoi.build(3)
        system.run()
        data = snapshot(system)
        assert data["schema"] == SCHEMA
        assert data["engine"]["halted"] is True
        assert data["engine"]["cycles"] == data["engine"]["firings"]
        assert data["engine"]["wme_changes"] == data["match"]["wme_changes"]
        rete = data["rete"]
        assert rete["nodes"] > 0
        assert 0.0 <= rete["sharing_ratio"] <= 1.0
        assert sum(rete["nodes_by_kind"].values()) == rete["nodes"]

    def test_parallel_section(self):
        with ParallelMatcher(workers=0) as matcher:
            system = hanoi.build(3, matcher=matcher)
            system.run()
            data = snapshot(system)
        assert "rete" not in data
        parallel = data["parallel"]
        assert parallel["workers"] == 0
        assert parallel["shards"] == 1
        assert sum(parallel["productions_per_shard"]) == 5

    def test_optional_sections_appear_when_given(self):
        system = ProductionSystem(PROGRAM)
        telemetry = Telemetry()
        telemetry.firings = 0
        recorder = Recorder()
        data = snapshot(system, telemetry=telemetry, recorder=recorder)
        assert "serve" in data
        assert data["recorder"] == {"enabled": True, "events": 0}
        bare = snapshot(system)
        assert "serve" not in bare and "recorder" not in bare


class TestPeekStats:
    def test_peek_does_not_move_the_parallel_flush_barrier(self):
        with ParallelMatcher(workers=0) as matcher:
            system = ProductionSystem(PROGRAM, matcher=matcher)
            system.add("count", n=5)
            # The change is queued behind the cycle barrier: a metrics
            # snapshot must observe *without* dispatching it.
            assert matcher.peek_stats().total_changes == 0
            before = snapshot(system)
            assert before["match"]["wme_changes"] == 0
            # Reading .stats IS the barrier; now the change is counted.
            assert matcher.stats.total_changes == 1
            after = snapshot(system)
            assert after["match"]["wme_changes"] == 1

    def test_serial_matchers_peek_equals_stats(self):
        system = ProductionSystem(PROGRAM)
        system.add("count", n=5)
        assert system.matcher.peek_stats() is system.matcher.stats


class TestConsistencyProblems:
    def test_clean_snapshot_has_none(self):
        system = hanoi.build(3)
        system.run()
        assert consistency_problems(snapshot(system)) == []

    def test_wme_change_disagreement_reported(self):
        problems = consistency_problems(
            {"engine": {"wme_changes": 5, "firings": 1, "cycles": 1},
             "match": {"wme_changes": 3}}
        )
        assert len(problems) == 1
        assert "5" in problems[0] and "3" in problems[0]

    def test_firings_behind_cycles_reported(self):
        problems = consistency_problems(
            {"engine": {"wme_changes": 0, "firings": 1, "cycles": 2},
             "match": {"wme_changes": 0}}
        )
        assert any("fell behind" in p for p in problems)

    def test_serve_firings_exceeding_engine_reported(self):
        problems = consistency_problems(
            {"engine": {"wme_changes": 0, "firings": 1, "cycles": 1},
             "match": {"wme_changes": 0},
             "serve": {"firings": 2}}
        )
        assert any("serve telemetry" in p for p in problems)


class TestSchedulerSection:
    def test_local_transport_reports_scheduler_counters(self):
        with ParallelMatcher(workers=2, transport="local") as matcher:
            system = hanoi.build(3, matcher=matcher)
            system.run()
            data = snapshot(system)
            again = snapshot(system)
        scheduler = data["scheduler"]
        assert scheduler["workers"] == 2
        assert scheduler["epochs"] > 0
        assert scheduler["fast_batches"] >= 0
        # Snapshot reads are side-effect-free: a second read observes
        # the same counters (no epoch advanced, no task dispatched).
        assert again["scheduler"] == scheduler

    def test_section_absent_off_local_transport(self):
        with ParallelMatcher(workers=0) as matcher:
            system = hanoi.build(3, matcher=matcher)
            system.run()
            data = snapshot(system)
        assert "scheduler" not in data
