"""The event/span recorder: timing, lanes, and the disabled path."""

import itertools

from repro.obs import NULL_RECORDER, Recorder
from repro.obs.recorder import PH_COMPLETE, PH_INSTANT, _NULL_SPAN


def ticking_recorder(step: int = 10, **kwargs) -> Recorder:
    """A recorder on a deterministic clock: 0, step, 2*step, ..."""
    counter = itertools.count(0, step)
    return Recorder(clock=lambda: next(counter), **kwargs)


class TestSpans:
    def test_span_times_entry_to_exit(self):
        rec = ticking_recorder()
        # Clock readings: epoch=0, enter=10, exit=20.
        with rec.span("work", "engine"):
            pass
        [event] = rec.events
        assert event.name == "work"
        assert event.cat == "engine"
        assert event.ph == PH_COMPLETE
        assert event.ts == 10
        assert event.dur == 10

    def test_span_kwargs_become_args(self):
        rec = ticking_recorder()
        with rec.span("fire", "engine", cycle=3, production="expand"):
            pass
        [event] = rec.events
        assert event.args == {"cycle": 3, "production": "expand"}

    def test_span_without_args_stores_none(self):
        rec = ticking_recorder()
        with rec.span("s"):
            pass
        assert rec.events[0].args is None

    def test_span_records_even_when_body_raises(self):
        rec = ticking_recorder()
        try:
            with rec.span("explode"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(rec.events) == 1  # the span closed, the error escaped

    def test_nested_spans_share_one_timeline(self):
        rec = ticking_recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        inner, outer = rec.events  # inner exits (appends) first
        assert inner.name == "inner"
        assert outer.ts <= inner.ts
        assert outer.ts + outer.dur >= inner.ts + inner.dur


class TestInstantsAndComplete:
    def test_instant_is_a_point_event(self):
        rec = ticking_recorder()
        rec.instant("wm:add", "wm", wme_class="goal", timetag=7)
        [event] = rec.events
        assert event.ph == PH_INSTANT
        assert event.dur == 0
        assert event.ts == 10
        assert event.args == {"wme_class": "goal", "timetag": 7}

    def test_complete_rebases_raw_clock_onto_epoch(self):
        rec = ticking_recorder()  # epoch = 0
        start = rec.now()  # 10
        rec.complete("ext", "rete", start=start, duration=5, tid=3)
        [event] = rec.events
        assert event.ph == PH_COMPLETE
        assert event.ts == 10
        assert event.dur == 5
        assert event.tid == 3

    def test_lanes_are_preserved(self):
        rec = ticking_recorder()
        rec.instant("a", tid=0)
        rec.instant("b", tid=2)
        assert [e.tid for e in rec.events] == [0, 2]


class TestDisabledPath:
    def test_disabled_records_nothing(self):
        rec = Recorder(enabled=False)
        with rec.span("s", "c", cycle=1):
            pass
        rec.instant("i")
        rec.complete("x", start=0, duration=1)
        assert len(rec) == 0

    def test_disabled_span_is_the_shared_null_singleton(self):
        rec = Recorder(enabled=False)
        assert rec.span("a") is _NULL_SPAN
        assert rec.span("b") is rec.span("c")

    def test_null_recorder_is_disabled(self):
        assert NULL_RECORDER.enabled is False
        with NULL_RECORDER.span("anything"):
            pass
        assert len(NULL_RECORDER) == 0


class TestAccess:
    def test_len_and_drain(self):
        rec = ticking_recorder()
        rec.instant("a")
        rec.instant("b")
        assert len(rec) == 2
        drained = rec.drain()
        assert [e.name for e in drained] == ["a", "b"]
        assert len(rec) == 0

    def test_real_clock_timestamps_are_monotone(self):
        rec = Recorder()
        with rec.span("outer"):
            rec.instant("mid")
        mid, outer = rec.events
        assert 0 <= outer.ts <= mid.ts
        assert outer.dur >= 0
