"""Load generator: trace generation, replay accounting, CLI."""

import json

import pytest

from repro.serve import ServerThread
from repro.serve.loadgen import (
    closure_trace,
    expected_trace_firings,
    load_trace,
    main,
    replay,
    run_load,
    save_trace,
)


class TestTraces:
    def test_closure_trace_shape(self):
        trace = closure_trace(batches=3, chain_length=4, batch_size=2)
        runs = [op for op in trace if op["op"] == "run"]
        asserts = [op for op in trace if op["op"] == "assert"]
        assert len(runs) == 3
        assert len(asserts) == 6  # 4 edges per batch in chunks of 2
        assert all(len(op["wmes"]) == 2 for op in asserts)
        # Chains are disjoint across batches: no "to" node recurs.
        targets = [w[1]["to"] for op in asserts for w in op["wmes"]]
        assert len(targets) == len(set(targets))

    def test_expected_trace_firings(self):
        assert expected_trace_firings(batches=3, chain_length=4) == 3 * 10

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = closure_trace(batches=2, chain_length=3)
        path = tmp_path / "trace.json"
        save_trace(trace, str(path))
        assert load_trace(str(path)) == trace

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"op": "run"}')
        with pytest.raises(ValueError, match="JSON list"):
            load_trace(str(path))


class TestReplay:
    def test_replay_counts_exact_firings(self):
        with ServerThread() as harness:
            trace = closure_trace(batches=2, chain_length=4)
            result = replay(harness.address, trace)
            assert result.error is None
            assert result.firings == expected_trace_firings(2, 4)
            assert result.requests == len(trace)
            assert len(result.latencies) == len(trace)

    def test_run_load_summary_is_exact(self):
        with ServerThread() as harness:
            summary = run_load(
                harness.address, clients=2, batches=2, chain_length=4
            )
            assert summary["errors"] == []
            expected = 2 * expected_trace_firings(2, 4)
            # Server-side sustained counters agree with client-side sums.
            assert summary["firings"] == expected
            assert summary["client_firings"] == expected
            assert summary["wme_changes"] == expected + 2 * 2 * 4
            assert summary["firings_per_second"] > 0
            assert summary["latency"]["samples"] == summary["requests"]
            # All sessions were destroyed after the run.
            from repro.serve import RuleClient

            with RuleClient(harness.address) as client:
                assert client.list_sessions() == []

    def test_shared_session_engages_backpressure_without_loss(self):
        with ServerThread() as harness:
            summary = run_load(
                harness.address,
                clients=4,
                shared_session=True,
                max_pending=1,
                batches=2,
                chain_length=3,
            )
            assert summary["errors"] == []
            assert summary["sessions"] == 1
            # Exact work despite rejections: nothing was dropped.
            assert summary["firings"] == 4 * expected_trace_firings(2, 3)


class TestCli:
    def test_main_spawns_and_writes_summary(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        trace_path = tmp_path / "trace.json"
        rc = main(
            [
                "--spawn",
                "--clients",
                "2",
                "--batches",
                "2",
                "--chain-length",
                "3",
                "--save-trace",
                str(trace_path),
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        summary = json.loads(out.read_text())
        assert summary["firings"] == 2 * expected_trace_firings(2, 3)
        assert load_trace(str(trace_path)) == closure_trace(
            batches=2, chain_length=3
        )
        assert "sustained:" in capsys.readouterr().out

    def test_main_replays_saved_trace(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        save_trace(closure_trace(batches=1, chain_length=3), str(trace_path))
        out = tmp_path / "summary.json"
        rc = main(
            [
                "--spawn",
                "--clients",
                "1",
                "--trace",
                str(trace_path),
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        summary = json.loads(out.read_text())
        assert summary["firings"] == expected_trace_firings(1, 3)
