"""End-to-end server tests over a real socket: lifecycle, isolation,
backpressure, and graceful shutdown."""

import multiprocessing
import threading
import time

import pytest

from repro.ops5 import ProductionSystem
from repro.serve import BackpressureError, RuleClient, ServerError, ServerThread
from repro.workloads.programs import closure

CHAIN = [["parent", {"from": f"n{i}", "to": f"n{i + 1}"}] for i in range(6)]


@pytest.fixture(scope="module")
def server():
    """One shared server for the read-mostly tests in this module."""
    with ServerThread() as harness:
        yield harness


def test_ping_and_list_sessions(server):
    with RuleClient(server.address) as client:
        assert client.ping()["ok"] is True
        assert client.ping(payload="x")["pong"] == "x"
        assert client.list_sessions() == []


def test_full_session_lifecycle(server):
    with RuleClient(server.address) as client:
        sid = client.create_session(program=closure.PROGRAM, name="life")
        try:
            assert sid == "life"
            assert "life" in client.list_sessions()
            reply = client.assert_wmes(sid, CHAIN, run=True)
            assert reply["run"]["fired"] == closure.expected_chain_facts(6)
            wm = client.query_wm(sid)
            assert len(wm) == 6 + closure.expected_chain_facts(6)
            stats = client.session_stats(sid)
            assert stats["firings"] == closure.expected_chain_facts(6)
            assert stats["matcher"] == "rete"
        finally:
            client.destroy_session(sid)
        assert "life" not in client.list_sessions()


@pytest.mark.parametrize(
    "matcher,workers", [("rete", None), ("treat", None), ("parallel", 2)]
)
def test_served_results_bit_identical_to_direct_run(server, matcher, workers):
    """The acceptance criterion, through a real socket and any backend."""
    direct = ProductionSystem(closure.PROGRAM, matcher="rete")
    direct.apply_changes([("assert", cls, attrs) for cls, attrs in CHAIN])
    expected = direct.run()
    expected_wm = sorted(
        (w.cls, tuple(sorted(w.attributes.items())), w.timetag)
        for w in direct.memory.snapshot()
    )

    with RuleClient(server.address) as client:
        sid = client.create_session(
            program=closure.PROGRAM, matcher=matcher, workers=workers
        )
        try:
            # Ingest in deliberately ragged batches: 1, 2, then the rest.
            client.assert_wmes(sid, CHAIN[:1])
            client.assert_wmes(sid, CHAIN[1:3])
            client.assert_wmes(sid, CHAIN[3:])
            reply = client.run(sid)
            assert [
                (name, tuple(tags)) for name, tags in reply["firings"]
            ] == [(c.production, c.timetags) for c in expected.cycles]
            served_wm = sorted(
                (cls, tuple(sorted(attrs.items())), tag)
                for cls, attrs, tag in client.query_wm(sid)
            )
            assert served_wm == expected_wm
        finally:
            client.destroy_session(sid)


def test_concurrent_sessions_are_isolated(server):
    """N sessions ingesting interleaved batches never observe each other."""
    expected = closure.expected_chain_facts(6)
    with RuleClient(server.address) as client:
        sids = [
            client.create_session(program=closure.PROGRAM) for _ in range(3)
        ]
        try:
            # Interleave ingestion across sessions, then run each.
            for start, stop in [(0, 2), (2, 4), (4, 6)]:
                for sid in sids:
                    client.assert_wmes(sid, CHAIN[start:stop])
            for sid in sids:
                assert client.run(sid)["fired"] == expected
                assert len(client.query_wm(sid)) == 6 + expected
        finally:
            for sid in sids:
                client.destroy_session(sid)


def test_errors_are_replies_not_disconnects(server):
    with RuleClient(server.address) as client:
        with pytest.raises(ServerError, match="no session"):
            client.run("nope")
        with pytest.raises(ServerError, match="not literalized"):
            client.create_session(
                program="(literalize a x)\n(p r (a ^y 1) --> (halt))"
            )
        sid = client.create_session(program=closure.PROGRAM)
        try:
            with pytest.raises(ServerError, match="unknown"):
                client.request("query", session=sid, what="everything")
            # The connection and the session both survived all of that.
            assert client.ping()["ok"] is True
            assert sid in client.list_sessions()
        finally:
            client.destroy_session(sid)


def test_backpressure_rejects_then_recovers():
    """A hammered one-deep queue rejects loudly but loses nothing."""
    with ServerThread() as harness:
        with RuleClient(harness.address) as control:
            sid = control.create_session(
                program=closure.PROGRAM, max_pending=1
            )

            rejections = []
            errors = []

            def hammer(index):
                try:
                    with RuleClient(harness.address) as client:
                        for i in range(4):
                            wme = [
                                "parent",
                                {"from": f"t{index}.{i}", "to": f"t{index}.{i + 1}"},
                            ]
                            while True:
                                try:
                                    client.request(
                                        "assert", session=sid, wmes=[wme], run=True
                                    )
                                    break
                                except BackpressureError as rejected:
                                    rejections.append(rejected.retry_after)
                                    time.sleep(rejected.retry_after)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert not errors
            for hint in rejections:
                assert 0 < hint <= 2.0
            # No dropped session state: every asserted edge is in WM.
            wm = control.query_wm(sid)
            parents = [attrs for cls, attrs, _ in wm if cls == "parent"]
            assert len(parents) == 16
            stats = control.session_stats(sid)
            assert stats["rejected"] == len(rejections)
            control.destroy_session(sid)


def test_graceful_shutdown_drains_and_reaps():
    """Shutdown finishes in-flight work and leaves no worker processes."""
    harness = ServerThread()
    with RuleClient(harness.address) as client:
        sid = client.create_session(
            program=closure.PROGRAM, matcher="parallel", workers=2
        )
        client.assert_wmes(sid, CHAIN)
        reply = client.shutdown_server()
        assert reply["draining_sessions"] == 1
        harness._thread.join(timeout=30)
        assert not harness._thread.is_alive()
    for _ in range(100):
        if not multiprocessing.active_children():
            break
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


def test_requests_after_shutdown_are_refused():
    harness = ServerThread()
    with RuleClient(harness.address) as client:
        client.create_session(program=closure.PROGRAM, name="gone")
        client.shutdown_server()
        harness._thread.join(timeout=30)
    with pytest.raises((ConnectionError, OSError)):
        probe = RuleClient(harness.address)
        probe.ping()


def test_import_session_round_trips_a_real_export(server):
    with RuleClient(server.address) as client:
        sid = client.create_session(program=closure.PROGRAM)
        try:
            client.assert_wmes(sid, CHAIN[:3], run=True)
            exported = client.request("export", session=sid)
            copy = client.request(
                "import_session",
                name="copy-of-export",
                config=exported["config"],
                state=exported["state"],
            )
            assert copy["ok"]
            try:
                assert client.query_wm("copy-of-export") == client.query_wm(sid)
            finally:
                client.destroy_session("copy-of-export")
        finally:
            client.destroy_session(sid)


def test_import_session_rejects_bad_state_payloads(server):
    """Malformed, truncated, or schema-mismatched engine-state blobs
    arriving over the wire become a typed ``bad_state`` reply -- never a
    traceback, never a half-imported session."""
    with RuleClient(server.address) as client:
        sid = client.create_session(program=closure.PROGRAM)
        try:
            exported = client.request("export", session=sid)
            config, state = exported["config"], exported["state"]

            def refused(detail_match, **kwargs):
                with pytest.raises(ServerError, match="bad_state") as caught:
                    client.request("import_session", name="junk", **kwargs)
                assert detail_match in caught.value.reply["detail"]
                assert "junk" not in client.list_sessions()

            refused("config must be", config="not a dict", state=state)
            refused("JSON object", config=config, state=[1, 2, 3])
            refused("schema", config=config,
                    state={**state, "schema": "repro.engine-state/9"})
            refused("triple", config=config,
                    state={**state, "wmes": [[1, "c"]]})  # truncated wme
            refused("positive integer", config=config,
                    state={**state, "wmes": [[True, "c", {}]]})
            refused("duplicate", config=config,
                    state={**state, "wmes": [[1, "c", {}], [1, "d", {}]]})
            refused("next_timetag", config=config,
                    state={**state, "next_timetag": 0})
            refused("halted", config=config, state={**state, "halted": "no"})
            # Validation passed but the engine refuses: the config's
            # program does not parse.  Still a typed reply.
            refused("", config={**config, "program": "(p broken"}, state=state)

            # The connection and the original session survived it all.
            assert client.ping()["ok"] is True
            assert sid in client.list_sessions()
        finally:
            client.destroy_session(sid)
