"""Telemetry: latency percentiles and counter rollups."""

import pytest

from repro.serve.stats import LatencyWindow, Telemetry


class TestLatencyWindow:
    def test_empty_window_reports_zero(self):
        window = LatencyWindow()
        assert window.p50 == 0.0
        assert window.p99 == 0.0
        assert window.count == 0

    def test_percentiles_on_known_data(self):
        window = LatencyWindow()
        for ms in range(1, 101):  # 1..100
            window.record(ms / 1000)
        assert window.p50 == pytest.approx(0.050)
        assert window.p95 == pytest.approx(0.095)
        assert window.p99 == pytest.approx(0.099)
        assert window.percentile(100) == pytest.approx(0.100)
        assert window.percentile(0) == pytest.approx(0.001)

    def test_single_sample_dominates_every_percentile(self):
        window = LatencyWindow()
        window.record(0.25)
        for p in (0, 50, 99, 100):
            assert window.percentile(p) == pytest.approx(0.25)

    def test_window_is_bounded_and_slides(self):
        window = LatencyWindow(capacity=4)
        for value in (10.0, 10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0):
            window.record(value)
        # The four old 10s samples have been evicted.
        assert window.percentile(100) == pytest.approx(1.0)
        assert window.count == 8  # lifetime count keeps the full history

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            LatencyWindow(capacity=0)
        window = LatencyWindow()
        window.record(0.1)
        with pytest.raises(ValueError):
            window.percentile(101)


class TestTelemetry:
    def test_snapshot_shape(self):
        telemetry = Telemetry()
        telemetry.requests = 3
        telemetry.wme_changes = 10
        telemetry.firings = 4
        telemetry.latency.record(0.01)
        snapshot = telemetry.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["wme_changes"] == 10
        assert snapshot["latency"]["samples"] == 1
        assert snapshot["uptime_seconds"] >= 0.0
        assert snapshot["wme_changes_per_second"] > 0.0

    def test_absorb_folds_counters(self):
        total, part = Telemetry(), Telemetry()
        part.requests = 2
        part.errors = 1
        part.rejected = 4
        part.wme_changes = 7
        part.firings = 3
        total.absorb(part)
        total.absorb(part)
        assert total.requests == 4
        assert total.errors == 2
        assert total.rejected == 8
        assert total.wme_changes == 14
        assert total.firings == 6
