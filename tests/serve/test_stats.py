"""Telemetry: latency percentiles and counter rollups."""

import pytest

from repro.serve.stats import LatencyWindow, Telemetry


class TestLatencyWindow:
    def test_empty_window_reports_zero(self):
        window = LatencyWindow()
        assert window.p50 == 0.0
        assert window.p99 == 0.0
        assert window.count == 0

    def test_percentiles_on_known_data(self):
        window = LatencyWindow()
        for ms in range(1, 101):  # 1..100
            window.record(ms / 1000)
        assert window.p50 == pytest.approx(0.050)
        assert window.p95 == pytest.approx(0.095)
        assert window.p99 == pytest.approx(0.099)
        assert window.percentile(100) == pytest.approx(0.100)
        assert window.percentile(0) == pytest.approx(0.001)

    def test_single_sample_dominates_every_percentile(self):
        window = LatencyWindow()
        window.record(0.25)
        for p in (0, 50, 99, 100):
            assert window.percentile(p) == pytest.approx(0.25)

    def test_window_is_bounded_and_slides(self):
        window = LatencyWindow(capacity=4)
        for value in (10.0, 10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0):
            window.record(value)
        # The four old 10s samples have been evicted.
        assert window.percentile(100) == pytest.approx(1.0)
        assert window.count == 8  # lifetime count keeps the full history

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            LatencyWindow(capacity=0)
        window = LatencyWindow()
        window.record(0.1)
        with pytest.raises(ValueError):
            window.percentile(101)


class TestNearestRankSmallWindows:
    """Regression: ``round()`` half-to-even banker's rounding skewed the
    rank on small windows (p50 of five samples landed below the median).
    Nearest-rank is ``ceil(p/100 * n)``, 1-based."""

    @staticmethod
    def _window(*values):
        window = LatencyWindow()
        for value in values:
            window.record(value)
        return window

    def test_n1(self):
        window = self._window(0.7)
        for p in (0, 1, 50, 99, 100):
            assert window.percentile(p) == pytest.approx(0.7)

    def test_n2(self):
        window = self._window(0.1, 0.2)
        assert window.percentile(50) == pytest.approx(0.1)
        assert window.percentile(51) == pytest.approx(0.2)
        assert window.percentile(100) == pytest.approx(0.2)
        assert window.percentile(0) == pytest.approx(0.1)

    def test_n3(self):
        window = self._window(0.1, 0.2, 0.3)
        assert window.percentile(33) == pytest.approx(0.1)
        assert window.percentile(34) == pytest.approx(0.2)
        assert window.percentile(50) == pytest.approx(0.2)
        assert window.percentile(67) == pytest.approx(0.3)
        assert window.percentile(100) == pytest.approx(0.3)

    def test_n5_median_is_the_middle_sample(self):
        # The banker's-rounding bug: round(0.5 * 5) == 2 -> index 1,
        # reporting 0.2 as the median of five samples.
        window = self._window(0.1, 0.2, 0.3, 0.4, 0.5)
        assert window.percentile(50) == pytest.approx(0.3)
        assert window.percentile(20) == pytest.approx(0.1)
        assert window.percentile(21) == pytest.approx(0.2)
        assert window.percentile(80) == pytest.approx(0.4)
        assert window.percentile(81) == pytest.approx(0.5)

    def test_monotone_in_p(self):
        window = self._window(0.5, 0.1, 0.4, 0.2, 0.3, 0.9, 0.7)
        values = [window.percentile(p) for p in range(0, 101)]
        assert values == sorted(values)


class TestTelemetry:
    def test_snapshot_shape(self):
        telemetry = Telemetry()
        telemetry.requests = 3
        telemetry.wme_changes = 10
        telemetry.firings = 4
        telemetry.latency.record(0.01)
        snapshot = telemetry.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["wme_changes"] == 10
        assert snapshot["latency"]["samples"] == 1
        assert snapshot["uptime_seconds"] >= 0.0
        assert snapshot["wme_changes_per_second"] > 0.0

    def test_absorb_folds_counters(self):
        total, part = Telemetry(), Telemetry()
        part.requests = 2
        part.errors = 1
        part.rejected = 4
        part.wme_changes = 7
        part.firings = 3
        total.absorb(part)
        total.absorb(part)
        assert total.requests == 4
        assert total.errors == 2
        assert total.rejected == 8
        assert total.wme_changes == 14
        assert total.firings == 6

    def test_absorb_leaves_source_untouched(self):
        total, part = Telemetry(), Telemetry()
        part.requests = 2
        part.latency.record(0.5)
        total.absorb(part)
        assert part.requests == 2
        # Latency windows are per-source; the rollup does not merge them.
        assert total.latency.count == 0

    def test_absorbed_counters_round_trip_through_snapshot(self):
        total = Telemetry()
        for requests, firings in ((1, 2), (3, 4), (5, 6)):
            part = Telemetry()
            part.requests = requests
            part.firings = firings
            total.absorb(part)
        snapshot = total.snapshot()
        assert snapshot["requests"] == 9
        assert snapshot["firings"] == 12
        assert snapshot["errors"] == 0
        assert snapshot["latency"]["samples"] == 0
        assert snapshot["latency"]["p50"] == 0.0
