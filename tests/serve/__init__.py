"""Tests for the rule-server subsystem (:mod:`repro.serve`)."""
