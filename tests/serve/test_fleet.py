"""Durable fleet recovery: worker death must lose no session.

Tier-1 tests here use in-process :class:`ServerThread` workers behind a
durable router -- fast, no subprocesses -- and cover the recovery
machinery itself (journal replay onto a survivor, cold-start resume,
client reconnect).  The ``chaos``-marked tests SIGKILL real worker OS
processes under :class:`ProcessRouterFleet` and prove the acceptance
criterion end to end: every placed session recovers bit-identically,
``lost_sessions == 0``.
"""

import asyncio
import os
import threading
import time

import pytest

from repro.ops5 import ProductionSystem
from repro.serve import (
    Disconnected,
    DurabilityStore,
    RuleClient,
    ServerError,
    ServerThread,
)
from repro.serve.router import RouterThread, RuleRouter
from repro.workloads.programs import closure

CHAIN = [["parent", {"from": f"n{i}", "to": f"n{i + 1}"}] for i in range(6)]

#: Long enough that running its transitive closure takes well over any
#: deadline used below -- the slow op the deadline tests queue behind.
LONG_CHAIN = [
    ["parent", {"from": f"n{i}", "to": f"n{i + 1}"}] for i in range(100)
]


def reference_state(batches):
    """Final (firings, sorted wm) of a direct no-fault run."""
    system = ProductionSystem(closure.PROGRAM, matcher="rete")
    firings = []
    for batch in batches:
        system.apply_changes([("assert", cls, attrs) for cls, attrs in batch])
        result = system.run(None)
        firings.extend(
            [cycle.production, list(cycle.timetags)] for cycle in result.cycles
        )
    wm = sorted(
        [wme.cls, sorted(wme.attributes.items()), wme.timetag]
        for wme in system.memory.snapshot()
    )
    return firings, wm


def snapshot_wm(client, sid):
    return sorted(
        [cls, sorted(attrs.items()), tag]
        for cls, attrs, tag in client.query_wm(sid)
    )


class TestDurableThreadWorkers:
    """The recovery machinery over thread workers: no processes, tier 1."""

    def test_worker_death_recovers_sessions_onto_survivor(self, tmp_path):
        """Stop a worker out from under a durable router: every one of
        its sessions is restored onto the survivor from checkpoint +
        journal tail and continues bit-identically."""
        store = DurabilityStore(str(tmp_path))
        workers = [ServerThread(), ServerThread()]
        router = RouterThread(
            worker_addresses=[w.address for w in workers],
            durability=store,
            checkpoint_every=2,
        )
        try:
            with RuleClient(router.address) as client:
                sids = [
                    client.create_session(program=closure.PROGRAM, name=f"d{i}")
                    for i in range(6)
                ]
                for sid in sids:
                    client.assert_wmes(sid, CHAIN[:3], run=True)
                placements = {
                    sid: router.router.placements[sid].worker for sid in sids
                }
                assert set(placements.values()) == {0, 1}

                workers[0].stop()
                doomed = [s for s in sids if placements[s] == 0]

                # The next call to a dead-worker session triggers
                # recovery; the reply is the op's own answer, not an
                # error the client would have to retry.
                firings = {}
                for sid in sids:
                    reply = client.assert_wmes(sid, CHAIN[3:], run=True)
                    firings[sid] = reply["run"]["firings"]

                stats = client.stats()["router"]
                assert stats["lost_sessions"] == []
                assert sorted(stats["recovered_sessions"]) == sorted(doomed)
                assert any(
                    e["type"] == "worker_failed" for e in stats["events"]
                )
                for sid in doomed:
                    assert router.router.placements[sid].worker == 1

                # Bit-identity: the recovered sessions' second-half
                # firings and final wm equal a never-killed run.
                ref_firings, ref_wm = reference_state([CHAIN[:3], CHAIN[3:]])
                ref_second = ref_firings[len(ref_firings) - len(firings[sids[0]]):]
                for sid in sids:
                    assert firings[sid] == ref_second
                    assert snapshot_wm(client, sid) == ref_wm
        finally:
            router.stop()
            workers[1].stop()
            store.close()

    def test_cold_start_resumes_sessions_from_store(self, tmp_path):
        """A brand-new router over an existing journal directory picks
        every session back up -- the whole fleet can be restarted."""
        store = DurabilityStore(str(tmp_path))
        workers = [ServerThread()]
        router = RouterThread(
            worker_addresses=[workers[0].address],
            durability=store,
            checkpoint_every=3,
        )
        with RuleClient(router.address) as client:
            client.create_session(program=closure.PROGRAM, name="cold")
            client.assert_wmes("cold", CHAIN[:3], run=True)
        router.stop()
        workers[0].stop()
        store.close()

        store2 = DurabilityStore(str(tmp_path))
        workers2 = [ServerThread()]
        router2 = RouterThread(
            worker_addresses=[workers2[0].address],
            durability=store2,
        )
        try:
            with RuleClient(router2.address) as client:
                assert client.list_sessions() == ["cold"]
                reply = client.assert_wmes("cold", CHAIN[3:], run=True)
                ref_firings, ref_wm = reference_state([CHAIN[:3], CHAIN[3:]])
                tail = ref_firings[
                    len(ref_firings) - len(reply["run"]["firings"]):
                ]
                assert reply["run"]["firings"] == tail
                assert snapshot_wm(client, "cold") == ref_wm
                # Resumed ids must not collide with newly minted ones.
                fresh = client.create_session(program=closure.PROGRAM)
                assert fresh != "cold"
        finally:
            router2.stop()
            workers2[0].stop()
            store2.close()

    def test_destroyed_session_leaves_no_journal(self, tmp_path):
        store = DurabilityStore(str(tmp_path))
        worker = ServerThread()
        router = RouterThread(
            worker_addresses=[worker.address], durability=store
        )
        try:
            with RuleClient(router.address) as client:
                sid = client.create_session(program=closure.PROGRAM)
                assert store.sessions() == [sid]
                client.destroy_session(sid)
                assert store.sessions() == []
        finally:
            router.stop()
            worker.stop()
            store.close()

    def test_rolling_restart_needs_a_supervisor(self, tmp_path):
        store = DurabilityStore(str(tmp_path))
        worker = ServerThread()
        router = RouterThread(
            worker_addresses=[worker.address], durability=store
        )
        try:
            with RuleClient(router.address) as client:
                with pytest.raises(ServerError, match="durable process fleet"):
                    client.request("rolling_restart")
        finally:
            router.stop()
            worker.stop()
            store.close()


class TestDurableJournalCorrectness:
    """The journal must record exactly what executed (review findings:
    deadline tombstones, destroy-vs-checkpoint serialisation)."""

    def test_unstarted_deadline_op_is_tombstoned_not_replayed(self, tmp_path):
        """A journaled op whose deadline expires while still queued at
        the worker never executes and answers ``error: "deadline"`` --
        so recovery must not replay it, or the restored state would
        diverge from the acknowledged pre-crash history."""
        store = DurabilityStore(str(tmp_path))
        workers = [ServerThread(), ServerThread()]
        router = RouterThread(
            worker_addresses=[w.address for w in workers],
            durability=store,
            checkpoint_every=0,
        )
        try:
            with RuleClient(router.address) as client:
                sid = client.create_session(program=closure.PROGRAM, name="dl")
                # Op 1: a long closure run that blows its deadline while
                # *executing* -- it completes on the worker thread with
                # its reply dropped, so it must stay live in the journal.
                with pytest.raises(ServerError) as slow:
                    client.request(
                        "assert", session=sid, wmes=LONG_CHAIN, run=True,
                        deadline=0.05,
                    )
                assert slow.value.reply["error"] == "deadline"
                assert slow.value.reply["started"] is True
                # Op 2: queued behind the still-running op 1; its
                # deadline expires before it starts, so the worker skips
                # it entirely -- the journal must tombstone it.
                with pytest.raises(ServerError) as doomed:
                    client.request(
                        "assert", session=sid,
                        wmes=[["parent", {"from": "zz", "to": "zz2"}]],
                        deadline=0.05,
                    )
                assert doomed.value.reply["error"] == "deadline"
                assert doomed.value.reply["started"] is False

                # The journal keeps op 1 and skips op 2.
                bundle = store.load(sid)
                assert [r.seq for r in bundle.records] == [1]
                assert bundle.last_seq == 2

                # Acknowledged history: op 1's closure, no "zz" edge.
                wm_before = snapshot_wm(client, sid)
                assert ["parent", [("from", "zz"), ("to", "zz2")]] not in [
                    row[:2] for row in wm_before
                ]

                # Kill the hosting worker; the replay must reproduce
                # exactly the acknowledged state.
                victim = router.router.placements[sid].worker
                workers[victim].stop()
                assert snapshot_wm(client, sid) == wm_before
                assert router.router.lost_sessions == []
                assert router.router.recovered_sessions == [sid]
        finally:
            router.stop()
            for worker in workers:
                worker.stop()
            store.close()

    def test_destroy_waits_for_inflight_checkpoint(self, tmp_path):
        """destroy_session must serialise with a checkpoint in flight:
        a stale checkpoint landing after the drop would resurrect the
        old incarnation (or poison a recreated name) on recovery."""
        worker = ServerThread()

        async def scenario():
            store = DurabilityStore(str(tmp_path))
            try:
                router = RuleRouter(
                    [worker.address], durability=store, checkpoint_every=0
                )
                created = await router.dispatch(
                    {
                        "op": "create_session",
                        "program": closure.PROGRAM,
                        "name": "c",
                    }
                )
                assert created["ok"]
                applied = await router.dispatch(
                    {"op": "assert", "session": "c", "wmes": CHAIN[:2]}
                )
                assert applied["ok"]

                # Gate the checkpoint's export call so it holds the
                # placement lock while we race a destroy against it.
                link = router.workers[0]
                release = asyncio.Event()
                original_call = link.call

                async def gated_call(request, timeout=60.0):
                    if request.get("op") == "export":
                        await release.wait()
                    return await original_call(request, timeout)

                link.call = gated_call
                router._checkpointing.add("c")
                checkpoint = asyncio.create_task(
                    router._checkpoint_session("c")
                )
                await asyncio.sleep(0.05)  # checkpoint now owns the lock
                destroy = asyncio.create_task(
                    router.dispatch({"op": "destroy_session", "session": "c"})
                )
                await asyncio.sleep(0.05)
                assert not destroy.done()  # serialised behind the export

                release.set()
                await checkpoint
                reply = await destroy
                assert reply["ok"]
                # The drop is final: nothing resurrects the session.
                assert store.sessions() == []
                assert not os.path.exists(store._ckpt_path("c"))
                assert "c" not in router.placements
            finally:
                store.close()

        try:
            asyncio.run(scenario())
        finally:
            worker.stop()


class TestDurableHeartbeat:
    """A ping timeout is a suspicion, not a verdict (review finding):
    without a supervisor nothing fences the suspect, so durable
    recovery must wait for the consecutive-failure threshold and then
    clean up whatever copies the not-quite-dead worker still holds."""

    def _router(self, tmp_path, workers, **kwargs):
        store = DurabilityStore(str(tmp_path))
        router = RouterThread(
            worker_addresses=[w.address for w in workers],
            durability=store,
            **kwargs,
        )
        return store, router

    def _sessions_on_worker(self, client, router, index, count=6):
        sids = [
            client.create_session(program=closure.PROGRAM, name=f"g{i}")
            for i in range(count)
        ]
        placements = {
            sid: router.router.placements[sid].worker for sid in sids
        }
        doomed = [sid for sid in sids if placements[sid] == index]
        assert doomed, "placement hash spread must cover both workers"
        return sids, doomed

    def test_ping_failures_below_threshold_do_not_recover(self, tmp_path):
        workers = [ServerThread(), ServerThread()]
        store, router = self._router(
            tmp_path,
            workers,
            heartbeat_interval=0.05,
            failure_threshold=10_000,
        )
        try:
            with RuleClient(router.address) as client:
                sids, doomed = self._sessions_on_worker(client, router, 0)
                workers[0].stop()
                time.sleep(0.6)  # ~12 heartbeat rounds of failed pings
                # Suspicion accrued, but below the threshold nothing
                # was recovered and the worker was not written off.
                assert router.router.workers[0].consecutive_failures >= 1
                assert router.router.recovered_sessions == []
                assert all(
                    event["type"] != "worker_failed"
                    for event in router.router.events
                )
                # A real op's transport failure is a certain signal:
                # the call-driven path still recovers immediately.
                reply = client.assert_wmes(doomed[0], CHAIN[:3], run=True)
                assert reply["ok"]
                assert doomed[0] in router.router.recovered_sessions
        finally:
            router.stop()
            workers[1].stop()
            store.close()

    def test_heartbeat_recovers_after_threshold_without_supervisor(
        self, tmp_path
    ):
        workers = [ServerThread(), ServerThread()]
        store, router = self._router(
            tmp_path,
            workers,
            heartbeat_interval=0.05,
            failure_threshold=2,
        )
        try:
            with RuleClient(router.address) as client:
                sids, doomed = self._sessions_on_worker(client, router, 0)
                workers[0].stop()
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    if sorted(router.router.recovered_sessions) == sorted(
                        doomed
                    ):
                        break
                    time.sleep(0.05)
                assert sorted(router.router.recovered_sessions) == sorted(
                    doomed
                )
                assert router.router.lost_sessions == []
                for sid in doomed:
                    assert router.router.placements[sid].worker == 1
        finally:
            router.stop()
            workers[1].stop()
            store.close()

    def test_false_positive_recovery_destroys_stale_copies(self, tmp_path):
        """If recovery fires while the 'dead' worker is actually alive
        (no supervisor, so nothing fenced it), the old session copies
        must be destroyed -- two live copies of one session would fork
        history and leak worker-local quota."""
        workers = [ServerThread(), ServerThread()]
        store, router = self._router(tmp_path, workers)
        try:
            with RuleClient(router.address) as client:
                sids, doomed = self._sessions_on_worker(client, router, 0)
                for sid in doomed:
                    client.assert_wmes(sid, CHAIN[:3], run=True)
                link = router.router.workers[0]
                future = asyncio.run_coroutine_threadsafe(
                    router.router._recover_worker(
                        link, link.generation, "test: false positive"
                    ),
                    router._loop,
                )
                result = future.result(timeout=30)
                assert sorted(result["replies"]) == sorted(doomed)
                assert result["lost"] == set()
                for sid in doomed:
                    assert router.router.placements[sid].worker == 1
                # The still-alive worker 0 holds no stale copies.
                with RuleClient(workers[0].address) as direct:
                    assert direct.list_sessions() == []
                with RuleClient(workers[1].address) as direct:
                    assert set(direct.list_sessions()) >= set(doomed)
                # And the restored copies keep serving bit-identically.
                _, ref_wm = reference_state([CHAIN[:3], CHAIN[3:]])
                for sid in doomed:
                    client.assert_wmes(sid, CHAIN[3:], run=True)
                    assert snapshot_wm(client, sid) == ref_wm
        finally:
            router.stop()
            for worker in workers:
                worker.stop()
            store.close()


class TestClientReconnect:
    """RuleClient.call survives the peer going away (satellite: the
    transparent-reconnect contract)."""

    def test_call_reconnects_after_server_restart(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        first = ServerThread(unix_path=path)
        client = RuleClient(path)
        try:
            assert client.call("ping", payload="a")["pong"] == "a"
            first.stop()
            second = ServerThread(unix_path=path)
            try:
                reply = client.call("ping", payload="b", max_total_wait=10.0)
                assert reply["pong"] == "b"
                assert client.reconnects >= 1
            finally:
                second.stop()
        finally:
            client.close()

    def test_call_raises_when_peer_stays_dead(self, tmp_path):
        """EOF then a gone socket: the budgets bound the retry loop and
        the transport failure surfaces instead of hanging."""
        import os
        import socket

        path = str(tmp_path / "serve.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)
        client = RuleClient(path)
        conn, _ = listener.accept()
        conn.close()  # the peer goes away mid-conversation ...
        listener.close()
        os.unlink(path)  # ... and never comes back
        try:
            with pytest.raises((Disconnected, OSError)):
                client.call("ping", retries=3, max_total_wait=0.5)
            assert client.reconnects == 0  # every reconnect attempt failed
        finally:
            client.close()


@pytest.mark.chaos
class TestProcessFleetChaos:
    """SIGKILL real worker OS processes; the acceptance criterion."""

    def _fleet(self, **kwargs):
        from repro.serve import ProcessRouterFleet

        kwargs.setdefault("workers", 2)
        kwargs.setdefault("restart_backoff", 0.05)
        return ProcessRouterFleet(**kwargs)

    def test_sigkill_recovers_every_session_bit_identical(self):
        with self._fleet(checkpoint_every=2) as fleet:
            with RuleClient(fleet.address) as client:
                sids = [
                    client.create_session(
                        program=closure.PROGRAM,
                        name=f"k{i}",
                        tenant=f"t{i % 2}",
                    )
                    for i in range(6)
                ]
                for sid in sids:
                    client.assert_wmes(sid, CHAIN[:3], run=True)

                stats = client.stats()
                loads = {}
                for row in stats["sessions"].values():
                    loads[row["worker"]] = loads.get(row["worker"], 0) + 1
                victim = max(loads, key=lambda w: (loads[w], -w))
                old_pid = fleet.worker_pid(victim)
                fleet.kill_worker(victim)

                firings = {}
                for sid in sids:
                    reply = client.assert_wmes(sid, CHAIN[3:], run=True)
                    firings[sid] = reply["run"]["firings"]

                after = client.stats()["router"]
                assert after["lost_sessions"] == []
                assert len(after["recovered_sessions"]) == loads[victim]
                assert after["fleet"]["pids"][victim] != old_pid
                assert after["fleet"]["restarts"][victim] == 1

                ref_firings, ref_wm = reference_state([CHAIN[:3], CHAIN[3:]])
                tail = ref_firings[
                    len(ref_firings) - len(firings[sids[0]]):
                ]
                for sid in sids:
                    assert firings[sid] == tail
                    assert snapshot_wm(client, sid) == ref_wm

    def test_heartbeat_recovers_an_idle_fleet(self):
        """No client traffic after the kill: the heartbeat alone must
        notice the dead process and bring the sessions back."""
        with self._fleet(checkpoint_every=2, heartbeat_interval=0.2) as fleet:
            with RuleClient(fleet.address) as client:
                sid = client.create_session(program=closure.PROGRAM, name="hb")
                client.assert_wmes(sid, CHAIN[:3], run=True)
                victim = client.stats()["sessions"][sid]["worker"]
                fleet.kill_worker(victim)

                # Poll the router object directly: a client call would
                # itself trigger call-driven recovery, and this test is
                # about the heartbeat noticing on its own.
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    if fleet.router.recovered_sessions:
                        break
                    time.sleep(0.1)
                assert fleet.router.recovered_sessions == [sid]
                reply = client.assert_wmes(sid, CHAIN[3:], run=True)
                _, ref_wm = reference_state([CHAIN[:3], CHAIN[3:]])
                assert reply["ok"]
                assert snapshot_wm(client, sid) == ref_wm

    def test_rolling_restart_replaces_processes_without_loss(self):
        with self._fleet(checkpoint_every=4) as fleet:
            with RuleClient(fleet.address) as client:
                sids = [
                    client.create_session(program=closure.PROGRAM, name=f"r{i}")
                    for i in range(3)
                ]
                for sid in sids:
                    client.assert_wmes(sid, CHAIN[:3], run=True)
                before_pids = list(client.stats()["router"]["fleet"]["pids"])

                reply = client.request("rolling_restart")
                assert reply["ok"]

                after = client.stats()["router"]
                assert after["fleet"]["pids"] != before_pids
                # A graceful roll is not a crash: the books show neither
                # losses nor crash-recoveries, and no restart budget was
                # spent.
                assert after["lost_sessions"] == []
                assert after["recovered_sessions"] == []
                assert after["fleet"]["restarts"] == [0, 0]

                _, ref_wm = reference_state([CHAIN[:3], CHAIN[3:]])
                for sid in sids:
                    client.assert_wmes(sid, CHAIN[3:], run=True)
                    assert snapshot_wm(client, sid) == ref_wm

    def test_snapshot_is_not_blocked_by_respawn_backoff(self):
        """snapshot() (behind the router's stats op) must stay
        responsive while a respawn sleeps out its backoff + spawn --
        the fleet lock is not held across either."""
        from repro.serve.fleet import ProcessFleet

        with ProcessFleet(
            workers=1, restart_backoff=1.5, restart_backoff_max=1.5
        ) as fleet:
            fleet.kill(0)
            result = {}
            spinner = threading.Thread(
                target=lambda: result.update(address=fleet.respawn(0))
            )
            spinner.start()
            time.sleep(0.3)  # respawn is now inside its 1.5s backoff
            started = time.monotonic()
            snap = fleet.snapshot()
            assert time.monotonic() - started < 0.5
            assert snap["restarts"] == [1]
            spinner.join(timeout=60)
            assert result["address"] is not None
            assert fleet.alive(0)

    def test_fleet_chaos_harness_verdict(self):
        from repro.faults import fleet_chaos

        report = fleet_chaos(
            11, workers=2, sessions=3, rounds=4, kills=1, checkpoint_every=2
        )
        assert report.ok
        assert len(report.kills) == 1
        assert report.lost_sessions == []
        snapshot = report.snapshot()
        assert snapshot["schema"] == "repro.fleet-chaos/1"
        assert snapshot["identical"] is True
