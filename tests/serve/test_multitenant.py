"""Multi-tenant serve semantics: shared kernels, quotas, migration.

Covers the tentpole contracts at the session layer:

* N sessions of one ruleset share a single compiled kernel -- the N-th
  create is all cache hits (no codegen, no module exec) and never grows
  the process-wide symbol intern table;
* ``describe()``/``stats()`` snapshots taken concurrently with working-
  memory mutation are consistent and side-effect-free;
* tenant quotas gate session admission;
* export/import continues a session bit-identically (the migration
  path the router builds on).
"""

import asyncio
import threading

import pytest

from repro.kernel import cache_stats, clear_shared_kernels, shared_kernel_stats
from repro.kernel.cache import clear_cache
from repro.ops5.symbols import SYMBOLS
from repro.serve.session import (
    QuotaExceeded,
    Session,
    SessionManager,
    clear_program_cache,
    program_cache_stats,
)
from repro.workloads.programs import closure

CLOSURE = closure.PROGRAM

EDGES = [["parent", {"from": f"n{i}", "to": f"n{i + 1}"}] for i in range(8)]


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_cache()
    clear_shared_kernels()
    clear_program_cache()
    yield
    clear_cache()
    clear_shared_kernels()
    clear_program_cache()


def _drive(session, edges=EDGES):
    session.perform({"op": "assert", "wmes": edges})
    return session.perform({"op": "run"})


class TestSharedKernelAcrossSessions:
    def test_nth_session_is_all_cache_hits(self):
        """The satellite-3 audit, pinned: concurrent sessions sharing a
        ruleset hit the kernel cache -- exactly one codegen miss and one
        module exec no matter how many sessions attach."""
        sessions = [
            Session(f"s{i}", program=CLOSURE, matcher="compiled")
            for i in range(6)
        ]
        try:
            replies = [_drive(s) for s in sessions]
        finally:
            for s in sessions:
                s.close_resources()
        assert cache_stats()["misses"] == 1
        assert cache_stats()["size"] == 1
        assert shared_kernel_stats()["execs"] == 1
        assert shared_kernel_stats()["attaches"] >= 6
        # The program text parsed once; later sessions reused it.
        assert program_cache_stats() == {"hits": 5, "misses": 1, "size": 1}
        # All sessions computed the same result.
        assert len({r["fired"] for r in replies}) == 1

    def test_sessions_never_grow_the_intern_table_per_session(self):
        seed = Session("seed", program=CLOSURE, matcher="compiled")
        try:
            _drive(seed)
            before = len(SYMBOLS)
            for i in range(4):
                session = Session(f"s{i}", program=CLOSURE, matcher="compiled")
                try:
                    _drive(session)
                finally:
                    session.close_resources()
            assert len(SYMBOLS) == before
        finally:
            seed.close_resources()


class TestConcurrentSnapshots:
    @pytest.mark.parametrize("matcher", ["rete", "compiled"])
    def test_describe_during_mutation_is_consistent_and_side_effect_free(
        self, matcher
    ):
        """The peek_stats contract, extended to the whole stats row:
        snapshotting from another thread while the worker mutates WM
        must neither crash, nor corrupt the snapshot, nor perturb the
        run (same firings as an undisturbed session)."""
        undisturbed = Session("ref", program=CLOSURE, matcher=matcher)
        try:
            reference = _drive(undisturbed)
        finally:
            undisturbed.close_resources()

        session = Session("t", program=CLOSURE, matcher=matcher)
        stop = threading.Event()
        rows = []
        errors = []

        def snapshot_loop():
            while not stop.is_set():
                try:
                    rows.append(session.describe())
                except Exception as error:  # pragma: no cover - the bug
                    errors.append(error)

        thread = threading.Thread(target=snapshot_loop)
        thread.start()
        try:
            for edge in EDGES:
                session.perform({"op": "assert", "wmes": [edge]})
            reply = session.perform({"op": "run"})
            rows.append(session.describe())
        finally:
            stop.set()
            thread.join()
            session.close_resources()

        assert not errors
        assert (reply["fired"], reply["firings"]) == (
            reference["fired"],
            reference["firings"],
        )
        # 8 edges close to 36 ancestor pairs: 44 elements at quiescence.
        final_wm = 44
        for row in rows:
            # Each snapshot is internally consistent: WM is bounded by
            # the run's final size and no counter ever reads negative.
            assert 0 <= row["working_memory"] <= final_wm
            assert row["id"] == "t" and row["tenant"] == "default"

    def test_fault_notices_never_duplicate_under_concurrent_sync(self):
        """Regression: the seen-counter/deque pair raced when a stats
        query (worker thread) and the server stats op (event loop)
        folded matcher events at the same time, duplicating notices."""

        class _Event:
            action = "respawned"

            def snapshot(self):
                return {"shard": 0}

        session = Session("t", program=CLOSURE)
        try:
            events = [_Event() for _ in range(32)]
            session.system.matcher.fault_events = lambda: events
            barrier = threading.Barrier(2)

            def hammer():
                barrier.wait()
                for _ in range(50):
                    session._sync_fault_notices()

            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(session._fault_notices) == len(events)
        finally:
            session.close_resources()


class TestTenantQuotas:
    def test_quota_gates_admission_and_frees_on_destroy(self):
        manager = SessionManager(default_tenant_quota=2)
        try:
            manager.create(program=CLOSURE, tenant="acme", name="a1")
            manager.create(program=CLOSURE, tenant="acme", name="a2")
            with pytest.raises(QuotaExceeded):
                manager.create(program=CLOSURE, tenant="acme", name="a3")
            # Another tenant has its own budget.
            manager.create(program=CLOSURE, tenant="globex", name="g1")
            asyncio.run(manager.destroy("a1"))
            manager.create(program=CLOSURE, tenant="acme", name="a4")
            tenants = manager.tenant_stats()
            assert tenants["acme"]["sessions"] == 2
            assert tenants["acme"]["quota_rejections"] == 1
            assert tenants["globex"]["sessions"] == 1
        finally:
            asyncio.run(manager.drain_all())

    def test_explicit_quota_overrides_default(self):
        manager = SessionManager(
            tenant_quotas={"vip": 3}, default_tenant_quota=1
        )
        try:
            for i in range(3):
                manager.create(program=CLOSURE, tenant="vip", name=f"v{i}")
            manager.create(program=CLOSURE, tenant="other", name="o0")
            with pytest.raises(QuotaExceeded):
                manager.create(program=CLOSURE, tenant="other", name="o1")
        finally:
            asyncio.run(manager.drain_all())


class TestExportImport:
    def test_export_restore_continues_bit_identically(self):
        reference = Session("ref", program=CLOSURE)
        try:
            full = _drive(reference)
        finally:
            reference.close_resources()

        source = Session("src", program=CLOSURE, tenant="acme")
        try:
            source.perform({"op": "assert", "wmes": EDGES[:4]})
            source.perform({"op": "run"})
            payload = source.perform({"op": "export"})
            source.perform({"op": "assert", "wmes": EDGES[4:]})
            tail = source.perform({"op": "run"})
        finally:
            source.close_resources()

        assert payload["ok"]
        assert payload["config"]["tenant"] == "acme"
        target = Session(
            "dst",
            program=payload["config"]["program"],
            strategy=payload["config"]["strategy"],
            state=payload["state"],
        )
        try:
            target.perform({"op": "assert", "wmes": EDGES[4:]})
            continued = target.perform({"op": "run"})
        finally:
            target.close_resources()

        # The migrated continuation equals the unmigrated one exactly.
        assert continued["firings"] == tail["firings"]
        # And pre+post firings together cover the single-session run.
        assert len(continued["firings"]) < len(full["firings"])
