"""Serve-layer fault behaviour: mid-batch errors, deadlines, backoff,
and the degraded/recovered notices a faulted parallel session surfaces.
"""

import asyncio
import random

import pytest

from repro.faults import CRASH, ERROR, SESSION, SLOW, FaultPlan, FaultSpec
from repro.serve.client import BackpressureError, RuleClient
from repro.serve.session import Session

CLOSURE = """
(p base (parent ^from <x> ^to <y>) - (anc ^from <x> ^to <y>)
   --> (make anc ^from <x> ^to <y>))
(p step (anc ^from <x> ^to <y>) (parent ^from <y> ^to <z>)
        - (anc ^from <x> ^to <z>)
   --> (make anc ^from <x> ^to <z>))
"""


def _edges(n):
    return [["parent", {"from": f"n{i}", "to": f"n{i + 1}"}] for i in range(n)]


async def _closing(session, body):
    try:
        return await body(session)
    finally:
        await session.drain_and_close()


# -- engine errors mid-batch --------------------------------------------------


def test_engine_error_mid_batch_leaves_session_usable():
    """A bad change inside a batch answers with a structured error; the
    session keeps serving and its queue returns to zero."""

    async def body(session):
        good = await session.submit({"op": "assert", "wmes": _edges(2)})
        assert good["ok"]
        bad = await session.submit(
            {"op": "apply", "changes": [["assert", "parent", {}], ["retract", 9999]]}
        )
        assert bad["ok"] is False
        assert "9999" in bad["error"]
        after = await session.submit({"op": "assert", "wmes": _edges(3), "run": True})
        assert after["ok"]
        assert session.queue_depth == 0
        assert session.telemetry.errors == 1
        return after

    asyncio.run(_closing(Session("t", program=CLOSURE), body))


def test_injected_session_fault_is_a_structured_error():
    """A session-site ERROR fault exercises the same reply path."""
    plan = FaultPlan([FaultSpec(kind=ERROR, site=SESSION, at=1)])

    async def body(session):
        first = await session.submit({"op": "assert", "wmes": _edges(1)})
        assert first["ok"]
        second = await session.submit({"op": "assert", "wmes": _edges(1)})
        assert second["ok"] is False
        assert "injected session fault" in second["error"]
        third = await session.submit({"op": "query", "what": "wm"})
        assert third["ok"]
        assert session.queue_depth == 0

    asyncio.run(_closing(Session("t", program=CLOSURE, fault_plan=plan), body))


# -- per-request deadlines ----------------------------------------------------


def test_deadline_expiry_answers_immediately_and_is_counted():
    plan = FaultPlan([FaultSpec(kind=SLOW, site=SESSION, at=0, seconds=0.4)])

    async def body(session):
        slow = await session.submit(
            {"op": "query", "what": "wm", "deadline": 0.05}
        )
        assert slow == {
            "ok": False,
            "error": "deadline",
            "deadline": 0.05,
            "started": True,
            "queue_depth": 0,
        }
        assert session.telemetry.deadline_exceeded == 1
        # The session is still healthy afterwards (the slow request
        # finished on the worker thread; only its reply was dropped).
        fine = await session.submit({"op": "assert", "wmes": _edges(1)})
        assert fine["ok"]
        assert session.queue_depth == 0

    asyncio.run(_closing(Session("t", program=CLOSURE, fault_plan=plan), body))


def test_deadline_must_be_positive():
    async def body(session):
        reply = await session.submit({"op": "query", "what": "wm", "deadline": -1})
        assert reply["ok"] is False and "deadline" in reply["error"]

    asyncio.run(_closing(Session("t", program=CLOSURE), body))


def test_expired_queued_request_never_executes():
    """A request whose deadline lapses while still queued is skipped at
    dequeue time -- it must not burn worker time or count as executed."""
    plan = FaultPlan([FaultSpec(kind=SLOW, site=SESSION, at=0, seconds=0.3)])

    async def body(session):
        blocker = asyncio.create_task(
            session.submit({"op": "query", "what": "wm"})
        )
        await asyncio.sleep(0.05)  # let the blocker start executing
        doomed = await session.submit(
            {"op": "assert", "wmes": _edges(1), "deadline": 0.05}
        )
        assert doomed["error"] == "deadline"
        # The reply says so: durable routers tombstone exactly this case.
        assert doomed["started"] is False
        assert (await blocker)["ok"]
        # Only the blocker executed: the doomed request was skipped.
        final = await session.submit({"op": "query", "what": "wm"})
        assert final["wmes"] == []
        assert session.telemetry.requests == 2

    asyncio.run(_closing(Session("t", program=CLOSURE, fault_plan=plan), body))


# -- client backoff -----------------------------------------------------------


def _stub_client(replies):
    """A RuleClient with no socket whose request() pops scripted replies."""
    client = RuleClient.__new__(RuleClient)

    def request(op, **fields):
        outcome = replies.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client.request = request
    return client


def _rejection(retry_after=0.001):
    return BackpressureError(
        {"error": "backpressure", "retry_after": retry_after}
    )


def test_call_retries_until_success():
    client = _stub_client([_rejection(), _rejection(), {"ok": True, "n": 3}])
    seen = []
    reply = client.call("ping", on_retry=seen.append, rng=random.Random(1))
    assert reply == {"ok": True, "n": 3}
    assert len(seen) == 2


def test_call_reports_attempts_and_total_wait_when_exhausted():
    client = _stub_client([_rejection() for _ in range(4)])
    with pytest.raises(BackpressureError) as info:
        client.call("ping", retries=4, rng=random.Random(2))
    assert info.value.reply["attempts"] == 4
    assert info.value.reply["total_wait"] >= 0


def test_call_backoff_grows_and_respects_total_wait_budget(monkeypatch):
    client = _stub_client([_rejection(0.1) for _ in range(64)])
    sleeps = []
    monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)

    class TopDraw:
        """Deterministic 'jitter': always the full interval."""

        def uniform(self, low, high):
            return high

    with pytest.raises(BackpressureError) as info:
        client.call("ping", max_total_wait=1.0, rng=TopDraw())
    # Exponential intervals 0.1, 0.2, 0.4, ... clipped by the budget.
    assert sleeps[:3] == [0.1, 0.2, 0.4]
    assert sum(sleeps) <= 1.0 + 1e-9
    assert info.value.reply["total_wait"] <= 1.0 + 1e-9
    assert info.value.reply["attempts"] < 64


def test_call_jitter_draws_below_the_interval():
    client = _stub_client([_rejection(0.5), {"ok": True}])
    drawn = []

    class Recorder:
        def uniform(self, low, high):
            drawn.append((low, high))
            return 0.0  # no actual sleeping in tests

    assert client.call("ping", rng=Recorder())["ok"]
    assert drawn == [(0.0, 0.5)]


class _TopDraw:
    """Deterministic 'jitter': always the full interval."""

    def uniform(self, low, high):
        return high


def test_call_backoff_interval_is_capped(monkeypatch):
    """Regression: the exponential `retry_after * base**(n-1)` used to
    grow unbounded -- by attempt 20 a 0.1s hint becomes ~14 hours, so
    one rejection streak turned the rest of the wait budget into a
    single giant sleep.  `max_interval` caps every individual sleep."""
    client = _stub_client([_rejection(0.1) for _ in range(64)])
    sleeps = []
    monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)

    with pytest.raises(BackpressureError):
        client.call("ping", max_total_wait=4.0, max_interval=0.4, rng=_TopDraw())
    # Exponential up to the cap, then flat: 0.1, 0.2, 0.4, 0.4, ...
    assert sleeps[:4] == [0.1, 0.2, 0.4, 0.4]
    assert max(sleeps) <= 0.4


def test_call_total_wait_respects_documented_budget_under_cap(monkeypatch):
    """With capped intervals the loop keeps probing instead of sleeping
    the budget away in one draw, and cumulative wait still never
    exceeds `max_total_wait`."""
    client = _stub_client([_rejection(0.5) for _ in range(64)])
    sleeps = []
    monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)

    with pytest.raises(BackpressureError) as info:
        client.call("ping", max_total_wait=2.0, max_interval=0.5, rng=_TopDraw())
    assert sum(sleeps) <= 2.0 + 1e-9
    assert info.value.reply["total_wait"] <= 2.0 + 1e-9
    # The cap means the budget is spent across many probes, not one.
    assert info.value.reply["attempts"] >= 4


def test_call_survives_huge_retry_budgets(monkeypatch):
    """A pathological retries value must not overflow the float pow."""
    client = _stub_client([_rejection(0.001) for _ in range(3000)])
    monkeypatch.setattr("repro.serve.client.time.sleep", lambda _s: None)
    with pytest.raises(BackpressureError) as info:
        client.call("ping", retries=3000, max_total_wait=1e12, rng=_TopDraw())
    assert info.value.reply["attempts"] == 3000


# -- recovery notices ---------------------------------------------------------


def test_faulted_parallel_session_surfaces_recovered_notice():
    """A shard crash under a session becomes a structured ``recovered``
    notice in the session's stats row."""
    plan = FaultPlan([FaultSpec(kind=CRASH, index=0, at=2)])
    session = Session(
        "t", program=CLOSURE, matcher="parallel", workers=1, fault_plan=plan
    )
    try:
        session.perform({"op": "assert", "wmes": _edges(4)})
        session.perform({"op": "run"})
        row = session.describe()
    finally:
        session.close_resources()
    assert row["degraded"] is False
    notices = row["fault_notices"]
    assert len(notices) == 1
    assert notices[0]["type"] == "recovered"
    assert notices[0]["cause"] == "crash"
    assert notices[0]["replay_seconds"] > 0
    assert row["metrics"]["faults"]["crashes"] == 1
