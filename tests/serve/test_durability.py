"""The durability store: journal + checkpoint round trips, and the
untrusted-input paths (truncated lines, corrupt checkpoints, malformed
engine-state blobs) that recovery must survive.

These are pure disk tests -- no sockets, no processes -- so they run in
tier 1; the end-to-end kill/recover paths live in ``test_fleet.py``.
"""

import json
import os

import pytest

from repro.ops5 import ProductionSystem
from repro.serve import DurabilityStore, validate_engine_state
from repro.serve.durability import _encode_sid
from repro.workloads.programs import closure


@pytest.fixture()
def store(tmp_path):
    s = DurabilityStore(str(tmp_path / "journals"))
    yield s
    s.close()


def engine_state() -> dict:
    """A real, valid ``repro.engine-state/1`` blob."""
    system = ProductionSystem(closure.PROGRAM, matcher="rete")
    system.add("parent", **{"from": "a", "to": "b"})
    system.run()
    return system.export_state()


class TestJournalRoundTrip:
    def test_register_append_load(self, store):
        store.register("s1", {"program": "(p ...)"})
        store.append("s1", 1, {"op": "assert", "wme": ["start", {}]})
        store.append("s1", 2, {"op": "run"})
        bundle = store.load("s1")
        assert bundle is not None
        assert bundle.config == {"program": "(p ...)"}
        assert bundle.checkpoint is None and not bundle.used_checkpoint
        assert [(r.seq, r.request["op"]) for r in bundle.records] == [
            (1, "assert"), (2, "run"),
        ]
        assert bundle.last_seq == 2
        assert bundle.notes == []

    def test_unknown_session_loads_none(self, store):
        assert store.load("ghost") is None

    def test_skip_tombstones_filter_records(self, store):
        """A backpressure-rejected op was journaled but never executed:
        its tombstone keeps it out of the replay tail."""
        store.register("s1", {"program": "p"})
        store.append("s1", 1, {"op": "run"})
        store.append("s1", 2, {"op": "assert"})
        store.mark_skipped("s1", 2)
        bundle = store.load("s1")
        assert [r.seq for r in bundle.records] == [1]
        assert bundle.last_seq == 2
        assert store.stats()["skips"] == 1

    def test_register_resets_history(self, store):
        """A name reused after destroy starts a fresh journal."""
        store.register("s1", {"program": "old"})
        store.append("s1", 1, {"op": "run"})
        store.save_checkpoint("s1", 1, {"program": "old"}, engine_state())
        store.register("s1", {"program": "new"})
        bundle = store.load("s1")
        assert bundle.config == {"program": "new"}
        assert bundle.records == [] and bundle.checkpoint is None

    def test_drop_and_sessions_listing(self, store):
        store.register("a", {"program": "p"})
        store.register("b/with slashes", {"program": "p"})
        assert store.sessions() == ["a", "b/with slashes"]
        store.drop("a")
        assert store.sessions() == ["b/with slashes"]
        assert store.load("a") is None


class TestCheckpoints:
    def test_checkpoint_bounds_the_tail(self, store):
        state = engine_state()
        store.register("s1", {"program": "p"})
        for seq in range(1, 6):
            store.append("s1", seq, {"op": "run", "n": seq})
        store.save_checkpoint("s1", 3, {"program": "p"}, state)
        store.append("s1", 6, {"op": "run", "n": 6})
        bundle = store.load("s1")
        assert bundle.used_checkpoint and bundle.checkpoint["seq"] == 3
        assert [r.seq for r in bundle.records] == [4, 5, 6]
        assert bundle.last_seq == 6

    def test_checkpoint_compacts_the_wal_file(self, store):
        store.register("s1", {"program": "p"})
        for seq in range(1, 9):
            store.append("s1", seq, {"op": "run", "n": seq})
        wal = store._wal_path("s1")
        before = os.path.getsize(wal)
        store.save_checkpoint("s1", 8, {"program": "p"}, engine_state())
        assert os.path.getsize(wal) < before
        assert store.load("s1").records == []

    def test_corrupt_checkpoint_falls_back_to_full_replay(self, store):
        store.register("s1", {"program": "p"})
        store.append("s1", 1, {"op": "run"})
        store.save_checkpoint("s1", 1, {"program": "p"}, engine_state())
        store.append("s1", 2, {"op": "run"})
        with open(store._ckpt_path("s1"), "w") as handle:
            handle.write('{"schema": "repro.session-checkpoint/1", "seq": ')
        bundle = store.load("s1")
        assert bundle.checkpoint is None
        assert any("checkpoint unreadable" in note for note in bundle.notes)
        # Compaction already dropped seq 1, so the tail is what remains.
        assert [r.seq for r in bundle.records] == [2]

    def test_invalid_checkpoint_state_is_rejected(self, store):
        store.register("s1", {"program": "p"})
        bad = engine_state()
        bad["wmes"].append(bad["wmes"][0])  # duplicate timetag
        store._write_atomic(
            store._ckpt_path("s1"),
            {
                "schema": "repro.session-checkpoint/1",
                "id": "s1",
                "seq": 1,
                "config": {"program": "p"},
                "state": bad,
            },
        )
        bundle = store.load("s1")
        assert bundle.checkpoint is None
        assert any("checkpoint unusable" in note for note in bundle.notes)

    def test_config_recoverable_from_checkpoint_alone(self, store):
        store.register("s1", {"program": "p"})
        store.save_checkpoint("s1", 1, {"program": "p"}, engine_state())
        os.remove(store._meta_path("s1"))
        bundle = store.load("s1")
        assert bundle.config == {"program": "p"}
        assert any("recovered from checkpoint" in note for note in bundle.notes)


class TestUntrustedJournal:
    def test_truncated_trailing_line_is_dropped(self, store):
        """A crash mid-append leaves a torn last line; everything before
        it still replays."""
        store.register("s1", {"program": "p"})
        store.append("s1", 1, {"op": "run"})
        store.close()
        with open(store._wal_path("s1"), "a") as handle:
            handle.write('{"seq": 2, "request": {"op": "ass')
        bundle = store.load("s1")
        assert [r.seq for r in bundle.records] == [1]
        assert any("truncated trailing" in note for note in bundle.notes)

    def test_corrupt_middle_line_stops_the_replay(self, store):
        store.register("s1", {"program": "p"})
        store.close()
        with open(store._wal_path("s1"), "w") as handle:
            handle.write('{"seq": 1, "request": {"op": "run"}}\n')
            handle.write("not json at all\n")
            handle.write('{"seq": 3, "request": {"op": "run"}}\n')
        bundle = store.load("s1")
        assert [r.seq for r in bundle.records] == [1]
        assert any("corrupt journal line 2" in note for note in bundle.notes)

    def test_bad_seq_stops_the_replay(self, store):
        store.register("s1", {"program": "p"})
        store.close()
        with open(store._wal_path("s1"), "w") as handle:
            handle.write('{"seq": "one", "request": {"op": "run"}}\n')
        bundle = store.load("s1")
        assert bundle.records == []
        assert any("bad seq" in note for note in bundle.notes)


class TestSidEncoding:
    def test_hostile_ids_stay_inside_the_root(self, store):
        for sid in ("../../etc/passwd", "a/b", "x" * 200, "sp ace", "."):
            store.register(sid, {"program": "p"})
            path = store._meta_path(sid)
            assert os.path.dirname(path) == store.root
            assert store.load(sid) is not None
        assert len(store.sessions()) == 5

    def test_encoding_is_injective_for_long_ids(self):
        a, b = "x" * 200 + "a", "x" * 200 + "b"
        assert _encode_sid(a) != _encode_sid(b)


class TestValidateEngineState:
    def test_real_export_passes(self):
        assert validate_engine_state(engine_state()) is None

    @pytest.mark.parametrize(
        "mutate, problem",
        [
            (lambda s: "not a dict", "JSON object"),
            (lambda s: {**s, "schema": "repro.engine-state/9"}, "schema"),
            (lambda s: {**s, "wmes": {"a": 1}}, "wmes must be a list"),
            (lambda s: {**s, "wmes": [[1, "c"]]}, "triple"),
            (lambda s: {**s, "wmes": [[True, "c", {}]]}, "positive integer"),
            (lambda s: {**s, "wmes": [[1, "c", {}], [1, "d", {}]]},
             "duplicate"),
            (lambda s: {**s, "wmes": [[1, "", {}]]}, "non-empty string"),
            (lambda s: {**s, "wmes": [[1, "c", {"a": True}]]}, "neither"),
            (lambda s: {**s, "wmes": [[1, "c", {"a": []}]]}, "neither"),
            (lambda s: {**s, "next_timetag": 0}, "next_timetag"),
            (lambda s: {**s, "next_timetag": True}, "next_timetag"),
            (lambda s: {**s, "fired": [["p"]]}, "pair"),
            (lambda s: {**s, "fired": [["p", [1, False]]]}, "integers"),
            (lambda s: {**s, "cycle": -1}, "cycle"),
            (lambda s: {**s, "total_firings": True}, "total_firings"),
            (lambda s: {**s, "halted": 1}, "halted"),
            (lambda s: {**s, "halt_reason": None}, "halt_reason"),
            (lambda s: {**s, "output": "text"}, "output"),
            (lambda s: {**s, "output": [1]}, "output"),
        ],
    )
    def test_each_malformation_is_named(self, mutate, problem):
        state = json.loads(json.dumps(engine_state()))
        verdict = validate_engine_state(mutate(state))
        assert verdict is not None and problem in verdict


class TestGroupCommit:
    """The WAL's group-commit window: one fsync barrier absorbs many
    appends, strict recovery semantics are unchanged."""

    def test_window_batches_fsyncs(self, tmp_path):
        import time

        store = DurabilityStore(
            str(tmp_path / "grouped"), fsync=True, commit_window=0.05
        )
        try:
            store.register("s1", {"program": "p"})
            for seq in range(1, 51):
                store.append("s1", seq, {"op": "run"})
            # sync() clears the dirty set before it bumps the fsync
            # counter, so wait for both: pending drained *and* at least
            # one barrier recorded.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = store.stats()
                if not stats["pending_sync"] and stats["fsyncs"]:
                    break
                time.sleep(0.01)
        finally:
            store.close()
        assert stats["appends"] == 50
        assert stats["pending_sync"] == 0
        # The whole burst landed inside a few windows, not 50 barriers.
        assert 1 <= stats["fsyncs"] < 50
        reopened = DurabilityStore(str(tmp_path / "grouped"))
        try:
            bundle = reopened.load("s1")
            assert bundle is not None and bundle.last_seq == 50
        finally:
            reopened.close()

    def test_strict_policy_fsyncs_every_append(self, tmp_path):
        store = DurabilityStore(str(tmp_path / "strict"), fsync=True)
        try:
            store.register("s1", {"program": "p"})
            for seq in range(1, 6):
                store.append("s1", seq, {"op": "run"})
            stats = store.stats()
        finally:
            store.close()
        assert stats["fsyncs"] >= 5
        assert stats["pending_sync"] == 0

    def test_close_flushes_a_pending_window(self, tmp_path):
        """Shutdown inside an open window must not lose acknowledged
        ops: close() runs the barrier before releasing the handles."""
        store = DurabilityStore(
            str(tmp_path / "pending"), fsync=True, commit_window=30.0
        )
        store.register("s1", {"program": "p"})
        store.append("s1", 1, {"op": "run"})
        store.close()
        assert store.stats()["pending_sync"] == 0
        reopened = DurabilityStore(str(tmp_path / "pending"))
        try:
            bundle = reopened.load("s1")
            assert bundle is not None and bundle.last_seq == 1
        finally:
            reopened.close()

    def test_checkpoint_respects_window_durability(self, tmp_path):
        """sync() is the explicit barrier checkpointing relies on: a
        compacted journal is never less durable than strict mode."""
        store = DurabilityStore(
            str(tmp_path / "ckpt"), fsync=True, commit_window=10.0
        )
        try:
            store.register("s1", {"program": "p"})
            store.append("s1", 1, {"op": "run"})
            assert store.stats()["pending_sync"] == 1
            assert store.sync() == 1
            assert store.stats()["pending_sync"] == 0
        finally:
            store.close()
