"""The length-prefixed JSON wire format, both sync and async sides."""

import asyncio
import socket
import struct

import pytest

from repro.serve.client import (
    DEFAULT_RETRY_AFTER,
    MAX_RETRY_AFTER_HINT,
    BackpressureError,
)
from repro.serve.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_message,
    recv_message,
    send_message,
    write_message,
)


def test_frame_roundtrip():
    message = {"op": "assert", "wmes": [["a", {"v": 1}]], "text": "héllo"}
    frame = encode_frame(message)
    length = struct.unpack(">I", frame[:4])[0]
    assert length == len(frame) - 4
    assert decode_payload(frame[4:]) == message


def test_sync_sockets_carry_many_frames():
    left, right = socket.socketpair()
    with left, right:
        for message in [{"n": i} for i in range(5)]:
            send_message(left, message)
        for i in range(5):
            assert recv_message(right) == {"n": i}


def test_sync_clean_eof_returns_none():
    left, right = socket.socketpair()
    with right:
        left.close()
        assert recv_message(right) is None


def test_sync_truncated_frame_raises():
    left, right = socket.socketpair()
    with right:
        left.sendall(struct.pack(">I", 100) + b"short")
        left.close()
        with pytest.raises(ProtocolError):
            recv_message(right)


def test_oversized_announcement_rejected_without_allocation():
    left, right = socket.socketpair()
    with left, right:
        left.sendall(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(ProtocolError):
            recv_message(right)


def test_encode_refuses_oversized_payload():
    with pytest.raises(ProtocolError):
        encode_frame({"blob": "x" * (MAX_FRAME + 16)})


def test_garbage_payload_raises():
    with pytest.raises(ProtocolError):
        decode_payload(b"\xff\xfe not json")


def test_async_roundtrip_and_eof():
    async def scenario():
        received = []

        async def handler(reader, writer):
            while True:
                message = await read_message(reader)
                if message is None:
                    break
                received.append(message)
                await write_message(writer, {"echo": message})
            writer.close()

        server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
        host, port = server.sockets[0].getsockname()
        reader, writer = await asyncio.open_connection(host, port)
        await write_message(writer, {"n": 1})
        assert await read_message(reader) == {"echo": {"n": 1}}
        writer.close()
        await writer.wait_closed()
        server.close()
        await server.wait_closed()
        return received

    assert asyncio.run(scenario()) == [{"n": 1}]


# -- retry_after hint validation ----------------------------------------------
#
# The server's backpressure reply carries a retry_after hint; the client
# must treat it as untrusted wire input.  Regression for the bug where a
# malformed/negative/NaN hint reached time.sleep verbatim.


def _rejection_with(retry_after):
    reply = {"error": "backpressure"}
    if retry_after is not ...:
        reply["retry_after"] = retry_after
    return BackpressureError(reply)


@pytest.mark.parametrize(
    "raw",
    [..., None, "soon", [], {}, float("nan"), float("inf"), float("-inf"), -1, -0.25],
    ids=["absent", "null", "string", "list", "dict", "nan", "inf", "neg-inf", "neg-int", "neg-float"],
)
def test_malformed_retry_after_falls_back_to_default(raw):
    assert _rejection_with(raw).retry_after == DEFAULT_RETRY_AFTER


@pytest.mark.parametrize("raw", [1e12, MAX_RETRY_AFTER_HINT + 1])
def test_oversized_retry_after_is_clamped(raw):
    assert _rejection_with(raw).retry_after == MAX_RETRY_AFTER_HINT


@pytest.mark.parametrize("raw,expected", [(0, 0.0), (0.5, 0.5), (2, 2.0), ("0.25", 0.25)])
def test_sane_retry_after_passes_through(raw, expected):
    # Numeric strings are accepted: float() parses them, and a JSON
    # encoder that stringifies numbers should not break clients.
    assert _rejection_with(raw).retry_after == expected


def test_async_mid_header_close_raises():
    async def scenario():
        async def handler(reader, writer):
            writer.write(b"\x00\x00")  # half a header
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
        host, port = server.sockets[0].getsockname()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            with pytest.raises(ProtocolError):
                await read_message(reader)
        finally:
            writer.close()
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())
