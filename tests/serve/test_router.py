"""The front-door router: placement, forwarding, quotas, migration,
demotion -- all over real sockets via :class:`RouterFleet`.

The router speaks the same protocol as a single server, so every test
drives it with the ordinary :class:`RuleClient`.
"""

import pytest

from repro.ops5 import ProductionSystem
from repro.serve import RouterFleet, RuleClient, ServerError, ServerThread
from repro.serve.router import RouterThread
from repro.workloads.programs import closure

CHAIN = [["parent", {"from": f"n{i}", "to": f"n{i + 1}"}] for i in range(6)]


@pytest.fixture(scope="module")
def fleet():
    """One shared two-worker fleet for the read-mostly tests."""
    with RouterFleet(workers=2) as harness:
        yield harness


def _expected_run():
    direct = ProductionSystem(closure.PROGRAM, matcher="rete")
    direct.apply_changes([("assert", cls, attrs) for cls, attrs in CHAIN])
    return direct.run()


class TestFrontDoor:
    def test_ping_and_empty_list(self, fleet):
        with RuleClient(fleet.address) as client:
            assert client.ping(payload="x")["pong"] == "x"
            assert client.list_sessions() == []

    def test_sessions_spread_and_round_trip(self, fleet):
        """Many sessions land across workers; each one works end to end."""
        expected = closure.expected_chain_facts(6)
        with RuleClient(fleet.address) as client:
            sids = [client.create_session(program=closure.PROGRAM) for _ in range(8)]
            try:
                assert len(set(sids)) == 8
                for sid in sids:
                    reply = client.assert_wmes(sid, CHAIN, run=True)
                    assert reply["run"]["fired"] == expected
                assert sorted(client.list_sessions()) == sorted(sids)
                workers = {
                    row["worker"]
                    for row in client.stats()["sessions"].values()
                }
                assert len(workers) == 2, "placement never used both workers"
            finally:
                for sid in sids:
                    client.destroy_session(sid)
            assert client.list_sessions() == []

    def test_results_bit_identical_through_router(self, fleet):
        """The acceptance criterion: firings through the router equal a
        direct single-process run, cycle for cycle."""
        expected = _expected_run()
        with RuleClient(fleet.address) as client:
            sid = client.create_session(program=closure.PROGRAM)
            try:
                client.assert_wmes(sid, CHAIN[:2])
                client.assert_wmes(sid, CHAIN[2:])
                reply = client.run(sid)
                assert [
                    (name, tuple(tags)) for name, tags in reply["firings"]
                ] == [(c.production, c.timetags) for c in expected.cycles]
            finally:
                client.destroy_session(sid)

    def test_unknown_session_and_duplicate_name_rejected(self, fleet):
        with RuleClient(fleet.address) as client:
            with pytest.raises(ServerError, match="no session"):
                client.run("ghost")
            sid = client.create_session(program=closure.PROGRAM, name="dup")
            try:
                with pytest.raises(ServerError, match="already exists"):
                    client.create_session(program=closure.PROGRAM, name="dup")
            finally:
                client.destroy_session(sid)

    def test_stats_aggregates_workers_and_totals(self, fleet):
        with RuleClient(fleet.address) as client:
            sid = client.create_session(program=closure.PROGRAM)
            try:
                client.assert_wmes(sid, CHAIN, run=True)
                stats = client.stats()
                assert len(stats["router"]["workers"]) == 2
                assert all(w["healthy"] for w in stats["router"]["workers"])
                assert sid in stats["sessions"]
                # Totals are summed across workers -- the load generator
                # derives throughput from deltas of these.
                assert stats["totals"]["firings"] >= closure.expected_chain_facts(6)
                assert stats["totals"]["sessions"] == 1
            finally:
                client.destroy_session(sid)


class TestFleetQuotas:
    def test_fleet_wide_quota_spans_workers(self):
        """The quota is global: two workers cannot double a tenant's
        budget, because admission happens at the router."""
        with RouterFleet(workers=2, default_tenant_quota=2) as fleet:
            with RuleClient(fleet.address) as client:
                a = client.create_session(program=closure.PROGRAM, tenant="acme")
                b = client.create_session(program=closure.PROGRAM, tenant="acme")
                with pytest.raises(ServerError) as excinfo:
                    client.create_session(program=closure.PROGRAM, tenant="acme")
                assert excinfo.value.reply["error"] == "quota"
                # Another tenant still has its own budget.
                g = client.create_session(program=closure.PROGRAM, tenant="globex")
                # Freeing a session readmits the tenant.
                client.destroy_session(a)
                c = client.create_session(program=closure.PROGRAM, tenant="acme")
                stats = client.stats()
                assert stats["tenants"]["acme"]["sessions"] == 2
                assert stats["tenants"]["acme"]["quota_rejections"] == 1
                assert stats["tenants"]["globex"]["sessions"] == 1
                for sid in (b, g, c):
                    client.destroy_session(sid)


class TestMigration:
    def test_migrate_session_continues_bit_identically(self):
        """Mid-stream migration: half the input on worker A, migrate,
        the rest on worker B -- firings equal an unmigrated session
        driven with the identical batch pattern."""
        reference = ProductionSystem(closure.PROGRAM, matcher="rete")
        reference.apply_changes(
            [("assert", cls, attrs) for cls, attrs in CHAIN[:3]]
        )
        ref_first = reference.run()
        reference.apply_changes(
            [("assert", cls, attrs) for cls, attrs in CHAIN[3:]]
        )
        ref_second = reference.run()
        expected_firings = [
            (c.production, c.timetags)
            for c in ref_first.cycles + ref_second.cycles
        ]
        with RouterFleet(workers=2) as fleet:
            with RuleClient(fleet.address) as client:
                sid = client.create_session(program=closure.PROGRAM)
                client.assert_wmes(sid, CHAIN[:3])
                first = client.run(sid)
                before = fleet.router.placements[sid].worker

                moved = client.request("migrate_session", session=sid)
                assert moved["from"] == before
                assert moved["to"] != before
                assert fleet.router.placements[sid].worker == moved["to"]

                client.assert_wmes(sid, CHAIN[3:])
                second = client.run(sid)
                combined = [
                    (name, tuple(tags))
                    for name, tags in first["firings"] + second["firings"]
                ]
                assert combined == expected_firings
                stats = client.stats()
                assert stats["router"]["migrations"] == 1
                assert stats["sessions"][sid]["worker"] == moved["to"]
                client.destroy_session(sid)

    def test_migrate_unknown_session_fails_cleanly(self):
        with RouterFleet(workers=2) as fleet:
            with RuleClient(fleet.address) as client:
                with pytest.raises(ServerError, match="no session"):
                    client.request("migrate_session", session="ghost")


class TestDemotion:
    def test_dead_worker_is_demoted_and_sessions_evacuate(self):
        """Kill one worker out from under the router: after the failure
        streak it is demoted, its reachable state is evacuated or
        reported lost, and new sessions land on the survivor."""
        workers = [ServerThread(), ServerThread()]
        router = RouterThread(
            worker_addresses=[w.address for w in workers],
            failure_threshold=2,
        )
        try:
            with RuleClient(router.address) as client:
                # Pin one session per worker by minting names that hash
                # to each side.
                sids = [client.create_session(program=closure.PROGRAM) for _ in range(4)]
                placed = {
                    router.router.placements[sid].worker for sid in sids
                }
                assert placed == {0, 1}

                victim = workers[0]
                victim.stop()

                # Requests to sessions on the dead worker fail until the
                # streak trips the threshold; the router stays up.
                dead = [
                    s for s in sids
                    if router.router.placements.get(s)
                    and router.router.placements[s].worker == 0
                ]
                alive = [s for s in sids if s not in dead]
                for _ in range(3):
                    try:
                        client.request("stats")
                    except ServerError:
                        pass
                    for s in dead:
                        try:
                            client.run(s)
                        except ServerError:
                            pass

                stats = client.stats()
                worker_rows = {w["index"]: w for w in stats["router"]["workers"]}
                assert worker_rows[0]["healthy"] is False
                assert worker_rows[1]["healthy"] is True
                # A dead (not slow) worker cannot export: its sessions
                # are reported lost, never silently dropped.
                assert set(stats["router"]["lost_sessions"]) == set(dead)
                assert any(
                    e["type"] == "demoted" for e in stats["router"]["events"]
                )

                # The healthy remainder still serves, and new sessions
                # avoid the demoted worker.
                for s in alive:
                    client.assert_wmes(s, CHAIN, run=True)
                fresh = client.create_session(program=closure.PROGRAM)
                assert router.router.placements[fresh].worker == 1
                client.destroy_session(fresh)
        finally:
            router.stop()
            for worker in workers[1:]:
                worker.stop()


@pytest.mark.chaos
class TestRouterChaos:
    def test_fleet_survives_seeded_worker_churn(self):
        """Seeded chaos through the router: drive sessions while one
        worker dies mid-run; every surviving session still answers and
        the router's books balance (no session both lost and placed)."""
        import random

        rng = random.Random(7410)
        victim_index = -1
        workers = [ServerThread() for _ in range(3)]
        router = RouterThread(
            worker_addresses=[w.address for w in workers],
            failure_threshold=2,
        )
        try:
            with RuleClient(router.address) as client:
                sids = [
                    client.create_session(program=closure.PROGRAM)
                    for _ in range(9)
                ]
                for sid in sids:
                    client.assert_wmes(sid, CHAIN[:3], run=True)

                victim_index = rng.randrange(3)
                workers[victim_index].stop()

                for sid in list(sids):
                    for _ in range(3):
                        try:
                            client.assert_wmes(sid, CHAIN[3:], run=True)
                            break
                        except ServerError:
                            continue

                stats = client.stats()
                lost = set(stats["router"]["lost_sessions"])
                placed = set(router.router.placements)
                assert not lost & placed
                assert lost | placed == set(sids)
                healthy = [
                    w for w in stats["router"]["workers"] if w["healthy"]
                ]
                assert len(healthy) == 2
                for sid in placed:
                    assert client.session_stats(sid)["firings"] > 0
        finally:
            router.stop()
            for index, worker in enumerate(workers):
                if index != victim_index:
                    worker.stop()


class TestMigrationAccounting:
    def test_kill_during_migrate_keeps_books_balanced(self, tmp_path):
        """Seeded kill while a migrate_session is in flight: the books
        must still balance -- every session counted exactly once across
        placements/recovered/lost, no copy placed on two workers, and
        the migrating flag never wedged."""
        import random

        from repro.serve import DurabilityStore

        rng = random.Random(20260808)
        store = DurabilityStore(str(tmp_path))
        workers = [ServerThread(), ServerThread()]
        router = RouterThread(
            worker_addresses=[w.address for w in workers],
            durability=store,
        )
        try:
            with RuleClient(router.address) as client:
                sids = [
                    client.create_session(program=closure.PROGRAM, name=f"d{i}")
                    for i in range(6)
                ]
                for sid in sids:
                    client.assert_wmes(sid, CHAIN[:3], run=True)
                by_worker = {0: [], 1: []}
                for sid in sids:
                    by_worker[router.router.placements[sid].worker].append(sid)
                assert by_worker[0] and by_worker[1]

                victim = rng.randrange(2)
                moving = rng.choice(by_worker[victim])
                workers[victim].stop()

                # The migrate's export step lands on the dead worker;
                # whatever the reply, the accounting must balance.
                try:
                    client.request("migrate_session", session=moving)
                except ServerError:
                    pass

                placements = router.router.placements
                stats = client.stats()["router"]
                lost = stats["lost_sessions"]
                # Exactly-once: placed xor lost, nothing both or neither.
                assert set(lost) | set(placements) == set(sids)
                assert not set(lost) & set(placements)
                assert len(lost) == len(set(lost))
                # Durable recovery means nothing was actually lost ...
                assert lost == []
                assert sorted(stats["recovered_sessions"]) == sorted(
                    by_worker[victim]
                )
                # ... no placement wedged mid-migration ...
                for sid in sids:
                    assert placements[sid].migrating is False
                    assert placements[sid].worker == 1 - victim
                # ... and no second copy: only the survivor exists, and
                # it holds each session exactly once.
                with RuleClient(workers[1 - victim].address) as direct:
                    hosted = direct.list_sessions()
                assert sorted(hosted) == sorted(sids)

                # The moved session still serves, bit-identically.
                reference = ProductionSystem(closure.PROGRAM, matcher="rete")
                for batch in (CHAIN[:3], CHAIN[3:]):
                    reference.apply_changes(
                        [("assert", cls, attrs) for cls, attrs in batch]
                    )
                    reference.run()
                reply = client.assert_wmes(moving, CHAIN[3:], run=True)
                assert reply["ok"]
                expected = sorted(
                    [w.cls, sorted(w.attributes.items()), w.timetag]
                    for w in reference.memory.snapshot()
                )
                got = sorted(
                    [cls, sorted(attrs.items()), tag]
                    for cls, attrs, tag in client.query_wm(moving)
                )
                assert got == expected
        finally:
            router.stop()
            for worker in workers:
                try:
                    worker.stop()
                except Exception:
                    pass
            store.close()
