"""Session semantics: batched ingestion must be a transparent proxy.

The acceptance bar for the serving layer: for every workload and every
matcher backend, results served through batched ingestion are
bit-identical to a direct :class:`ProductionSystem` run -- same firing
sequence, same final working memory -- regardless of batch size.  These
tests drive the session's synchronous core (the exact code the server's
worker threads execute) against a directly-driven engine.
"""

import pytest

from repro.ops5 import Ops5Error, ProductionSystem
from repro.serve.session import Session, SessionManager, build_matcher
from repro.workloads.programs import closure, hanoi

#: Every registered backend, in its in-process configuration.  The
#: process-pool parallel configuration is covered in test_server.py.
MATCHERS = [
    ("naive", None),
    ("treat", None),
    ("rete", None),
    ("rete-indexed", None),
    ("oflazer", None),
    ("parallel", 0),
]

CHAIN_EDGES = [
    ("parent", {"from": f"n{i}", "to": f"n{i + 1}"}) for i in range(8)
]


def _chunks(items, size):
    return [items[i : i + size] for i in range(0, len(items), size)]


def _direct_fingerprint(program, scripted):
    """Run the scripted operations straight on a ProductionSystem."""
    system = ProductionSystem(program, matcher="rete")
    firings, output = [], []
    for op in scripted:
        if op[0] == "changes":
            system.apply_changes(op[1])
        else:
            result = system.run(op[1])
            firings += [(c.production, c.timetags) for c in result.cycles]
            output = list(result.output)
    wm = [(w.cls, tuple(sorted(w.attributes.items())), w.timetag)
          for w in system.memory.snapshot()]
    return firings, wm, output


def _served_fingerprint(program, scripted, matcher, workers):
    """Run the same operations through a Session's request handlers."""
    session = Session("t", program=program, matcher=matcher, workers=workers)
    try:
        firings, output = [], []
        for op in scripted:
            if op[0] == "changes":
                session.perform({"op": "apply", "changes": op[1]})
            else:
                reply = session.perform({"op": "run", "max_cycles": op[1]})
                firings += [
                    (name, tuple(tags)) for name, tags in reply["firings"]
                ]
                output = reply["output"]
        wm_reply = session.perform({"op": "query", "what": "wm"})
        wm = [(cls, tuple(sorted(attrs.items())), tag)
              for cls, attrs, tag in wm_reply["wmes"]]
        return firings, wm, output
    finally:
        session.close_resources()


def _closure_script(batch_size, runs_between=False):
    """The closure chain ingested in batches of *batch_size*."""
    changes = [("assert", cls, attrs) for cls, attrs in CHAIN_EDGES]
    script = []
    for chunk in _chunks(changes, batch_size):
        script.append(("changes", chunk))
        if runs_between:
            script.append(("run", None))
    if not runs_between:
        script.append(("run", None))
    return script


class TestBatchBoundaryInvariance:
    @pytest.mark.parametrize("matcher,workers", MATCHERS)
    @pytest.mark.parametrize("batch_size", [1, 3, len(CHAIN_EDGES)])
    def test_closure_bit_identical_to_direct_run(
        self, matcher, workers, batch_size
    ):
        script = _closure_script(batch_size)
        expected = _direct_fingerprint(closure.PROGRAM, script)
        served = _served_fingerprint(closure.PROGRAM, script, matcher, workers)
        assert served == expected

    @pytest.mark.parametrize("batch_size", [1, 3, len(CHAIN_EDGES)])
    def test_batch_size_never_changes_the_outcome(self, batch_size):
        """Any chunking of one change stream ends in the same place."""
        reference = _direct_fingerprint(
            closure.PROGRAM, _closure_script(len(CHAIN_EDGES))
        )
        chunked = _direct_fingerprint(closure.PROGRAM, _closure_script(batch_size))
        assert chunked == reference

    @pytest.mark.parametrize("matcher,workers", [("rete", None), ("parallel", 0)])
    def test_run_between_batches_matches_direct_interleaving(
        self, matcher, workers
    ):
        """Ingest/run/ingest/run: served == direct at every quiescence."""
        script = _closure_script(3, runs_between=True)
        expected = _direct_fingerprint(closure.PROGRAM, script)
        served = _served_fingerprint(closure.PROGRAM, script, matcher, workers)
        assert served == expected

    def test_hanoi_with_halt_action_matches(self):
        """A workload that stops via an explicit halt action."""
        changes = [
            ("assert", w.cls, dict(w.attributes)) for w in hanoi.setup(4)
        ]
        script = [("changes", chunk) for chunk in _chunks(changes, 2)]
        script.append(("run", None))
        expected = _direct_fingerprint(hanoi.PROGRAM, script)
        served = _served_fingerprint(hanoi.PROGRAM, script, "rete", None)
        assert served == expected
        assert len(expected[0]) > hanoi.expected_moves(4)


class TestResumeSemantics:
    def test_quiescence_is_not_permanent(self):
        session = Session("t", program=closure.PROGRAM)
        try:
            first = session.perform(
                {
                    "op": "assert",
                    "wmes": [["parent", {"from": "a", "to": "b"}]],
                    "run": True,
                }
            )
            assert first["run"]["fired"] == 1
            second = session.perform(
                {
                    "op": "assert",
                    "wmes": [["parent", {"from": "b", "to": "c"}]],
                    "run": True,
                }
            )
            # New facts fire new rules after an earlier quiescence halt.
            assert second["run"]["fired"] == 2
        finally:
            session.close_resources()

    def test_halt_action_stays_sticky(self):
        program = "(p stop (go) --> (halt))"
        session = Session("t", program=program)
        try:
            reply = session.perform(
                {"op": "assert", "wmes": [["go", {}]], "run": True}
            )
            assert reply["run"]["halt_reason"] == "halt action"
            again = session.perform(
                {"op": "assert", "wmes": [["go", {}]], "run": True}
            )
            assert again["run"]["fired"] == 0
            assert again["run"]["halt_reason"] == "halt action"
        finally:
            session.close_resources()


class TestSessionRequests:
    def test_retract_and_modify_roundtrip(self):
        session = Session("t", program=closure.PROGRAM)
        try:
            tags = session.perform(
                {
                    "op": "assert",
                    "wmes": [
                        ["parent", {"from": "a", "to": "b"}],
                        ["parent", {"from": "b", "to": "c"}],
                    ],
                }
            )["timetags"]
            modified = session.perform(
                {"op": "modify", "changes": [[tags[0], {"to": "z"}]]}
            )
            assert modified["removed"] == [tags[0]]
            retracted = session.perform(
                {"op": "retract", "timetags": [tags[1]]}
            )
            assert retracted["removed"] == [tags[1]]
            wm = session.perform({"op": "query", "what": "wm"})["wmes"]
            assert [[cls, attrs] for cls, attrs, _ in wm] == [
                ["parent", {"from": "a", "to": "z"}]
            ]
        finally:
            session.close_resources()

    def test_conflict_set_query_reports_instantiations(self):
        session = Session("t", program=closure.PROGRAM)
        try:
            session.perform(
                {"op": "assert", "wmes": [["parent", {"from": "a", "to": "b"}]]}
            )
            members = session.perform(
                {"op": "query", "what": "conflict-set"}
            )["instantiations"]
            assert members == [["ancestor-base", [1]]]
        finally:
            session.close_resources()

    def test_unknown_operation_and_query_raise(self):
        session = Session("t", program=closure.PROGRAM)
        try:
            with pytest.raises(Ops5Error):
                session.perform({"op": "explode"})
            with pytest.raises(Ops5Error):
                session.perform({"op": "query", "what": "everything"})
        finally:
            session.close_resources()

    def test_telemetry_counts_changes_and_firings(self):
        session = Session("t", program=closure.PROGRAM)
        try:
            session.perform(
                {
                    "op": "assert",
                    "wmes": [
                        ["parent", {"from": "a", "to": "b"}],
                        ["parent", {"from": "b", "to": "c"}],
                    ],
                    "run": True,
                }
            )
            telemetry = session.telemetry
            assert telemetry.requests == 1
            assert telemetry.firings == 3
            # 2 ingested + 3 make-actions fired by the closure rules.
            assert telemetry.wme_changes == 5
            assert session.describe()["working_memory"] == 5
        finally:
            session.close_resources()


class TestBuildMatcher:
    def test_workers_rejected_for_serial_backends(self):
        with pytest.raises(Ops5Error):
            build_matcher("rete", workers=2)

    def test_parallel_accepts_workers(self):
        matcher = build_matcher("parallel", workers=0)
        try:
            assert matcher.workers == 0
        finally:
            matcher.close()


class TestSessionManager:
    def test_ids_are_unique_and_names_respected(self):
        manager = SessionManager()
        a = manager.create(program="", name="alpha")
        b = manager.create(program="")
        try:
            assert a.id == "alpha"
            assert b.id.startswith("s")
            assert manager.ids() == sorted([a.id, b.id])
            with pytest.raises(Ops5Error):
                manager.create(program="", name="alpha")
            with pytest.raises(Ops5Error):
                manager.get("missing")
        finally:
            a.close_resources()
            b.close_resources()

    def test_stats_rollup_includes_retired_sessions(self):
        import asyncio

        async def scenario():
            manager = SessionManager()
            session = manager.create(program=closure.PROGRAM, name="once")
            session.perform(
                {
                    "op": "assert",
                    "wmes": [["parent", {"from": "a", "to": "b"}]],
                    "run": True,
                }
            )
            await manager.destroy("once")
            return manager.stats()

        stats = asyncio.run(scenario())
        assert stats["sessions"] == {}
        assert stats["totals"]["wme_changes"] == 2
        assert stats["totals"]["firings"] == 1
