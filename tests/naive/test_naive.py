"""The naive reference matcher."""

from repro.naive import NaiveMatcher
from repro.ops5 import parse_production, parse_program
from repro.ops5.wme import WME, WorkingMemory


class _Session:
    def __init__(self, source: str):
        self.matcher = NaiveMatcher()
        for production in parse_program(source).productions:
            self.matcher.add_production(production)
        self.memory = WorkingMemory()

    def add(self, cls, **attrs):
        wme = self.memory.add(WME(cls, attrs))
        self.matcher.add_wme(wme)
        return wme

    def remove(self, wme):
        self.memory.remove(wme)
        self.matcher.remove_wme(wme)


class TestSemantics:
    def test_join(self):
        s = _Session("(p find (goal ^want <c>) (block ^color <c>) --> (halt))")
        goal = s.add("goal", want="red")
        block = s.add("block", color="red")
        assert s.matcher.conflict_set.snapshot() == {
            ("find", (goal.timetag, block.timetag))
        }

    def test_negation_positioned_midway(self):
        s = _Session("(p x (a ^v <n>) - (blocker ^v <n>) (b ^v <n>) --> (halt))")
        s.add("a", v=1)
        s.add("b", v=1)
        assert len(s.matcher.conflict_set) == 1
        s.add("blocker", v=1)
        assert len(s.matcher.conflict_set) == 0

    def test_effort_scales_with_memory(self):
        s = _Session("(p x (a ^v <n>) (b ^v <n>) --> (halt))")
        for v in range(10):
            s.add("a", v=v)
        baseline = s.matcher.stats.changes[-1].comparisons
        for v in range(10):
            s.add("b", v=v)
        grown = s.matcher.stats.changes[-1].comparisons
        # Every change re-matches the whole memory: later changes cost
        # more than earlier ones -- the non-state-saving signature.
        assert grown > baseline

    def test_production_removal(self):
        s = _Session("(p x (a) --> (halt)) (p y (a) --> (halt))")
        s.add("a")
        assert len(s.matcher.conflict_set) == 2
        s.matcher.remove_production("x")
        assert {k[0] for k in s.matcher.conflict_set.snapshot()} == {"y"}

    def test_late_production_addition(self):
        s = _Session("(p x (a) --> (halt))")
        wme = s.add("a")
        s.matcher.add_production(parse_production("(p late (a) --> (halt))"))
        assert ("late", (wme.timetag,)) in s.matcher.conflict_set.snapshot()

    def test_affected_counts_alpha_hits(self):
        s = _Session("(p x (a ^v 1) (b) --> (halt))")
        s.add("a", v=1)
        assert s.matcher.stats.changes[-1].affected_productions == 1
        s.add("a", v=2)
        assert s.matcher.stats.changes[-1].affected_productions == 0
