"""Property-based simulator invariants over random traces."""

from hypothesis import given, settings, strategies as st

from repro.psim import MachineConfig, simulate
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace


@st.composite
def change_traces(draw):
    count = draw(st.integers(min_value=1, max_value=10))
    tasks = []
    for i in range(count):
        deps = tuple(
            sorted(
                draw(
                    st.sets(st.integers(min_value=0, max_value=i - 1), max_size=2)
                )
            )
        ) if i else ()
        tasks.append(
            Task(
                index=i,
                kind=draw(st.sampled_from(["root", "amem", "join", "term"])),
                cost=draw(st.integers(min_value=1, max_value=120)),
                deps=deps,
                node_id=draw(st.integers(min_value=1, max_value=5)),
                productions=("p",),
            )
        )
    return ChangeTrace("add", "c", tasks)


@st.composite
def traces(draw):
    firings = [
        FiringTrace("p", draw(st.lists(change_traces(), min_size=1, max_size=3)))
        for _ in range(draw(st.integers(min_value=1, max_value=4)))
    ]
    return Trace(name="prop", firings=firings)


@st.composite
def machines(draw):
    return MachineConfig(
        processors=draw(st.sampled_from([1, 2, 4, 8, 32])),
        scheduler=draw(st.sampled_from(["hardware", "software"])),
        granularity=draw(st.sampled_from(["node", "intra-node", "production"])),
        wme_level_parallelism=draw(st.booleans()),
        firing_batch=draw(st.sampled_from([1, 2])),
        buses=draw(st.sampled_from([1, 2])),
    )


@settings(max_examples=80, deadline=None)
@given(trace=traces(), config=machines())
def test_simulator_invariants(trace, config):
    trace.validate()
    result = simulate(trace, config)

    # The machine cannot beat physics.
    assert result.makespan > 0
    assert result.peak_concurrency <= config.processors
    assert result.concurrency <= config.processors + 1e-9
    assert result.busy_time <= config.processors * result.makespan + 1e-6

    # All work is accounted for: executed work >= inflated trace work.
    assert result.executed_work >= trace.total_cost * config.work_inflation - 1e-6 or (
        config.granularity == "production"
    )

    # Dependencies put a floor under the makespan.
    assert result.makespan >= result.critical_path - 1e-6 or config.granularity == "production"

    # Counts pass through unchanged.
    assert result.total_changes == trace.total_changes
    assert result.total_firings == len(trace.firings)


@settings(max_examples=40, deadline=None)
@given(trace=traces())
def test_more_processors_help_within_graham_anomaly_bounds(trace):
    """Greedy list scheduling is NOT strictly monotone in processor
    count: with resource (lock) constraints, adding processors can
    reorder dispatches and lengthen the schedule -- Graham's classic
    scheduling anomalies.  The anomalies are bounded, though: each step
    may regress only marginally, and the big machine never loses to the
    serial one."""
    base = MachineConfig(processors=1)
    times = [
        simulate(trace, base.with_processors(n)).makespan for n in (1, 2, 4, 8)
    ]
    for slower, faster in zip(times, times[1:]):
        assert faster <= slower * 1.35 + 1e-6  # bounded anomaly
    assert times[-1] <= times[0] + 1e-6  # 8 procs never lose to 1


@settings(max_examples=40, deadline=None)
@given(trace=traces())
def test_determinism(trace):
    config = MachineConfig(processors=4)
    first = simulate(trace, config)
    second = simulate(trace, config)
    assert first.makespan == second.makespan
    assert first.busy_time == second.busy_time
    assert first.executed_work == second.executed_work
