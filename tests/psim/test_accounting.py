"""Simulator bookkeeping: every instruction is accounted for."""

import pytest

from repro.psim import MachineConfig, simulate
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace


def _trace(task_count=6, cost=50):
    tasks = [
        Task(index=i, kind="join", cost=cost, deps=(), node_id=100 + i,
             productions=("p",))
        for i in range(task_count)
    ]
    return Trace(name="acct", firings=[FiringTrace("p", [ChangeTrace("add", "c", tasks)])])


class TestWorkAccounting:
    def test_executed_work_is_inflated_cost_sum(self):
        config = MachineConfig(
            processors=2, sharing_loss_factor=1.5,
            hardware_dispatch_cost=0.0, sync_cost_per_task=0.0, buses=4,
        )
        result = simulate(_trace(4, cost=100), config)
        assert result.executed_work == pytest.approx(4 * 100 * 1.5)

    def test_dispatch_work_counts_every_task(self):
        config = MachineConfig(processors=2, hardware_dispatch_cost=3.0,
                               sync_cost_per_task=0.0, sharing_loss_factor=1.0)
        result = simulate(_trace(5), config)
        assert result.dispatch_work == pytest.approx(5 * 3.0)

    def test_sync_work_counts_locked_tasks_only(self):
        change = ChangeTrace("add", "c", [
            Task(index=0, kind="root", cost=10, deps=(), node_id=0),  # no lock
            Task(index=1, kind="join", cost=10, deps=(0,), node_id=1,
                 productions=("p",)),
        ])
        trace = Trace(name="t", firings=[FiringTrace("p", [change])])
        config = MachineConfig(processors=2, sync_cost_per_task=20.0,
                               hardware_dispatch_cost=0.0, sharing_loss_factor=1.0)
        result = simulate(trace, config)
        assert result.sync_work == pytest.approx(20.0)

    def test_busy_time_decomposes_exactly_under_hw_scheduler(self):
        # Even the hardware scheduler is one serial channel: three
        # simultaneous dispatch requests queue 2.0 apart.  Busy time =
        # per-task occupancy (dispatch + sync + exec) plus those waits.
        config = MachineConfig(processors=3, hardware_dispatch_cost=2.0,
                               sync_cost_per_task=5.0, sharing_loss_factor=1.0,
                               buses=4)
        result = simulate(_trace(6, cost=40), config)
        occupancy = 6 * (2.0 + 5.0 + 40.0)
        assert result.busy_time == pytest.approx(occupancy + result.queue_wait)
        # The first wave of three dispatches waits 0 + 2 + 4; the second
        # wave's completions are spaced wider than the dispatch cost.
        assert result.queue_wait == pytest.approx(6.0)

    def test_queue_wait_appears_with_software_scheduler(self):
        config = MachineConfig(
            processors=8, scheduler="software", software_dispatch_cost=30.0,
            software_queues=1, sync_cost_per_task=0.0, sharing_loss_factor=1.0,
            buses=4,
        )
        result = simulate(_trace(8, cost=10), config)
        assert result.queue_wait > 0
        # Dispatches serialise: waits sum to 30 * (0+1+...+7) at least
        # for the tasks dispatched behind the first.
        assert result.queue_wait >= 30.0 * sum(range(7)) - 1e-6

    def test_makespan_times_mips_is_seconds(self):
        config = MachineConfig(processors=1, mips=4.0)
        result = simulate(_trace(2, cost=100), config)
        assert result.seconds == pytest.approx(result.makespan / 4e6)
