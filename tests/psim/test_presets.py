"""Preset machine configurations and batch helpers."""

from repro.psim import (
    MachineConfig,
    PAPER_PSM,
    PRODUCTION_PARALLEL_PSM,
    simulate,
    simulate_many,
)
from repro.workloads import PAPER_SYSTEMS, generate_trace


class TestPresets:
    def test_paper_psm_is_the_default_machine(self):
        assert PAPER_PSM == MachineConfig()
        assert PAPER_PSM.processors == 32
        assert PAPER_PSM.scheduler == "hardware"

    def test_production_parallel_preset(self):
        assert PRODUCTION_PARALLEL_PSM.granularity == "production"
        # Same machine otherwise.
        assert PRODUCTION_PARALLEL_PSM.processors == PAPER_PSM.processors

    def test_presets_diverge_in_results(self):
        trace = generate_trace(PAPER_SYSTEMS[0], seed=3, firings=15)
        fine = simulate(trace, PAPER_PSM)
        coarse = simulate(trace, PRODUCTION_PARALLEL_PSM)
        assert fine.true_speedup > coarse.true_speedup


class TestSimulateMany:
    def test_one_result_per_trace_in_order(self):
        traces = [
            generate_trace(profile, seed=3, firings=8)
            for profile in PAPER_SYSTEMS[:3]
        ]
        results = simulate_many(traces, MachineConfig(processors=8))
        assert [r.trace_name for r in results] == [t.name for t in traces]

    def test_matches_individual_simulations(self):
        traces = [generate_trace(PAPER_SYSTEMS[0], seed=3, firings=8)]
        [batched] = simulate_many(traces, MachineConfig(processors=8))
        single = simulate(traces[0], MachineConfig(processors=8))
        assert batched.makespan == single.makespan
