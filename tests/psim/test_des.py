"""The discrete-event primitives."""

import pytest

from repro.psim.des import ChannelPool, EventQueue, Semaphore


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, "late")
        q.push(1.0, "early")
        assert q.pop() == (1.0, "early")
        assert q.pop() == (5.0, "late")

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert [q.pop()[1], q.pop()[1]] == ["first", "second"]

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(3.0, None)
        assert q.peek_time() == 3.0
        assert len(q) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, None)

    def test_drain(self):
        q = EventQueue()
        for t in (3.0, 1.0, 2.0):
            q.push(t, t)
        assert [t for t, _ in q.drain()] == [1.0, 2.0, 3.0]


class TestSemaphore:
    def test_single_way_serialises(self):
        lock = Semaphore(1)
        assert lock.earliest_start(0.0) == 0.0
        lock.acquire(0.0, 10.0)
        assert not lock.available_at(5.0)
        assert lock.earliest_start(5.0) == 10.0
        assert lock.available_at(10.0)

    def test_multi_way(self):
        lock = Semaphore(2)
        lock.acquire(0.0, 10.0)
        assert lock.available_at(0.0)
        lock.acquire(0.0, 8.0)
        assert not lock.available_at(0.0)
        assert lock.earliest_start(0.0) == 8.0

    def test_overacquire_rejected(self):
        lock = Semaphore(1)
        lock.acquire(0.0, 10.0)
        with pytest.raises(RuntimeError):
            lock.acquire(5.0, 6.0)

    def test_ways_validated(self):
        with pytest.raises(ValueError):
            Semaphore(0)


class TestChannelPool:
    def test_single_channel_serialises(self):
        pool = ChannelPool(1)
        assert pool.grant(0.0, 5.0) == (0.0, 5.0)
        assert pool.grant(0.0, 5.0) == (5.0, 10.0)
        assert pool.grant(20.0, 5.0) == (20.0, 25.0)

    def test_multiple_channels_parallel(self):
        pool = ChannelPool(2)
        assert pool.grant(0.0, 5.0) == (0.0, 5.0)
        assert pool.grant(0.0, 5.0) == (0.0, 5.0)
        assert pool.grant(0.0, 5.0) == (5.0, 10.0)

    def test_earliest(self):
        pool = ChannelPool(2)
        pool.grant(0.0, 5.0)
        assert pool.earliest() == 0.0
        pool.grant(0.0, 3.0)
        assert pool.earliest() == 3.0

    def test_channels_validated(self):
        with pytest.raises(ValueError):
            ChannelPool(0)
