"""Trace regranularisation: node / production tasks, sequencing, batching."""

from repro.psim import MachineConfig, build_schedule
from repro.psim.granularity import CONFLICT_SET_LOCK
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace


def _task(index, kind="join", cost=10, deps=(), node=7, productions=("p0",)):
    return Task(index=index, kind=kind, cost=cost, deps=tuple(deps),
                node_id=node, productions=tuple(productions))


def _trace(firings=2, changes=2):
    trace = Trace(name="t", firings=[])
    node = 1
    for f in range(firings):
        firing = FiringTrace(production="p0")
        for c in range(changes):
            change = ChangeTrace("add", "cls")
            change.tasks = [
                _task(0, kind="root", cost=5, node=0, productions=()),
                _task(1, kind="amem", cost=5, deps=(0,), node=node, productions=("p0", "p1")),
                _task(2, kind="join", cost=10, deps=(1,), node=node + 1, productions=("p0",)),
                _task(3, kind="term", cost=4, deps=(2,), node=node + 2, productions=("p0",)),
            ]
            firing.changes.append(change)
        trace.firings.append(firing)
        node += 10
    return trace


class TestNodeGranularity:
    def test_lock_keys_by_node_kind(self):
        schedule = build_schedule(_trace(1, 1), MachineConfig())
        [batch] = schedule.batches
        by_kind = {t.kind: t for t in batch.tasks}
        assert by_kind["root"].lock_key is None
        assert by_kind["amem"].lock_key == 1
        assert by_kind["join"].lock_key == 2
        assert by_kind["term"].lock_key == CONFLICT_SET_LOCK

    def test_intra_change_deps_rewired_to_uids(self):
        schedule = build_schedule(_trace(1, 1), MachineConfig())
        [batch] = schedule.batches
        uids = [t.uid for t in batch.tasks]
        assert batch.tasks[1].deps == (uids[0],)
        assert batch.tasks[3].deps == (uids[2],)

    def test_wme_parallel_changes_independent(self):
        schedule = build_schedule(
            _trace(1, 3), MachineConfig(wme_level_parallelism=True)
        )
        [batch] = schedule.batches
        roots = [t for t in batch.tasks if t.kind == "root"]
        assert all(t.deps == () for t in roots)

    def test_sequential_changes_chain(self):
        schedule = build_schedule(
            _trace(1, 2), MachineConfig(wme_level_parallelism=False)
        )
        [batch] = schedule.batches
        roots = [t for t in batch.tasks if t.kind == "root"]
        assert roots[0].deps == ()
        first_change_uids = {t.uid for t in batch.tasks if t.change == 0}
        assert set(roots[1].deps) == first_change_uids


class TestBatching:
    def test_one_batch_per_firing_by_default(self):
        schedule = build_schedule(_trace(4, 1), MachineConfig())
        assert len(schedule.batches) == 4

    def test_firing_batch_groups(self):
        schedule = build_schedule(_trace(4, 1), MachineConfig(firing_batch=2))
        assert len(schedule.batches) == 2
        firings_in_first = {t.firing for t in schedule.batches[0].tasks}
        assert firings_in_first == {0, 1}

    def test_totals_preserved(self):
        trace = _trace(3, 2)
        schedule = build_schedule(trace, MachineConfig())
        assert schedule.total_changes == trace.total_changes
        assert schedule.total_firings == 3
        assert schedule.total_tasks == trace.total_tasks
        assert schedule.total_cost == trace.total_cost


class TestProductionGranularity:
    def _schedule(self, **kwargs):
        return build_schedule(
            _trace(1, 1), MachineConfig(granularity="production", **kwargs)
        )

    def test_one_task_per_affected_production(self):
        [batch] = self._schedule().batches
        assert len(batch.tasks) == 2  # p0 and p1
        assert all(t.kind == "production" for t in batch.tasks)

    def test_shared_work_replicated(self):
        # amem (cost 5) is shared by p0 and p1; root (5) is unattributed
        # and replicated. p0: 5(amem)+10(join)+4(term)+5(root) = 24;
        # p1: 5(amem)+5(root) = 10.
        [batch] = self._schedule().batches
        costs = sorted(t.cost for t in batch.tasks)
        assert costs == [10.0, 24.0]

    def test_total_exceeds_node_granularity_cost(self):
        # Replication = loss of sharing: production work > trace work.
        trace = _trace(1, 1)
        production = build_schedule(trace, MachineConfig(granularity="production"))
        assert production.total_cost > trace.total_cost

    def test_distinct_lock_keys_per_production(self):
        [batch] = self._schedule().batches
        keys = {t.lock_key for t in batch.tasks}
        assert len(keys) == 2
        assert all(k is not None and k < -1 for k in keys)

    def test_unaffected_change_still_costs_alpha(self):
        trace = Trace(name="t", firings=[FiringTrace("p", [ChangeTrace("add", "c", [
            Task(index=0, kind="root", cost=7, deps=(), node_id=0)
        ])])])
        schedule = build_schedule(trace, MachineConfig(granularity="production"))
        [batch] = schedule.batches
        [task] = batch.tasks
        assert task.cost == 7.0
        assert task.lock_key is None
