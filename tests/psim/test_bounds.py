"""Analytic makespan bounds vs the simulator."""

import pytest
from hypothesis import given, settings

from repro.psim import MachineConfig, schedule_bounds, simulate
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace
from repro.workloads import generate_trace, profile_named

from tests.psim.test_properties import machines, traces


def _chain_trace(costs, node=1):
    tasks = [
        Task(index=i, kind="join", cost=c, deps=(i - 1,) if i else (),
             node_id=node + i, productions=("p",))
        for i, c in enumerate(costs)
    ]
    return Trace(name="chain", firings=[FiringTrace("p", [ChangeTrace("add", "c", tasks)])])


IDEAL = dict(
    hardware_dispatch_cost=0.0,
    sync_cost_per_task=0.0,
    sharing_loss_factor=1.0,
    buses=4,
)


class TestBoundArithmetic:
    def test_chain_lower_bound_is_span(self):
        trace = _chain_trace([10, 20, 30])
        bounds = schedule_bounds(trace, MachineConfig(processors=8, **IDEAL))
        assert bounds.lower == pytest.approx(60.0)
        assert bounds.bound_by_span == 1

    def test_wide_batch_lower_bound_is_work(self):
        tasks = [
            Task(index=i, kind="join", cost=10, deps=(), node_id=100 + i,
                 productions=("p",))
            for i in range(16)
        ]
        trace = Trace(name="wide",
                      firings=[FiringTrace("p", [ChangeTrace("add", "c", tasks)])])
        bounds = schedule_bounds(trace, MachineConfig(processors=4, **IDEAL))
        assert bounds.lower == pytest.approx(160.0 / 4)
        assert bounds.bound_by_work == 1

    def test_hot_lock_lower_bound(self):
        tasks = [
            Task(index=i, kind="join", cost=50, deps=(), node_id=7,
                 productions=("p",))
            for i in range(6)
        ]
        trace = Trace(name="hot",
                      firings=[FiringTrace("p", [ChangeTrace("add", "c", tasks)])])
        bounds = schedule_bounds(
            trace, MachineConfig(processors=16, granularity="node", **IDEAL)
        )
        assert bounds.lower == pytest.approx(300.0)  # one node serialises all
        assert bounds.bound_by_locks == 1

    def test_speedup_ceiling(self):
        trace = _chain_trace([100, 100])
        bounds = schedule_bounds(trace, MachineConfig(processors=8, **IDEAL))
        assert bounds.speedup_ceiling(trace.serial_cost) == pytest.approx(1.0)


class TestEnvelopeHolds:
    @pytest.mark.parametrize("name", ["ilog", "r1-soar"])
    @pytest.mark.parametrize("processors", [1, 4, 32])
    def test_paper_workloads_inside_envelope(self, name, processors):
        trace = generate_trace(profile_named(name), seed=11, firings=20)
        config = MachineConfig(processors=processors)
        result = simulate(trace, config)
        bounds = schedule_bounds(trace, config)
        assert bounds.lower <= result.makespan + 1e-6
        assert result.makespan <= bounds.upper + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(trace=traces(), config=machines())
    def test_random_traces_inside_envelope(self, trace, config):
        result = simulate(trace, config)
        bounds = schedule_bounds(trace, config)
        assert bounds.lower <= result.makespan + 1e-6
        assert result.makespan <= bounds.upper + 1e-6

    def test_lower_bound_reasonably_tight_at_scale(self):
        """On the calibrated workloads the greedy schedule lands within
        ~2x of the analytic optimum -- the simulator is not leaving big
        speedups on the table."""
        trace = generate_trace(profile_named("vt"), seed=11, firings=30)
        config = MachineConfig(processors=32)
        result = simulate(trace, config)
        bounds = schedule_bounds(trace, config)
        assert result.makespan <= 2.0 * bounds.lower
