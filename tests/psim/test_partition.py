"""Static partitioning and hierarchical clusters."""

import pytest

from repro.psim import (
    MachineConfig,
    build_partitioned_schedule,
    lpt_partition,
    partition_imbalance,
    production_costs,
    simulate,
    simulate_partitioned,
)
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace


def _trace():
    """Two changes; three productions with distinct costs."""
    firings = []
    for f in range(2):
        change = ChangeTrace("add", "c", [
            Task(index=0, kind="root", cost=10, deps=(), node_id=0),
            Task(index=1, kind="join", cost=100, deps=(0,), node_id=1,
                 productions=("heavy",)),
            Task(index=2, kind="join", cost=30, deps=(0,), node_id=2,
                 productions=("medium",)),
            Task(index=3, kind="join", cost=10, deps=(0,), node_id=3,
                 productions=("light",)),
        ])
        firings.append(FiringTrace("p", [change]))
    return Trace(name="t", firings=firings)


class TestLptPartition:
    def test_costs_accumulated_per_production(self):
        costs = production_costs(_trace())
        assert costs == {"heavy": 200.0, "medium": 60.0, "light": 20.0}

    def test_shared_costs_split(self):
        trace = Trace(name="s", firings=[FiringTrace("p", [ChangeTrace("add", "c", [
            Task(index=0, kind="amem", cost=10, deps=(), node_id=1,
                 productions=("a", "b")),
        ])])])
        costs = production_costs(trace)
        assert costs == {"a": 5.0, "b": 5.0}

    def test_lpt_puts_heaviest_apart(self):
        assignment = lpt_partition({"a": 100, "b": 90, "c": 10}, 2)
        assert assignment["a"] != assignment["b"]
        assert assignment["c"] == assignment["b"]  # lightest joins lighter bin

    def test_single_processor(self):
        assignment = lpt_partition({"a": 1, "b": 2}, 1)
        assert set(assignment.values()) == {0}

    def test_processors_validated(self):
        with pytest.raises(ValueError):
            lpt_partition({"a": 1}, 0)

    def test_imbalance_metric(self):
        costs = {"a": 100.0, "b": 100.0}
        balanced = partition_imbalance(costs, {"a": 0, "b": 1}, 2)
        skewed = partition_imbalance(costs, {"a": 0, "b": 0}, 2)
        assert balanced == pytest.approx(1.0)
        assert skewed == pytest.approx(2.0)


class TestPartitionedSchedule:
    def test_tasks_pinned_per_assignment(self):
        schedule, assignment = build_partitioned_schedule(
            _trace(), MachineConfig(processors=2)
        )
        for batch in schedule.batches:
            for task in batch.tasks:
                if task.production:
                    assert task.pin == assignment[task.production]

    def test_static_serialises_colocated_productions(self):
        # One processor: everything is pinned there; the makespan is at
        # least the full serial production work.
        trace = _trace()
        result, assignment, imbalance = simulate_partitioned(
            trace, MachineConfig(processors=1, hardware_dispatch_cost=0.0,
                                 sync_cost_per_task=0.0)
        )
        assert set(assignment.values()) == {0}
        assert imbalance == pytest.approx(1.0)
        assert result.peak_concurrency == 1

    def test_dynamic_at_least_as_good_when_contended(self):
        trace = _trace()
        dynamic = simulate(
            trace, MachineConfig(processors=2, granularity="production")
        )
        static, _, _ = simulate_partitioned(trace, MachineConfig(processors=2))
        assert dynamic.true_speedup >= static.true_speedup - 1e-9


class TestClusters:
    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(processors=4, clusters=8)
        with pytest.raises(ValueError):
            MachineConfig(clusters=0)

    def test_cluster_geometry(self):
        config = MachineConfig(processors=8, clusters=2)
        assert config.cluster_size == 4
        assert config.cluster_of(0) == 0
        assert config.cluster_of(3) == 0
        assert config.cluster_of(4) == 1
        assert config.cluster_of(7) == 1

    def test_changes_confined_to_clusters(self):
        # Two parallel changes, two clusters of one processor each: each
        # change runs serially inside its cluster.
        trace = Trace(name="t", firings=[FiringTrace("p", [
            ChangeTrace("add", "c", [
                Task(index=0, kind="join", cost=50, deps=(), node_id=i)
            ])
            for i in range(2)
        ])])
        flat = simulate(trace, MachineConfig(
            processors=2, clusters=1, hardware_dispatch_cost=0.0,
            sync_cost_per_task=0.0, sharing_loss_factor=1.0))
        clustered = simulate(trace, MachineConfig(
            processors=2, clusters=2, hardware_dispatch_cost=0.0,
            sync_cost_per_task=0.0, sharing_loss_factor=1.0))
        # Both finish in one task time: the two changes land on separate
        # clusters round-robin.
        assert flat.makespan == pytest.approx(50.0)
        assert clustered.makespan == pytest.approx(50.0)

    def test_clustering_cannot_beat_flat(self):
        from repro.workloads import generate_trace, profile_named

        trace = generate_trace(profile_named("mud"), seed=7, firings=15)
        flat = simulate(trace, MachineConfig(processors=16, clusters=1))
        clustered = simulate(trace, MachineConfig(processors=16, clusters=4))
        assert clustered.true_speedup <= flat.true_speedup + 1e-9
