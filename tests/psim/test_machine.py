"""Machine configuration model."""

import pytest

from repro.psim import (
    GRANULARITY_PRODUCTION,
    MachineConfig,
    PAPER_PSM,
    SCHEDULER_SOFTWARE,
)


class TestValidation:
    def test_defaults_are_the_paper_machine(self):
        assert PAPER_PSM.processors == 32
        assert PAPER_PSM.mips == 2.0
        assert PAPER_PSM.scheduler == "hardware"

    def test_processor_count_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(processors=0)

    def test_scheduler_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(scheduler="quantum")

    def test_granularity_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(granularity="per-atom")

    def test_cache_ratio_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(cache_hit_ratio=1.5)

    def test_counts_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(firing_batch=0)
        with pytest.raises(ValueError):
            MachineConfig(buses=0)


class TestDerived:
    def test_dispatch_cost_by_scheduler(self):
        hw = MachineConfig()
        sw = MachineConfig(scheduler=SCHEDULER_SOFTWARE, software_queues=3)
        assert hw.dispatch_cost == hw.hardware_dispatch_cost
        assert hw.dispatch_queues == 1
        assert sw.dispatch_cost == sw.software_dispatch_cost
        assert sw.dispatch_queues == 3

    def test_bus_carries_32_processors_at_defaults(self):
        # The paper's claim: one bus handles ~32 processors at reasonable
        # cache-hit ratios.
        config = MachineConfig()
        assert config.bus_slowdown(32) == 1.0
        assert config.bus_slowdown(64) > 1.0

    def test_more_buses_remove_contention(self):
        assert MachineConfig(buses=2).bus_slowdown(64) == 1.0

    def test_worse_cache_increases_demand(self):
        good = MachineConfig(cache_hit_ratio=0.95)
        bad = MachineConfig(cache_hit_ratio=0.5)
        assert bad.per_processor_bus_demand > good.per_processor_bus_demand

    def test_work_inflation_skipped_for_production_granularity(self):
        # Production regranularisation replicates shared work explicitly.
        assert MachineConfig(granularity=GRANULARITY_PRODUCTION).work_inflation == 1.0
        assert MachineConfig().work_inflation > 1.0

    def test_seconds_conversion(self):
        config = MachineConfig(mips=2.0)
        assert config.seconds(2_000_000) == pytest.approx(1.0)

    def test_with_processors(self):
        base = MachineConfig()
        other = base.with_processors(8)
        assert other.processors == 8
        assert other.mips == base.mips
        assert base.processors == 32  # frozen original untouched
