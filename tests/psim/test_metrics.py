"""Metric algebra."""

import pytest

from repro.psim import MachineConfig
from repro.psim.metrics import (
    SimulationResult,
    average_concurrency,
    average_speed,
    average_true_speedup,
)


def _result(makespan=1000.0, busy=4000.0, executed=3000.0, serial=2000.0,
            dispatch=100.0, sync=50.0, wait=10.0, changes=10, firings=4):
    return SimulationResult(
        config=MachineConfig(processors=8, mips=2.0),
        trace_name="t",
        makespan=makespan,
        busy_time=busy,
        executed_work=executed,
        serial_cost=serial,
        dispatch_work=dispatch,
        sync_work=sync,
        queue_wait=wait,
        total_tasks=20,
        total_changes=changes,
        total_firings=firings,
    )


class TestHeadlineMetrics:
    def test_concurrency(self):
        assert _result().concurrency == pytest.approx(4.0)

    def test_true_speedup(self):
        assert _result().true_speedup == pytest.approx(2.0)

    def test_lost_factor_is_ratio(self):
        result = _result()
        assert result.lost_factor == pytest.approx(
            result.concurrency / result.true_speedup
        )

    def test_seconds_and_throughput(self):
        result = _result(makespan=2_000_000.0)  # one second at 2 MIPS
        assert result.seconds == pytest.approx(1.0)
        assert result.wme_changes_per_second == pytest.approx(10.0)
        assert result.firings_per_second == pytest.approx(4.0)

    def test_zero_makespan_guarded(self):
        result = _result(makespan=0.0)
        assert result.concurrency == 0.0
        assert result.true_speedup == 0.0


class TestDecomposition:
    def test_work_inflation(self):
        assert _result().work_inflation == pytest.approx(1.5)

    def test_fractions(self):
        result = _result()
        assert result.scheduling_fraction == pytest.approx(110.0 / 4000.0)
        assert result.sync_fraction == pytest.approx(50.0 / 4000.0)

    def test_utilization(self):
        assert _result().utilization == pytest.approx(4000.0 / 8000.0)

    def test_summary_mentions_key_numbers(self):
        text = _result().summary()
        assert "concurrency 4.00" in text
        assert "true speed-up 2.00" in text


class TestAggregates:
    def test_averages(self):
        results = [_result(busy=2000.0), _result(busy=6000.0)]
        assert average_concurrency(results) == pytest.approx(4.0)
        assert average_true_speedup(results) == pytest.approx(2.0)
        assert average_speed(results) > 0

    def test_empty_aggregates(self):
        assert average_concurrency([]) == 0.0
        assert average_speed([]) == 0.0
        assert average_true_speedup([]) == 0.0
