"""Metric algebra."""

import pytest

from repro.psim import MachineConfig, simulate
from repro.psim.metrics import (
    MeasuredRun,
    SimulationResult,
    average_concurrency,
    average_speed,
    average_true_speedup,
    predicted_vs_measured,
)
from repro.trace import Trace


def _result(makespan=1000.0, busy=4000.0, executed=3000.0, serial=2000.0,
            dispatch=100.0, sync=50.0, wait=10.0, changes=10, firings=4):
    return SimulationResult(
        config=MachineConfig(processors=8, mips=2.0),
        trace_name="t",
        makespan=makespan,
        busy_time=busy,
        executed_work=executed,
        serial_cost=serial,
        dispatch_work=dispatch,
        sync_work=sync,
        queue_wait=wait,
        total_tasks=20,
        total_changes=changes,
        total_firings=firings,
    )


class TestHeadlineMetrics:
    def test_concurrency(self):
        assert _result().concurrency == pytest.approx(4.0)

    def test_true_speedup(self):
        assert _result().true_speedup == pytest.approx(2.0)

    def test_lost_factor_is_ratio(self):
        result = _result()
        assert result.lost_factor == pytest.approx(
            result.concurrency / result.true_speedup
        )

    def test_seconds_and_throughput(self):
        result = _result(makespan=2_000_000.0)  # one second at 2 MIPS
        assert result.seconds == pytest.approx(1.0)
        assert result.wme_changes_per_second == pytest.approx(10.0)
        assert result.firings_per_second == pytest.approx(4.0)

    def test_zero_makespan_guarded(self):
        result = _result(makespan=0.0)
        assert result.concurrency == 0.0
        assert result.true_speedup == 0.0


class TestDecomposition:
    def test_work_inflation(self):
        assert _result().work_inflation == pytest.approx(1.5)

    def test_fractions(self):
        result = _result()
        assert result.scheduling_fraction == pytest.approx(110.0 / 4000.0)
        assert result.sync_fraction == pytest.approx(50.0 / 4000.0)

    def test_utilization(self):
        assert _result().utilization == pytest.approx(4000.0 / 8000.0)

    def test_summary_mentions_key_numbers(self):
        text = _result().summary()
        assert "concurrency 4.00" in text
        assert "true speed-up 2.00" in text


class TestMeasuredRunEdges:
    def test_zero_duration_run_reports_zero_not_infinity(self):
        """A run too fast to time must degrade to 0.0, not divide by zero."""
        run = MeasuredRun(
            label="instant", workers=4, elapsed=0.0, serial_elapsed=0.5,
            total_changes=100, total_firings=10,
        )
        assert run.speedup == 0.0
        assert run.wme_changes_per_second == 0.0

    def test_single_worker_degenerate_speedup_is_one(self):
        """workers=1 matching the serial reference is exactly break-even."""
        run = MeasuredRun(
            label="serial-ish", workers=1, elapsed=2.0, serial_elapsed=2.0,
        )
        assert run.speedup == pytest.approx(1.0)

    def test_comparison_against_degenerate_measurement(self):
        record = predicted_vs_measured(
            _result(),
            MeasuredRun(label="x", workers=2, elapsed=0.0, serial_elapsed=0.0),
        )
        assert record["measured_speedup"] == 0.0
        assert record["measured_over_predicted"] == 0.0
        assert record["predicted_true_speedup"] == pytest.approx(2.0)

    def test_comparison_against_empty_trace_prediction(self):
        """An empty trace predicts nothing; the ratio stays finite."""
        predicted = simulate(Trace(name="empty", firings=[]), MachineConfig())
        assert predicted.makespan == 0.0
        record = predicted_vs_measured(
            predicted,
            MeasuredRun(
                label="live", workers=2, elapsed=1.0, serial_elapsed=2.0,
            ),
        )
        assert record["predicted_true_speedup"] == 0.0
        assert record["measured_speedup"] == pytest.approx(2.0)
        assert record["measured_over_predicted"] == 0.0

    def test_comparison_record_is_flat_and_json_ready(self):
        import json

        record = predicted_vs_measured(
            _result(),
            MeasuredRun(
                label="live", workers=2, elapsed=1.0, serial_elapsed=3.0,
                total_changes=30, total_firings=12,
            ),
        )
        assert record["measured_speedup"] == pytest.approx(3.0)
        assert record["measured_over_predicted"] == pytest.approx(1.5)
        assert json.loads(json.dumps(record)) == record


class TestAggregates:
    def test_averages(self):
        results = [_result(busy=2000.0), _result(busy=6000.0)]
        assert average_concurrency(results) == pytest.approx(4.0)
        assert average_true_speedup(results) == pytest.approx(2.0)
        assert average_speed(results) > 0

    def test_empty_aggregates(self):
        assert average_concurrency([]) == 0.0
        assert average_speed([]) == 0.0
        assert average_true_speedup([]) == 0.0
