"""The discrete-event simulator: scheduling semantics and invariants."""

import pytest

from repro.psim import MachineConfig, simulate, sweep_processors
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace

#: A machine with every overhead switched off, for exact-arithmetic tests.
IDEAL = dict(
    hardware_dispatch_cost=0.0,
    sync_cost_per_task=0.0,
    sharing_loss_factor=1.0,
    buses=4,
)


def _task(index, cost, deps=(), kind="join", node=None, productions=("p",)):
    return Task(index=index, kind=kind, cost=cost, deps=tuple(deps),
                node_id=node if node is not None else 100 + index,
                productions=tuple(productions))


def _single_change_trace(tasks):
    change = ChangeTrace("add", "c", tasks)
    return Trace(name="t", firings=[FiringTrace("p", [change])])


class TestExactSchedules:
    def test_serial_chain_takes_sum(self):
        trace = _single_change_trace(
            [_task(0, 10), _task(1, 20, deps=(0,)), _task(2, 30, deps=(1,))]
        )
        result = simulate(trace, MachineConfig(processors=4, **IDEAL))
        assert result.makespan == 60.0

    def test_independent_tasks_run_in_parallel(self):
        trace = _single_change_trace([_task(i, 10) for i in range(4)])
        result = simulate(trace, MachineConfig(processors=4, **IDEAL))
        assert result.makespan == 10.0
        assert result.peak_concurrency == 4

    def test_processor_limit_respected(self):
        trace = _single_change_trace([_task(i, 10) for i in range(4)])
        result = simulate(trace, MachineConfig(processors=2, **IDEAL))
        assert result.makespan == 20.0
        assert result.peak_concurrency == 2

    def test_dependencies_respected(self):
        trace = _single_change_trace(
            [_task(0, 10), _task(1, 5, deps=(0,)), _task(2, 5, deps=(0,))]
        )
        result = simulate(trace, MachineConfig(processors=4, **IDEAL))
        assert result.makespan == 15.0

    def test_same_node_activations_serialise(self):
        # Two tasks on one node: the memory lock forces them in sequence
        # under node granularity.
        trace = _single_change_trace(
            [_task(0, 10, node=5), _task(1, 10, node=5)]
        )
        node = simulate(trace, MachineConfig(processors=4, granularity="node", **IDEAL))
        intra = simulate(
            trace,
            MachineConfig(processors=4, granularity="intra-node", intra_node_ways=2, **IDEAL),
        )
        assert node.makespan == 20.0
        assert intra.makespan == 10.0

    def test_firing_barrier(self):
        # Two firings of one independent task each cannot overlap.
        change_a = ChangeTrace("add", "c", [_task(0, 10)])
        change_b = ChangeTrace("add", "c", [_task(0, 10)])
        trace = Trace(
            name="t",
            firings=[FiringTrace("p", [change_a]), FiringTrace("p", [change_b])],
        )
        result = simulate(trace, MachineConfig(processors=4, **IDEAL))
        assert result.makespan == 20.0
        batched = simulate(trace, MachineConfig(processors=4, firing_batch=2, **IDEAL))
        assert batched.makespan == 10.0


class TestOverheadModels:
    def test_sharing_loss_inflates_work(self):
        trace = _single_change_trace([_task(0, 100)])
        result = simulate(
            trace, MachineConfig(processors=1, sharing_loss_factor=1.5,
                                 hardware_dispatch_cost=0.0, sync_cost_per_task=0.0)
        )
        assert result.makespan == pytest.approx(150.0)
        assert result.work_inflation == pytest.approx(1.5)

    def test_software_scheduler_serialises_dispatch(self):
        tasks = [_task(i, 10) for i in range(8)]
        trace = _single_change_trace(tasks)
        hw = simulate(trace, MachineConfig(processors=8, **IDEAL))
        sw = simulate(
            trace,
            MachineConfig(
                processors=8, scheduler="software", software_dispatch_cost=30.0,
                software_queues=1, sync_cost_per_task=0.0, sharing_loss_factor=1.0,
                buses=4,
            ),
        )
        assert sw.makespan > hw.makespan
        # Dispatches serialise 30 apart: the last of 8 starts at 240.
        assert sw.makespan == pytest.approx(8 * 30.0 + 10.0)

    def test_more_software_queues_help(self):
        tasks = [_task(i, 10) for i in range(8)]
        trace = _single_change_trace(tasks)
        def run(queues):
            return simulate(trace, MachineConfig(
                processors=8, scheduler="software", software_dispatch_cost=30.0,
                software_queues=queues, sync_cost_per_task=0.0,
                sharing_loss_factor=1.0, buses=4)).makespan
        assert run(4) < run(1)

    def test_sync_cost_added_to_locked_tasks(self):
        trace = _single_change_trace([_task(0, 100, node=1)])
        result = simulate(
            trace, MachineConfig(processors=1, sync_cost_per_task=25.0,
                                 hardware_dispatch_cost=0.0, sharing_loss_factor=1.0)
        )
        assert result.makespan == pytest.approx(125.0)
        assert result.sync_work == pytest.approx(25.0)

    def test_bus_contention_stretches_beyond_capacity(self):
        tasks = [_task(i, 100) for i in range(64)]
        trace = _single_change_trace(tasks)
        uncontended = simulate(trace, MachineConfig(processors=64, buses=4,
                                                    hardware_dispatch_cost=0.0,
                                                    sync_cost_per_task=0.0,
                                                    sharing_loss_factor=1.0))
        contended = simulate(trace, MachineConfig(processors=64, buses=1,
                                                  hardware_dispatch_cost=0.0,
                                                  sync_cost_per_task=0.0,
                                                  sharing_loss_factor=1.0))
        assert contended.makespan > uncontended.makespan


class TestInvariants:
    def _random_trace(self):
        import random

        rng = random.Random(7)
        firings = []
        for f in range(5):
            changes = []
            for c in range(rng.randint(1, 3)):
                tasks = []
                for i in range(rng.randint(1, 12)):
                    deps = tuple(
                        d for d in range(i) if rng.random() < 0.3
                    )
                    tasks.append(_task(i, rng.randint(5, 80), deps=deps,
                                       node=rng.randint(1, 6)))
                changes.append(ChangeTrace("add", "c", tasks))
            firings.append(FiringTrace("p", changes))
        return Trace(name="rand", firings=firings)

    def test_determinism(self):
        trace = self._random_trace()
        a = simulate(trace, MachineConfig(processors=8))
        b = simulate(trace, MachineConfig(processors=8))
        assert a.makespan == b.makespan
        assert a.busy_time == b.busy_time

    def test_concurrency_bounded_by_processors(self):
        trace = self._random_trace()
        for processors in (1, 2, 8, 32):
            result = simulate(trace, MachineConfig(processors=processors))
            assert result.concurrency <= processors + 1e-9
            assert result.peak_concurrency <= processors

    def test_makespan_at_least_critical_path(self):
        trace = self._random_trace()
        result = simulate(trace, MachineConfig(processors=64))
        assert result.makespan >= result.critical_path

    def test_busy_time_bounded(self):
        trace = self._random_trace()
        result = simulate(trace, MachineConfig(processors=8))
        assert result.busy_time <= 8 * result.makespan + 1e-9

    def test_single_processor_times_sum(self):
        trace = self._random_trace()
        result = simulate(trace, MachineConfig(processors=1, **IDEAL))
        assert result.makespan == pytest.approx(trace.total_cost)
        assert result.concurrency == pytest.approx(1.0)

    def test_sweep_returns_per_count_results(self):
        trace = self._random_trace()
        results = sweep_processors(trace, MachineConfig(), [1, 2, 4])
        assert [r.config.processors for r in results] == [1, 2, 4]
        # More processors never increase makespan in this scheduler.
        assert results[0].makespan >= results[1].makespan >= results[2].makespan
