"""The serial conflict-resolution/act Amdahl term."""

import pytest

from repro.psim import MachineConfig, schedule_bounds, simulate
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace


def _trace(firings=4):
    out = Trace(name="t", firings=[])
    for f in range(firings):
        change = ChangeTrace("add", "c", [
            Task(index=0, kind="join", cost=100, deps=(), node_id=f + 1,
                 productions=("p",)),
        ])
        out.firings.append(FiringTrace("p", [change]))
    return out


IDEAL = dict(
    hardware_dispatch_cost=0.0, sync_cost_per_task=0.0, sharing_loss_factor=1.0
)


class TestConflictResolutionCost:
    def test_zero_by_default(self):
        assert MachineConfig().conflict_resolution_cost == 0.0

    def test_adds_per_firing(self):
        base = simulate(_trace(4), MachineConfig(processors=4, **IDEAL))
        with_cr = simulate(
            _trace(4),
            MachineConfig(processors=4, conflict_resolution_cost=50.0, **IDEAL),
        )
        assert with_cr.makespan == pytest.approx(base.makespan + 4 * 50.0)

    def test_amdahl_effect_on_speedup(self):
        """A serial phase per cycle caps speed-up regardless of match
        parallelism -- why the paper needed match to dominate (90%)."""
        trace = _trace(10)
        fast_match = MachineConfig(processors=32, conflict_resolution_cost=400.0,
                                   **IDEAL)
        result = simulate(trace, fast_match)
        # Match is 100 instr/firing; CR is 400: speed-up can't reach 2
        # even with 32 processors.
        assert result.true_speedup < 2.0

    def test_bounds_include_the_term(self):
        trace = _trace(4)
        config = MachineConfig(processors=4, conflict_resolution_cost=50.0, **IDEAL)
        result = simulate(trace, config)
        bounds = schedule_bounds(trace, config)
        assert bounds.lower <= result.makespan <= bounds.upper

    def test_parallel_firings_amortise_cr_serialisation(self):
        # One batch of 4 firings still pays 4 CR slots, but only one
        # barrier: makespan shrinks vs sequential firings.
        config = MachineConfig(processors=8, conflict_resolution_cost=50.0,
                               firing_batch=4, **IDEAL)
        batched = simulate(_trace(4), config)
        sequential = simulate(
            _trace(4),
            MachineConfig(processors=8, conflict_resolution_cost=50.0, **IDEAL),
        )
        assert batched.makespan < sequential.makespan
