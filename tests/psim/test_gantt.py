"""Gantt rendering and placement recording."""

import pytest

from repro.psim import MachineConfig, render_gantt, simulate
from repro.trace.events import ChangeTrace, FiringTrace, Task, Trace

IDEAL = dict(
    hardware_dispatch_cost=0.0,
    sync_cost_per_task=0.0,
    sharing_loss_factor=1.0,
)


def _trace():
    change = ChangeTrace("add", "c", [
        Task(index=0, kind="root", cost=10, deps=(), node_id=0),
        Task(index=1, kind="join", cost=40, deps=(0,), node_id=1, productions=("p",)),
        Task(index=2, kind="term", cost=10, deps=(1,), node_id=2, productions=("p",)),
    ])
    return Trace(name="g", firings=[FiringTrace("p", [change])])


class TestPlacements:
    def test_not_recorded_by_default(self):
        result = simulate(_trace(), MachineConfig(processors=2))
        assert result.placements is None

    def test_recorded_on_request(self):
        result = simulate(
            _trace(), MachineConfig(processors=2, **IDEAL), record_placements=True
        )
        assert len(result.placements) == 3
        by_uid = {p.uid: p for p in result.placements}
        # The chain runs back-to-back on processor 0.
        assert by_uid[0].processor == 0
        assert by_uid[0].end == by_uid[1].start
        assert by_uid[2].end == result.makespan

    def test_spans_respect_dependencies(self):
        result = simulate(
            _trace(), MachineConfig(processors=4, **IDEAL), record_placements=True
        )
        by_uid = {p.uid: p for p in result.placements}
        assert by_uid[1].start >= by_uid[0].end
        assert by_uid[2].start >= by_uid[1].end


class TestRendering:
    def _result(self):
        return simulate(
            _trace(), MachineConfig(processors=2, **IDEAL), record_placements=True
        )

    def test_renders_one_row_per_processor(self):
        text = render_gantt(self._result(), width=30)
        lines = text.splitlines()
        assert lines[1].startswith("p0 |")
        assert lines[2].startswith("p1 |")
        assert len(lines) == 3  # header + two processors

    def test_busy_and_idle_marks(self):
        text = render_gantt(self._result(), width=30)
        p0 = text.splitlines()[1]
        p1 = text.splitlines()[2]
        assert "j" in p0  # the join dominates the middle
        assert set(p1.split("|")[1]) == {"."}  # second processor idle

    def test_requires_recording(self):
        result = simulate(_trace(), MachineConfig(processors=2))
        with pytest.raises(ValueError):
            render_gantt(result)

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_gantt(self._result(), width=2)

    def test_header_mentions_makespan(self):
        text = render_gantt(self._result(), width=30)
        assert "makespan" in text.splitlines()[0]
